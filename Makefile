# Convenience targets for the repro project.

.PHONY: install test faults chaos bench bench-eval bench-spice bench-surrogate bench-light bench-heavy examples lint devlint verify erc ingest all

install:
	pip install -e . --no-build-isolation

# Per-test wall-clock ceiling: applied when pytest-timeout is available
# (installed via the [test] extra in CI); skipped silently otherwise so
# a bare local environment can still run the suite.
TIMEOUT_FLAG := $(shell python -c "import pytest_timeout" 2>/dev/null && echo --timeout=300)

test:
	pytest tests/ -q $(TIMEOUT_FLAG)

# Fault-injection sweep: the runtime tests re-run under every seed in the
# matrix, exercising injected DC/transient/singular/metric failures.
REPRO_FAULT_SEEDS ?= 0,1,2,3

faults:
	REPRO_FAULT_SEEDS=$(REPRO_FAULT_SEEDS) pytest tests/runtime/ -q $(TIMEOUT_FLAG)

# Chaos drills: worker SIGKILLs, torn journal tails, corrupted cache
# entries, full disks, and concurrent shared-cache access — under the
# same deterministic seed matrix as `make faults`.  Set
# REPRO_CHAOS_ARTIFACTS to keep each scenario's run dir (journals +
# evalcache) for post-mortem; CI uploads it on failure.
chaos:
	REPRO_FAULT_SEEDS=$(REPRO_FAULT_SEEDS) pytest tests/runtime/test_chaos.py tests/runtime/test_supervise.py -q $(TIMEOUT_FLAG)

# Static checks.  ruff/mypy are dev-only tools (installed in CI); when a
# local environment lacks one, that half is skipped rather than failing.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/verify src/repro/geometry src/repro/tech src/repro/ingest; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

# Determinism-hazard self-lint (stdlib AST walk, no deps): unseeded
# random.*, wall-clock in cache/journal paths, bare set iteration.
devlint:
	python tools/devlint.py src/repro tools

verify:
	python -m repro verify all

# Raw-SPICE ingestion over the example corpus: recognize primitives,
# emit constraints, write byte-deterministic JSON reports.  Fails on
# unwaived TOPO/ERC/CONST errors in any corpus netlist.
INGEST_OUT ?= out/ingest

ingest:
	@mkdir -p $(INGEST_OUT)
	@for f in examples/netlists/*.sp; do \
		name=$$(basename $$f .sp); \
		python -m repro ingest $$f --format json > $(INGEST_OUT)/$$name.json || exit 1; \
		echo "$$f -> $(INGEST_OUT)/$$name.json"; \
	done

# Full circuit lint over the library (ERC + DRC + connectivity +
# constraints), machine-readable.  Fails on unwaived errors; the JSON
# report is written for CI artifact upload.
ERC_REPORT ?= erc-report.json

erc:
	python -m repro verify all --format json > $(ERC_REPORT)
	@python -c "import json; rs = json.load(open('$(ERC_REPORT)')); \
	print(f'{len(rs)} reports -> $(ERC_REPORT)')"

# Evaluation-engine benchmark: serial vs parallel vs content-cached
# sweeps plus the 5T OTA flow cache reduction, written to
# $(BENCH_EVAL_OUT) for trend tracking (CI uploads it as an artifact).
BENCH_EVAL_OUT ?= BENCH_eval.json
BENCH_EVAL_FLAGS ?=

bench-eval:
	python benchmarks/bench_eval.py --out $(BENCH_EVAL_OUT) $(BENCH_EVAL_FLAGS)

# SPICE-kernel benchmark: fixed-dense (seed-equivalent) vs fixed-sparse
# vs adaptive-sparse on the OTA / StrongARM / VCO testbenches, asserting
# metric agreement and the >=2x VCO transient speedup.
BENCH_SPICE_OUT ?= BENCH_spice.json
BENCH_SPICE_FLAGS ?=

bench-spice:
	python benchmarks/bench_spice.py --out $(BENCH_SPICE_OUT) $(BENCH_SPICE_FLAGS)

# Surrogate-guided search benchmark: cold (recording, full-sweep) vs
# warm (pruned) library passes sharing one corpus, asserting equal
# chosen costs, journal determinism across --jobs, and the >=40%
# simulation reduction (full mode).
BENCH_SURROGATE_OUT ?= BENCH_surrogate.json
BENCH_SURROGATE_FLAGS ?=

bench-surrogate:
	python benchmarks/bench_surrogate.py --out $(BENCH_SURROGATE_OUT) $(BENCH_SURROGATE_FLAGS)

bench: bench-eval bench-spice bench-surrogate
	pytest benchmarks/ --benchmark-only -s

bench-light:
	pytest benchmarks/test_fig2_table1_csamp.py \
	       benchmarks/test_fig3_metric_correspondence.py \
	       benchmarks/test_fig5_variants.py \
	       benchmarks/test_table3_dp_selection.py \
	       benchmarks/test_table4_port_opt.py \
	       benchmarks/test_table5_simcount.py \
	       benchmarks/test_ablations.py \
	       benchmarks/test_library_survey.py \
	       --benchmark-only -s

bench-heavy:
	pytest benchmarks/test_table6_ota_strongarm.py \
	       benchmarks/test_table7_vco.py \
	       benchmarks/test_table8_runtime.py \
	       benchmarks/test_fig6_reconciliation.py \
	       --benchmark-only -s

examples:
	python examples/quickstart.py
	python examples/render_layouts.py --outdir out
	python examples/annotate_and_montecarlo.py
	python examples/ota_flow.py
	python examples/strongarm_comparator.py
	python examples/vco_tuning_curve.py

all: install test bench
