#!/usr/bin/env python
"""Benchmark the parallel content-cached evaluation engine.

Measures three configurations of the primitive-optimization sweep over a
small primitive set — serial (``jobs=1``, no cache), parallel
(``--jobs N``, no cache) and content-cached (``jobs=1``, cache on) — plus
the cache's simulation-count reduction on the full 5T OTA hierarchical
flow, and writes the numbers to ``BENCH_eval.json`` so later PRs have a
performance trajectory to compare against.

Determinism makes the comparison honest: the parallel and serial sweeps
produce byte-identical reports (asserted here), so the only thing the
worker pool can change is wall-clock time, and the only thing the cache
can change is how many evaluations reach the simulator.

Run via ``make bench-eval``, or directly::

    python benchmarks/bench_eval.py --jobs 4 --out BENCH_eval.json

``--smoke`` shrinks the sweep for CI smoke runs (the JSON still carries
every field, just from a smaller workload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import HierarchicalFlow, PrimitiveOptimizer, Technology  # noqa: E402
from repro.circuits import FiveTransistorOta  # noqa: E402
from repro.primitives import (  # noqa: E402
    DifferentialPair,
    DiodeLoad,
    MosPrimitive,
    PassiveCurrentMirror,
)
from repro.runtime import EvalCache  # noqa: E402


@contextmanager
def count_simulations():
    """Count every evaluation that actually reaches the simulator.

    Wraps :meth:`MosPrimitive.evaluate` at the class level, so primitives
    constructed inside the flow are counted too.  Cache hits never call
    ``evaluate`` and therefore never count — which is exactly the number
    the benchmark wants.
    """
    counts = {"evaluations": 0, "simulations": 0}
    original = MosPrimitive.evaluate

    def counting(self, dut):
        values, sims = original(self, dut)
        counts["evaluations"] += 1
        counts["simulations"] += sims
        return values, sims

    MosPrimitive.evaluate = counting
    try:
        yield counts
    finally:
        MosPrimitive.evaluate = original


def _primitive_set(tech: Technology, smoke: bool) -> list[MosPrimitive]:
    base = 8 if smoke else 48
    return [
        DifferentialPair(tech, base_fins=base, name="bench_dp"),
        PassiveCurrentMirror(tech, base_fins=base, name="bench_cm"),
        DiodeLoad(tech, base_fins=base, name="bench_load"),
    ]


def _fingerprint(report) -> tuple:
    return (
        [(o.describe(), o.cost) for o in report.options],
        [(t.option.describe(), t.option.cost) for t in report.tuned],
        report.total_simulations,
        report.best.cost,
    )


def _sweep(tech, jobs, cache, smoke):
    """One full-library optimization pass; returns (wall_s, sims, prints)."""
    optimizer = PrimitiveOptimizer(
        n_bins=2,
        max_wires=3 if smoke else 5,
        jobs=jobs,
        cache=cache,
    )
    start = time.perf_counter()
    with count_simulations() as counts:
        reports = [
            optimizer.optimize(p) for p in _primitive_set(tech, smoke)
        ]
    wall = time.perf_counter() - start
    return wall, counts, [_fingerprint(r) for r in reports]


def bench_sweep(tech, jobs: int, smoke: bool) -> dict:
    serial_wall, serial_counts, serial_prints = _sweep(
        tech, jobs=1, cache=False, smoke=smoke
    )
    parallel_wall, _parallel_counts, parallel_prints = _sweep(
        tech, jobs=jobs, cache=False, smoke=smoke
    )
    assert parallel_prints == serial_prints, (
        "determinism violation: parallel sweep diverged from serial"
    )
    cached_wall, cached_counts, cached_prints = _sweep(
        tech, jobs=1, cache=EvalCache(), smoke=smoke
    )
    # Caching may zero per-option simulation counts but never the
    # scores: every cost must match the uncached run.
    for cached, serial in zip(cached_prints, serial_prints):
        assert cached[3] == serial[3], (
            "cache changed a result: best cost diverged"
        )
    return {
        "primitives": [p.name for p in _primitive_set(tech, smoke)],
        # "simulations" counts calls that reached the simulator
        # (including schematic references); "report_simulations" is the
        # sweep-stage accounting from the optimization reports.  The
        # parallel run only carries the latter: workers simulate in
        # their own processes, out of sight of the parent-side
        # instrumentation (the fingerprint assert above already pins its
        # accounting to serial).
        "serial": {
            "wall_s": round(serial_wall, 4),
            "simulations": serial_counts["simulations"],
            "evaluations": serial_counts["evaluations"],
            "report_simulations": sum(fp[2] for fp in serial_prints),
        },
        "parallel": {
            "jobs": jobs,
            "wall_s": round(parallel_wall, 4),
            "report_simulations": sum(fp[2] for fp in parallel_prints),
        },
        "cached": {
            "wall_s": round(cached_wall, 4),
            "simulations": cached_counts["simulations"],
            "evaluations": cached_counts["evaluations"],
            "report_simulations": sum(fp[2] for fp in cached_prints),
        },
        "parallel_speedup": round(serial_wall / max(parallel_wall, 1e-9), 3),
        "cache_sim_reduction": round(
            1.0
            - cached_counts["simulations"]
            / max(serial_counts["simulations"], 1),
            4,
        ),
    }


def bench_ota_flow(tech, smoke: bool) -> dict:
    """Cache simulation-count reduction on the 5T OTA hierarchical flow."""

    def run(cache: bool) -> dict:
        flow = HierarchicalFlow(
            tech,
            n_bins=2,
            max_wires=3 if smoke else 5,
            placer_iterations=100 if smoke else 500,
            verify=False,
            jobs=1,
            cache=cache,
        )
        with count_simulations() as counts:
            result = flow.run(FiveTransistorOta(tech), measure=False)
        assert result.assembled is not None
        return dict(counts)

    uncached = run(cache=False)
    cached = run(cache=True)
    return {
        "circuit": "FiveTransistorOta",
        "uncached_simulations": uncached["simulations"],
        "cached_simulations": cached["simulations"],
        "sim_reduction": round(
            1.0 - cached["simulations"] / max(uncached["simulations"], 1), 4
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel sweep (default: min(4, cores))",
    )
    parser.add_argument(
        "--out",
        default="BENCH_eval.json",
        help="output JSON path (default: BENCH_eval.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload for CI smoke runs",
    )
    args = parser.parse_args()

    tech = Technology.default()
    report = {
        "benchmark": "eval-engine",
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "smoke": args.smoke,
        "sweep": bench_sweep(tech, jobs=args.jobs, smoke=args.smoke),
        "ota_flow": bench_ota_flow(tech, smoke=args.smoke),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    sweep = report["sweep"]
    print(
        f"sweep: serial {sweep['serial']['wall_s']}s / "
        f"{sweep['serial']['simulations']} sims; "
        f"parallel(x{args.jobs}) {sweep['parallel']['wall_s']}s "
        f"(speedup {sweep['parallel_speedup']}x on {os.cpu_count()} cores); "
        f"cached {sweep['cached']['simulations']} sims "
        f"(-{sweep['cache_sim_reduction']:.0%})"
    )
    ota = report["ota_flow"]
    print(
        f"5T OTA flow: {ota['uncached_simulations']} -> "
        f"{ota['cached_simulations']} sims with cache "
        f"(-{ota['sim_reduction']:.0%})"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
