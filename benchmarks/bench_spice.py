#!/usr/bin/env python
"""Benchmark the sparse factorization-reuse MNA kernel.

Times the benchmark testbenches (5T OTA, StrongARM comparator, 8-stage
ring-oscillator VCO) under three solver/stepper configurations --

* ``fixed_dense``   -- fixed-grid trapezoidal stepping on the dense LU
  backend.  Bit-identical to the pre-kernel simulator, so this run *is*
  the seed baseline.
* ``fixed_sparse``  -- same step sequence through scipy ``splu``; isolates
  the factorization-reuse win from the stepping win.
* ``adaptive_sparse`` -- the full new path: LTE-controlled step sizing on
  the sparse backend.

-- and writes wall-clock, solver counters (steps, rejections, LU reuses)
and measured metrics to ``BENCH_spice.json``.  It also times the 5T-OTA
primitive-selection sweep serial vs ``--batch 8`` (the vectorized
multi-variant fast path).  Three properties are asserted, not just
recorded:

* every configuration reproduces the baseline metrics within the cost
  function's noise tolerance,
* the full path beats the baseline by >= 2x wall-clock on the VCO
  transient (the dominant cost in the paper's Table VIII runtime), and
* the batched selection sweep reproduces the serial sweep's option
  metrics bitwise and beats it by >= 2x wall-clock.

Run via ``make bench-spice``, or directly::

    python benchmarks/bench_spice.py --out BENCH_spice.json

``--smoke`` swaps the assembled VCO for a short schematic run so CI can
exercise the harness in seconds (the speedup assert is skipped -- the
shrunk workload is too small to be representative).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Technology  # noqa: E402
from repro.cellgen.generator import WireConfig  # noqa: E402
from repro.cellgen.patterns import available_patterns  # noqa: E402
from repro.circuits import (  # noqa: E402
    FiveTransistorOta,
    RingOscillatorVco,
    StrongArmComparator,
)
from repro.circuits.base import LayoutChoice  # noqa: E402
from repro.spice import kernel  # noqa: E402
from repro.spice import tran as tran_mod  # noqa: E402

#: Metric agreement bar: the optimization cost function bins metric
#: deviations far coarser than 1%, so configurations whose metrics agree
#: to this tolerance are interchangeable for layout selection.
METRIC_RTOL = 1e-2

#: (name, solver, stepper) -- fixed_dense first: it is the baseline the
#: other rows are compared against.
CONFIGS = [
    ("fixed_dense", kernel.DENSE, tran_mod.FIXED),
    ("fixed_sparse", kernel.SPARSE, tran_mod.FIXED),
    ("adaptive_sparse", kernel.SPARSE, tran_mod.ADAPTIVE),
]


@contextmanager
def configure(solver: str, stepper: str):
    """Pin solver backend and transient stepper via their env knobs."""
    saved = {
        var: os.environ.get(var)
        for var in (kernel.SOLVER_ENV, tran_mod.STEPPER_ENV)
    }
    os.environ[kernel.SOLVER_ENV] = solver
    os.environ[tran_mod.STEPPER_ENV] = stepper
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def conventional_choices(circuit) -> dict[str, LayoutChoice]:
    """Minimal hand-style layout choices, enough to assemble the DUT."""
    choices = {}
    for binding in circuit.bindings():
        primitive = binding.primitive
        variants = primitive.variants()
        base = min(variants, key=lambda g: (abs(g.nfin - g.nf), g.m))
        counts = {
            t.name: base.m * t.m_ratio
            for t in primitive.templates()
            if t.name in primitive.matched_group()
        }
        patterns = available_patterns(list(counts), counts)
        pattern = "ABBA" if "ABBA" in patterns else patterns[0]
        choices[binding.name] = LayoutChoice(
            base=base, pattern=pattern, wires=WireConfig()
        )
    return choices


def _testbenches(tech: Technology, smoke: bool) -> list[tuple]:
    """(label, measure-thunk, skip_metrics) per benchmark circuit.

    ``skip_metrics`` names metrics excluded from the agreement assert.
    Only the smoke run skips anything: StrongARM ``power`` integrates a
    sub-picosecond supply-current spike that is not dt-converged at the
    smoke step (the *fixed* run moves ~8% between dt=2ps and dt=0.5ps),
    so fixed-vs-adaptive disagreement there measures grid aliasing, not
    solver accuracy.  The full run steps at dt=0.5ps, where the metric
    is converged and all configurations agree to ~0.1%.
    """
    ota = FiveTransistorOta(tech)
    comparator = StrongArmComparator(tech)
    vco = RingOscillatorVco(tech)
    benches = [
        ("ota_schematic", lambda: ota.measure(ota.schematic()), set()),
        (
            "strongarm_schematic",
            lambda: comparator.measure(
                comparator.schematic(), dt=2e-12 if smoke else 5e-13
            ),
            {"power"} if smoke else set(),
        ),
    ]
    if smoke:
        benches.append(
            (
                "vco_schematic",
                lambda: vco.measure(
                    vco.schematic(), periods=6, steps_per_period=150
                ),
                set(),
            )
        )
    else:
        # The acceptance workload: extracted 8-stage VCO, full transient.
        dut = vco.assembled(conventional_choices(vco))
        benches.append(("vco_assembled", lambda: vco.measure(dut), set()))
    return benches


def _run(measure_thunk, solver: str, stepper: str) -> dict:
    stats = kernel.SolverStats()
    with configure(solver, stepper):
        start = time.perf_counter()
        with kernel.collect(stats):
            metrics = measure_thunk()
        wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "metrics": metrics,
        "newton_iterations": stats.newton_iterations,
        "solves": stats.solves,
        "factorizations": stats.factorizations,
        "lu_reuses": stats.lu_reuses,
        "tran_steps": stats.tran_steps,
        "tran_rejected": stats.tran_rejected,
        "tran_fixed_steps": stats.tran_fixed_steps,
        "backends": stats.backends,
    }


def bench_circuit(label: str, measure_thunk, skip_metrics: set) -> dict:
    rows = {}
    for name, solver, stepper in CONFIGS:
        rows[name] = _run(measure_thunk, solver, stepper)
        print(
            f"  {label}/{name}: {rows[name]['wall_s']}s, "
            f"{rows[name]['tran_steps']} steps "
            f"({rows[name]['tran_rejected']} rejected), "
            f"{rows[name]['factorizations']} factorizations"
        )
    baseline = rows["fixed_dense"]
    for name, row in rows.items():
        for key, ref in baseline["metrics"].items():
            if key in skip_metrics:
                continue
            got = row["metrics"][key]
            assert abs(got - ref) <= METRIC_RTOL * max(
                abs(ref), 1e-30
            ), f"{label}/{name}: metric {key} diverged ({got} vs {ref})"
        row["speedup"] = round(
            baseline["wall_s"] / max(row["wall_s"], 1e-9), 3
        )
    return rows


def bench_batched_selection(tech: Technology, smoke: bool) -> dict:
    """Time the 5T-OTA primitive-selection sweep serial vs batched.

    Runs the full (sizing x pattern) selection sweep of every OTA
    binding with ``batch=1`` and ``batch=8`` and asserts the batched
    sweep reproduces every option's metric values *bitwise* — the
    batched solvers replay the serial arithmetic, so agreement is exact,
    far inside the 1% acceptance tolerance.  The full run also asserts
    the >= 2x wall-clock win; the smoke run shrinks the variant set too
    far to time meaningfully.
    """
    from repro.core.selection import evaluate_options
    from repro.runtime import EvalRuntime
    from repro.runtime.evalcache import EvalCache

    rows = {}
    results: dict[int, list] = {}
    counters = (
        "newton_iterations",
        "solves",
        "batched_solves",
        "batch_members",
        "batch_fallbacks",
    )
    for width in (1, 8):
        ota = FiveTransistorOta(tech)
        wall = 0.0
        totals = dict.fromkeys(counters, 0)
        options: list[tuple] = []
        n_options = 0
        for binding in ota.bindings():
            primitive = binding.primitive
            variants = primitive.variants()
            if smoke:
                variants = variants[:2]
            runtime = EvalRuntime(cache=EvalCache(), batch=width)
            start = time.perf_counter()
            opts = evaluate_options(
                primitive, variants=variants, runtime=runtime
            )
            wall += time.perf_counter() - start
            # Solver work runs under the runtime's own collector; sum
            # its counters across bindings.
            for key in counters:
                totals[key] += getattr(runtime.solver_stats, key)
            n_options += len(opts)
            options.extend(
                (binding.name, o.base, o.pattern, o.values, o.simulations)
                for o in opts
            )
        results[width] = options
        rows[f"batch{width}"] = {"wall_s": round(wall, 4), "options": n_options}
        rows[f"batch{width}"].update(totals)
        print(
            f"  ota_selection/batch{width}: {rows[f'batch{width}']['wall_s']}s, "
            f"{n_options} options, {totals['batched_solves']} stacked solves"
        )

    assert len(results[1]) == len(results[8]), "option count diverged"
    for serial, batched in zip(results[1], results[8]):
        assert serial[:3] == batched[:3], "option identity diverged"
        assert serial[4] == batched[4], f"simulation count diverged: {serial[:3]}"
        for key, ref in serial[3].items():
            got = batched[3][key]
            assert got == ref, (
                f"ota_selection: {serial[0]} {serial[2]} metric {key} "
                f"diverged ({got} vs {ref})"
            )
    speedup = round(
        rows["batch1"]["wall_s"] / max(rows["batch8"]["wall_s"], 1e-9), 3
    )
    rows["speedup"] = speedup
    if not smoke:
        assert speedup >= 2.0, (
            f"acceptance regression: batched 5T-OTA selection sweep "
            f"speedup {speedup}x < 2x over the serial sweep"
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_spice.json",
        help="output JSON path (default: BENCH_spice.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload for CI smoke runs (skips the 2x assert)",
    )
    args = parser.parse_args()

    tech = Technology.default()
    circuits = {}
    for label, thunk, skip in _testbenches(tech, args.smoke):
        print(f"{label}:")
        circuits[label] = bench_circuit(label, thunk, skip)

    print("ota_selection:")
    batched_selection = bench_batched_selection(tech, args.smoke)

    report = {
        "benchmark": "spice-kernel",
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "metric_rtol": METRIC_RTOL,
        "circuits": circuits,
        "batched_selection": batched_selection,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    if not args.smoke:
        vco = circuits["vco_assembled"]
        speedup = vco["adaptive_sparse"]["speedup"]
        print(
            f"VCO transient: {vco['fixed_dense']['wall_s']}s baseline -> "
            f"{vco['adaptive_sparse']['wall_s']}s full path "
            f"({speedup}x)"
        )
        assert speedup >= 2.0, (
            f"acceptance regression: adaptive+sparse VCO speedup {speedup}x "
            "< 2x over the fixed-dense baseline"
        )
        print(
            f"5T-OTA selection sweep: {batched_selection['batch1']['wall_s']}s "
            f"serial -> {batched_selection['batch8']['wall_s']}s batched "
            f"({batched_selection['speedup']}x)"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
