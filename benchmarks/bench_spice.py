#!/usr/bin/env python
"""Benchmark the sparse factorization-reuse MNA kernel.

Times the benchmark testbenches (5T OTA, StrongARM comparator, 8-stage
ring-oscillator VCO) under three solver/stepper configurations --

* ``fixed_dense``   -- fixed-grid trapezoidal stepping on the dense LU
  backend.  Bit-identical to the pre-kernel simulator, so this run *is*
  the seed baseline.
* ``fixed_sparse``  -- same step sequence through scipy ``splu``; isolates
  the factorization-reuse win from the stepping win.
* ``adaptive_sparse`` -- the full new path: LTE-controlled step sizing on
  the sparse backend.

-- and writes wall-clock, solver counters (steps, rejections, LU reuses)
and measured metrics to ``BENCH_spice.json``.  Two properties are
asserted, not just recorded:

* every configuration reproduces the baseline metrics within the cost
  function's noise tolerance, and
* the full path beats the baseline by >= 2x wall-clock on the VCO
  transient (the dominant cost in the paper's Table VIII runtime).

Run via ``make bench-spice``, or directly::

    python benchmarks/bench_spice.py --out BENCH_spice.json

``--smoke`` swaps the assembled VCO for a short schematic run so CI can
exercise the harness in seconds (the speedup assert is skipped -- the
shrunk workload is too small to be representative).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Technology  # noqa: E402
from repro.cellgen.generator import WireConfig  # noqa: E402
from repro.cellgen.patterns import available_patterns  # noqa: E402
from repro.circuits import (  # noqa: E402
    FiveTransistorOta,
    RingOscillatorVco,
    StrongArmComparator,
)
from repro.circuits.base import LayoutChoice  # noqa: E402
from repro.spice import kernel  # noqa: E402
from repro.spice import tran as tran_mod  # noqa: E402

#: Metric agreement bar: the optimization cost function bins metric
#: deviations far coarser than 1%, so configurations whose metrics agree
#: to this tolerance are interchangeable for layout selection.
METRIC_RTOL = 1e-2

#: (name, solver, stepper) -- fixed_dense first: it is the baseline the
#: other rows are compared against.
CONFIGS = [
    ("fixed_dense", kernel.DENSE, tran_mod.FIXED),
    ("fixed_sparse", kernel.SPARSE, tran_mod.FIXED),
    ("adaptive_sparse", kernel.SPARSE, tran_mod.ADAPTIVE),
]


@contextmanager
def configure(solver: str, stepper: str):
    """Pin solver backend and transient stepper via their env knobs."""
    saved = {
        var: os.environ.get(var)
        for var in (kernel.SOLVER_ENV, tran_mod.STEPPER_ENV)
    }
    os.environ[kernel.SOLVER_ENV] = solver
    os.environ[tran_mod.STEPPER_ENV] = stepper
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def conventional_choices(circuit) -> dict[str, LayoutChoice]:
    """Minimal hand-style layout choices, enough to assemble the DUT."""
    choices = {}
    for binding in circuit.bindings():
        primitive = binding.primitive
        variants = primitive.variants()
        base = min(variants, key=lambda g: (abs(g.nfin - g.nf), g.m))
        counts = {
            t.name: base.m * t.m_ratio
            for t in primitive.templates()
            if t.name in primitive.matched_group()
        }
        patterns = available_patterns(list(counts), counts)
        pattern = "ABBA" if "ABBA" in patterns else patterns[0]
        choices[binding.name] = LayoutChoice(
            base=base, pattern=pattern, wires=WireConfig()
        )
    return choices


def _testbenches(tech: Technology, smoke: bool) -> list[tuple]:
    """(label, measure-thunk, skip_metrics) per benchmark circuit.

    ``skip_metrics`` names metrics excluded from the agreement assert.
    Only the smoke run skips anything: StrongARM ``power`` integrates a
    sub-picosecond supply-current spike that is not dt-converged at the
    smoke step (the *fixed* run moves ~8% between dt=2ps and dt=0.5ps),
    so fixed-vs-adaptive disagreement there measures grid aliasing, not
    solver accuracy.  The full run steps at dt=0.5ps, where the metric
    is converged and all configurations agree to ~0.1%.
    """
    ota = FiveTransistorOta(tech)
    comparator = StrongArmComparator(tech)
    vco = RingOscillatorVco(tech)
    benches = [
        ("ota_schematic", lambda: ota.measure(ota.schematic()), set()),
        (
            "strongarm_schematic",
            lambda: comparator.measure(
                comparator.schematic(), dt=2e-12 if smoke else 5e-13
            ),
            {"power"} if smoke else set(),
        ),
    ]
    if smoke:
        benches.append(
            (
                "vco_schematic",
                lambda: vco.measure(
                    vco.schematic(), periods=6, steps_per_period=150
                ),
                set(),
            )
        )
    else:
        # The acceptance workload: extracted 8-stage VCO, full transient.
        dut = vco.assembled(conventional_choices(vco))
        benches.append(("vco_assembled", lambda: vco.measure(dut), set()))
    return benches


def _run(measure_thunk, solver: str, stepper: str) -> dict:
    stats = kernel.SolverStats()
    with configure(solver, stepper):
        start = time.perf_counter()
        with kernel.collect(stats):
            metrics = measure_thunk()
        wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "metrics": metrics,
        "newton_iterations": stats.newton_iterations,
        "solves": stats.solves,
        "factorizations": stats.factorizations,
        "lu_reuses": stats.lu_reuses,
        "tran_steps": stats.tran_steps,
        "tran_rejected": stats.tran_rejected,
        "tran_fixed_steps": stats.tran_fixed_steps,
        "backends": stats.backends,
    }


def bench_circuit(label: str, measure_thunk, skip_metrics: set) -> dict:
    rows = {}
    for name, solver, stepper in CONFIGS:
        rows[name] = _run(measure_thunk, solver, stepper)
        print(
            f"  {label}/{name}: {rows[name]['wall_s']}s, "
            f"{rows[name]['tran_steps']} steps "
            f"({rows[name]['tran_rejected']} rejected), "
            f"{rows[name]['factorizations']} factorizations"
        )
    baseline = rows["fixed_dense"]
    for name, row in rows.items():
        for key, ref in baseline["metrics"].items():
            if key in skip_metrics:
                continue
            got = row["metrics"][key]
            assert abs(got - ref) <= METRIC_RTOL * max(
                abs(ref), 1e-30
            ), f"{label}/{name}: metric {key} diverged ({got} vs {ref})"
        row["speedup"] = round(
            baseline["wall_s"] / max(row["wall_s"], 1e-9), 3
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_spice.json",
        help="output JSON path (default: BENCH_spice.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload for CI smoke runs (skips the 2x assert)",
    )
    args = parser.parse_args()

    tech = Technology.default()
    circuits = {}
    for label, thunk, skip in _testbenches(tech, args.smoke):
        print(f"{label}:")
        circuits[label] = bench_circuit(label, thunk, skip)

    report = {
        "benchmark": "spice-kernel",
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "metric_rtol": METRIC_RTOL,
        "circuits": circuits,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    if not args.smoke:
        vco = circuits["vco_assembled"]
        speedup = vco["adaptive_sparse"]["speedup"]
        print(
            f"VCO transient: {vco['fixed_dense']['wall_s']}s baseline -> "
            f"{vco['adaptive_sparse']['wall_s']}s full path "
            f"({speedup}x)"
        )
        assert speedup >= 2.0, (
            f"acceptance regression: adaptive+sparse VCO speedup {speedup}x "
            "< 2x over the fixed-dense baseline"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
