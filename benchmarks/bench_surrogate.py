#!/usr/bin/env python
"""Benchmark the surrogate-guided sweep pruning.

Two passes of Algorithm 1 over the primitive library, sharing one
surrogate corpus:

* **cold** — the corpus starts empty, so the guide falls back to the
  full sweep everywhere while recording (features -> measured cost)
  rows.  This pass doubles as the unpruned baseline.
* **warm** — the corpus now covers every family, so selection sweeps
  keep only the predicted frontier and tuning sweeps truncate at the
  predicted minimum.

The honesty checks are the whole point: the warm pass must land on
**exactly** the cold pass's best-variant cost for every family (pruning
may skip losers, never change winners), a warm run must journal
byte-identically across ``--jobs`` values, and the aggregate simulation
reduction must clear the ISSUE's 40% floor (full mode).

Run via ``make bench-surrogate``, or directly::

    python benchmarks/bench_surrogate.py --out BENCH_surrogate.json

``--smoke`` shrinks the family set for CI smoke runs (the JSON still
carries every field, just from a smaller workload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PrimitiveOptimizer, Technology  # noqa: E402
from repro.primitives import MosPrimitive, PrimitiveLibrary  # noqa: E402

#: The library survey's family set (benchmarks/test_library_survey.py).
FAMILIES = [
    "differential_pair",
    "pmos_differential_pair",
    "cascode_differential_pair",
    "switched_differential_pair",
    "current_mirror",
    "pmos_current_mirror",
    "active_current_mirror",
    "cascode_current_mirror",
    "lv_cascode_current_mirror",
    "common_source_amplifier",
    "common_gate_amplifier",
    "common_drain_amplifier",
    "current_source",
    "pmos_current_source",
    "cascode_current_source",
    "diode_load",
    "cascode_diode_load",
    "current_starved_inverter",
    "cross_coupled_pair",
    "pmos_cross_coupled_pair",
    "cross_coupled_inverters",
    "regenerative_pair",
    "switch",
    "pmos_switch",
]

SMOKE_FAMILIES = ["differential_pair", "current_mirror", "diode_load"]

#: Acceptance floor on the aggregate simulation reduction (full mode).
REDUCTION_FLOOR = 0.40


@contextmanager
def count_simulations():
    """Count every evaluation that actually reaches the simulator.

    Wraps :meth:`MosPrimitive.evaluate` at the class level (the
    ``bench_eval`` idiom) so pruned candidates — which are never
    dispatched — can never count.
    """
    counts = {"evaluations": 0, "simulations": 0}
    original = MosPrimitive.evaluate

    def counting(self, dut):
        values, sims = original(self, dut)
        counts["evaluations"] += 1
        counts["simulations"] += sims
        return values, sims

    MosPrimitive.evaluate = counting
    try:
        yield counts
    finally:
        MosPrimitive.evaluate = original


def _optimizer(corpus, jobs=1, run_dir=None):
    return PrimitiveOptimizer(
        n_bins=2,
        max_wires=3,
        jobs=jobs,
        cache=False,  # every elision below is pruning, not cache hits
        surrogate=True,
        surrogate_corpus=corpus,
        run_dir=run_dir,
    )


def _run_pass(tech, families, corpus):
    """One library pass; returns (per-family rows, counts, wall_s)."""
    library = PrimitiveLibrary()
    rows = {}
    start = time.perf_counter()
    with count_simulations() as counts:
        for family in families:
            primitive = library.create(family, tech, base_fins=48)
            report = _optimizer(corpus).optimize(primitive)
            rows[family] = {
                "simulations": report.total_simulations,
                "best_cost": report.best.cost,
                "sel_pruned": report.surrogate_stats["sel_pruned"],
                "tune_pruned": report.surrogate_stats["tune_pruned"],
            }
    return rows, counts, time.perf_counter() - start


def _journal_determinism(tech, corpus, workdir) -> bool:
    """Warm runs must journal byte-identically for any --jobs value."""
    library = PrimitiveLibrary()
    journals = []
    for label, jobs in (("j1", 1), ("j2", 2)):
        run_dir = workdir / f"journal_{label}"
        primitive = library.create(
            "differential_pair", tech, base_fins=48
        )
        _optimizer(corpus, jobs=jobs, run_dir=run_dir).optimize(primitive)
        journals.append((run_dir / f"{primitive.name}.jsonl").read_bytes())
    return journals[0] == journals[1]


def bench_surrogate(tech, families, workdir) -> dict:
    corpus = workdir / "corpus.jsonl"
    cold_rows, cold_counts, cold_wall = _run_pass(tech, families, corpus)
    warm_rows, warm_counts, warm_wall = _run_pass(tech, families, corpus)

    for family in families:
        cold, warm = cold_rows[family], warm_rows[family]
        assert warm["best_cost"] == cold["best_cost"], (
            f"{family}: surrogate moved the chosen cost "
            f"({cold['best_cost']} -> {warm['best_cost']})"
        )

    cold_sims = cold_counts["simulations"]
    warm_sims = warm_counts["simulations"]
    reduction = 1.0 - warm_sims / max(cold_sims, 1)
    # The warm pass reuses the cold pass's corpus copy on disk; journal
    # determinism gets its own corpus state via the shared file too.
    journal_identical = _journal_determinism(tech, corpus, workdir)
    assert journal_identical, (
        "determinism violation: warm journals diverged across --jobs"
    )
    return {
        "families": {
            family: {
                "cold_simulations": cold_rows[family]["simulations"],
                "warm_simulations": warm_rows[family]["simulations"],
                "best_cost": cold_rows[family]["best_cost"],
                "sel_pruned": warm_rows[family]["sel_pruned"],
                "tune_pruned": warm_rows[family]["tune_pruned"],
            }
            for family in families
        },
        "cold": {
            "wall_s": round(cold_wall, 4),
            "simulations": cold_sims,
            "evaluations": cold_counts["evaluations"],
        },
        "warm": {
            "wall_s": round(warm_wall, 4),
            "simulations": warm_sims,
            "evaluations": warm_counts["evaluations"],
        },
        "sim_reduction": round(reduction, 4),
        "equal_best_cost": True,
        "journal_identical": journal_identical,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_surrogate.json",
        help="output JSON path (default: BENCH_surrogate.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the family set for CI smoke runs",
    )
    args = parser.parse_args()

    tech = Technology.default()
    families = SMOKE_FAMILIES if args.smoke else FAMILIES
    with tempfile.TemporaryDirectory(prefix="bench_surrogate_") as tmp:
        results = bench_surrogate(tech, families, Path(tmp))
    if not args.smoke:
        assert results["sim_reduction"] >= REDUCTION_FLOOR, (
            f"simulation reduction {results['sim_reduction']:.1%} below "
            f"the {REDUCTION_FLOOR:.0%} acceptance floor"
        )
    report = {
        "benchmark": "surrogate",
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "family_count": len(families),
        **results,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"surrogate: {report['cold']['simulations']} -> "
        f"{report['warm']['simulations']} simulations "
        f"({report['sim_reduction']:.1%} reduction) across "
        f"{len(families)} families -> {args.out}"
    )


if __name__ == "__main__":
    main()
