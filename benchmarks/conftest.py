"""Shared benchmark fixtures.

Heavy artifacts (full flow runs) are session-scoped and cached so the
per-table benchmarks print their rows from one run.  Every benchmark
prints a paper-style table next to the paper's reference numbers; see
EXPERIMENTS.md for the recorded comparison.
"""

from __future__ import annotations

import pytest

from repro.circuits import (
    CommonSourceAmpCircuit,
    FiveTransistorOta,
    RingOscillatorVco,
    StrongArmComparator,
)
from repro.flow import HierarchicalFlow
from repro.tech import Technology


def print_table(title, headers, rows):
    from repro.reporting import format_table

    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="session")
def tech():
    return Technology.default()


@pytest.fixture(scope="session")
def flow(tech):
    return HierarchicalFlow(tech, n_bins=3, max_wires=7, placer_iterations=600)


@pytest.fixture(scope="session")
def ota(tech):
    return FiveTransistorOta(tech)


@pytest.fixture(scope="session")
def strongarm(tech):
    return StrongArmComparator(tech)


@pytest.fixture(scope="session")
def vco(tech):
    return RingOscillatorVco(tech, stages=8)


@pytest.fixture(scope="session")
def csamp(tech):
    return CommonSourceAmpCircuit(tech)


@pytest.fixture(scope="session")
def ota_runs(flow, ota):
    """Flow results for the OTA: conventional and this work."""
    return {
        "conventional": flow.run(ota, flavor="conventional"),
        "this_work": flow.run(ota, flavor="this_work"),
        "manual": flow.run(ota, flavor="manual"),
    }


@pytest.fixture(scope="session")
def strongarm_runs(flow, strongarm):
    return {
        "conventional": flow.run(strongarm, flavor="conventional"),
        "this_work": flow.run(strongarm, flavor="this_work"),
        "manual": flow.run(strongarm, flavor="manual"),
    }


@pytest.fixture(scope="session")
def vco_runs(flow, vco):
    """VCO flow runs; measurement (the control sweep) happens per-bench."""
    return {
        "conventional": flow.run(vco, flavor="conventional", measure=False),
        "this_work": flow.run(vco, flavor="this_work", measure=False),
    }
