"""Ablation studies for the design choices DESIGN.md calls out.

1. **Weighted cost vs uniform weights** — the α weights steer selection
   away from catastrophic offset rows; uniform weights dilute that.
2. **Aspect-ratio binning vs single best** — binning trades a little
   primitive cost for placement freedom (smaller packed area).
3. **Max-curvature stop vs exhaustive sweep** — the early stop saves
   simulations while staying near the exhaustive optimum.
4. **LDE-aware vs parasitics-only selection** — ignoring LDEs misranks
   options whose wires are fine but whose stress/proximity shifts matter.
5. **Reconciliation vs naive per-primitive optimum** — max(w_min) obeys
   every primitive's constraint; the naive choice violates some.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import PrimitiveOptimizer
from repro.core.reconcile import reconcile_net
from repro.core.selection import evaluate_options, select_best_per_bin
from repro.core.tuning import choose_stop_point, tune_option
from repro.devices.mosfet import MosGeometry
from repro.primitives import DifferentialPair
from repro.tech import Technology

VARIANTS = [MosGeometry(8, 20, 6), MosGeometry(12, 20, 4), MosGeometry(24, 20, 2)]


@pytest.fixture(scope="module")
def dp(tech):
    return DifferentialPair(tech, base_fins=960)


def test_ablation_weights(dp, benchmark):
    """Uniform weights halve the offset penalty's influence."""
    weighted = evaluate_options(
        dp, variants=VARIANTS, patterns=["ABBA", "AABB"]
    )
    uniform = evaluate_options(
        dp,
        variants=VARIANTS,
        patterns=["ABBA", "AABB"],
        weight_override={"gm": 1.0, "gm_over_ctotal": 1.0, "offset": 1.0},
    )
    benchmark(lambda: None)
    rows = []
    for w, u in zip(weighted, uniform):
        rows.append(
            [w.describe().split(" cost")[0], f"{w.cost:.1f}", f"{u.cost:.1f}"]
        )
    print_table(
        "Ablation 1 — paper weights vs uniform weights",
        ["option", "weighted cost", "uniform cost"],
        rows,
    )
    # Under paper weights the offset term (alpha=1) dominates AABB rows;
    # uniform weighting raises the Gm-family terms instead.
    aabb_w = [o for o in weighted if o.pattern == "AABB"]
    aabb_u = [o for o in uniform if o.pattern == "AABB"]
    assert max(o.cost for o in aabb_w) > 50.0
    sym_w = [o for o in weighted if o.pattern == "ABBA"]
    sym_u = [o for o in uniform if o.pattern == "ABBA"]
    for w, u in zip(sym_w, sym_u):
        assert u.cost > w.cost  # uniform raises the 0.5-weighted terms


def test_ablation_binning(dp, benchmark):
    """One option per bin buys the placer aspect-ratio freedom."""
    options = evaluate_options(dp, variants=VARIANTS, patterns=["ABBA"])
    binned = select_best_per_bin(options, 3)
    single = select_best_per_bin(options, 1)
    benchmark(lambda: None)
    print_table(
        "Ablation 2 — binning vs single global best",
        ["mode", "#options to placer", "best cost", "aspect ratios"],
        [
            [
                "3 bins",
                len(binned),
                f"{min(o.cost for o in binned):.1f}",
                ", ".join(f"{o.aspect_ratio:.2f}" for o in binned),
            ],
            [
                "1 bin",
                len(single),
                f"{single[0].cost:.1f}",
                f"{single[0].aspect_ratio:.2f}",
            ],
        ],
    )
    assert len(binned) == 3
    assert len(single) == 1
    # The global best is among the binned choices.
    assert min(o.cost for o in binned) == single[0].cost
    # Binning spans a wider aspect-ratio range than the single choice.
    spread = max(o.aspect_ratio for o in binned) / min(
        o.aspect_ratio for o in binned
    )
    assert spread > 1.5


def test_ablation_curvature_stop(dp, benchmark):
    """The early-stop rule approximates the exhaustive sweep optimum."""
    from repro.core.selection import evaluate_option

    option = evaluate_option(dp, MosGeometry(24, 20, 2), "ABBA")
    early = tune_option(dp, option, max_wires=4)
    exhaustive = tune_option(dp, option, max_wires=8)
    benchmark(lambda: None)
    print_table(
        "Ablation 3 — tuning stop rule",
        ["mode", "simulations", "final cost"],
        [
            ["early stop (max 4)", early.simulations, f"{early.option.cost:.2f}"],
            ["exhaustive (max 8)", exhaustive.simulations, f"{exhaustive.option.cost:.2f}"],
        ],
    )
    assert early.simulations <= exhaustive.simulations
    # The early stop trades a bounded amount of tuned cost (the paper's
    # maximum-curvature argument) for a ~1.5x simulation saving.
    assert early.option.cost <= exhaustive.option.cost * 1.15 + 0.1


def test_ablation_lde(benchmark):
    """LDE-blind evaluation misjudges costs (selection sees rosier values)."""
    tech = Technology.default()
    tech_blind = Technology.without_lde()
    dp = DifferentialPair(tech, base_fins=960)
    dp_blind = DifferentialPair(tech_blind, base_fins=960)
    full = evaluate_options(dp, variants=VARIANTS[:2], patterns=["ABBA"])
    blind = evaluate_options(dp_blind, variants=VARIANTS[:2], patterns=["ABBA"])
    benchmark(lambda: None)
    rows = [
        [f.describe().split(" cost")[0], f"{f.cost:.2f}", f"{b.cost:.2f}"]
        for f, b in zip(full, blind)
    ]
    print_table(
        "Ablation 4 — LDE-aware vs parasitics-only cost",
        ["option", "with LDE", "without LDE"],
        rows,
    )
    for f, b in zip(full, blind):
        # LDE adds real degradation: the blind evaluation is optimistic
        # on the Gm deviation.
        assert b.breakdown.deviations["gm"] < f.breakdown.deviations["gm"]


def test_ablation_reconciliation(benchmark):
    """Naive per-primitive optima can violate another primitive's w_min."""
    from repro.core.port_constraints import PortConstraint
    from repro.core.tuning import SweepPoint

    def constraint(name, w_min, w_max, best):
        sweep = [SweepPoint(i, abs(i - best), {}) for i in range(1, 8)]
        return PortConstraint(name, "net3", w_min, w_max, sweep)

    dp_c = constraint("dp", 1, None, best=1)
    cm_c = constraint("cm", 4, None, best=5)
    result = reconcile_net("net3", [dp_c, cm_c])
    naive = min(
        range(1, 8),
        key=lambda w: dp_c.cost_at(w),  # the DP's selfish optimum
    )
    benchmark(lambda: None)
    print_table(
        "Ablation 5 — reconciliation vs naive choice (paper Fig. 6 net 3)",
        ["mode", "chosen wires", "satisfies DP w_min", "satisfies CM w_min"],
        [
            ["reconciled", result.wires, result.wires >= 1, result.wires >= 4],
            ["naive (DP-only)", naive, naive >= 1, naive >= 4],
        ],
    )
    assert result.wires == 4  # the paper's outcome
    assert naive < 4  # the naive choice starves the mirror
