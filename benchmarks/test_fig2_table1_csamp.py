"""Fig. 2 / Table I — parasitic RC trade-off in a common-source amplifier.

Paper (Fig. 2): Gain 18.04 dB / UGF 6.7 GHz / Power 291 uW at schematic;
the narrow wire loses UGF mildly (6.6), the wide wire badly (5.3), and the
optimized wire recovers it (6.6).  Table I shows the same story on the
primitive metrics (Gm 1.96 -> 1.93 narrow -> 1.96 wide; C_total 50.4 ->
50.58 -> 54.04 -> 50.66 fF).

Here: the stage's drain-net wire configuration is swept (narrow = 1
strap, wide = 8 straps, optimized = tuned by Algorithm 1), and both the
circuit metrics and the primitive metrics are printed.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cellgen.generator import WireConfig
from repro.circuits.base import LayoutChoice
from repro.core.selection import evaluate_option
from repro.core.tuning import tune_option
from repro.devices.mosfet import MosGeometry


STAGE_BASE = MosGeometry(8, 12, 4)
LOAD_BASE = MosGeometry(8, 12, 6)


def wire_config(n):
    return WireConfig(parallel={"out": n, "0": 1})


@pytest.fixture(scope="module")
def rows(csamp, tech):
    stage, load = csamp.stage, csamp.load

    def circuit_metrics(stage_wires):
        choices = {
            "xstage": LayoutChoice(STAGE_BASE, "ABAB", stage_wires),
            "xload": LayoutChoice(LOAD_BASE, "ABAB"),
        }
        return csamp.measure(csamp.assembled(choices))

    def stage_metrics(stage_wires):
        values, _ = stage.evaluate(
            stage.layout_circuit(STAGE_BASE, "ABAB", stage_wires)
        )
        return values

    schematic = csamp.measure(csamp.schematic())
    narrow = circuit_metrics(wire_config(1))
    wide = circuit_metrics(wire_config(8))

    option = evaluate_option(stage, STAGE_BASE, "ABAB")
    tuned = tune_option(stage, option, max_wires=8)
    optimized = circuit_metrics(tuned.option.wires)

    prim_ref = stage.schematic_reference()
    prim_rows = {
        "schematic": prim_ref,
        "narrow": stage_metrics(wire_config(1)),
        "wide": stage_metrics(wire_config(8)),
        "optimized": stage_metrics(tuned.option.wires),
    }
    return {
        "circuit": {
            "schematic": schematic,
            "narrow": narrow,
            "wide": wide,
            "optimized": optimized,
        },
        "primitive": prim_rows,
    }


def test_fig2_circuit_rows(rows, benchmark):
    data = benchmark(lambda: rows["circuit"])
    print_table(
        "Fig. 2 — CS amplifier vs wire width "
        "(paper: gain 18.04/17.90/18.03/18.02 dB, UGF 6.7/6.6/5.3/6.6 GHz)",
        ["row", "gain (dB)", "UGF (GHz)", "power (uW)"],
        [
            [k, v["gain_db"], v["ugf"] / 1e9, v["power"] * 1e6]
            for k, v in data.items()
        ],
    )
    # Shape: wide wire hurts UGF more than narrow; optimized recovers.
    assert data["wide"]["ugf"] < data["narrow"]["ugf"]
    assert data["optimized"]["ugf"] >= data["wide"]["ugf"]
    # Optimized tracks the schematic more closely than the worst case.
    sch = data["schematic"]["ugf"]
    assert abs(sch - data["optimized"]["ugf"]) <= abs(sch - data["wide"]["ugf"])


def test_table1_primitive_rows(rows, csamp, benchmark):
    data = benchmark(lambda: rows["primitive"])
    print_table(
        "Table I — primitive metrics of the CS stage "
        "(paper: Gm 1.96/1.93/1.96/1.95 mA/V)",
        ["row", "Gm (mA/V)", "Rout (kOhm)"],
        [
            [k, v["gm"] * 1e3, v["rout"] / 1e3]
            for k, v in data.items()
        ],
    )
    sch = data["schematic"]["gm"]
    # The optimized wiring tracks the schematic Gm at least as well as
    # either extreme (the paper's 1.95 vs 1.93/1.96 pattern).
    assert abs(sch - data["optimized"]["gm"]) <= abs(sch - data["narrow"]["gm"]) + 1e-6
    assert abs(sch - data["optimized"]["gm"]) <= abs(sch - data["wide"]["gm"]) + 1e-6
    # Narrow and wide bracket a small Gm spread (drain R is a weak lever).
    assert data["wide"]["gm"] == pytest.approx(data["narrow"]["gm"], rel=0.05)


def test_bench_single_wire_evaluation(benchmark, csamp):
    """Timing: one post-layout evaluation of the CS stage."""
    stage = csamp.stage

    def run():
        return stage.evaluate(stage.layout_circuit(STAGE_BASE, "ABAB"))

    values, sims = benchmark(run)
    assert sims == 2
