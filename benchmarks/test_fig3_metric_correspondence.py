"""Fig. 3 — relating primitive metrics to circuit metrics (StrongARM).

The paper's Fig. 3 draws the correspondence between primitive-level
performance metrics (input pair Gm/offset, regenerative pair's negative
gm, latch output capacitance) and the comparator's top-level delay and
offset — "nonlinear functions of the primitive performance metrics".

This bench demonstrates the correspondence empirically on the schematic:

* a larger regenerative pair (higher neg-gm per capacitance) resolves
  faster,
* an injected input-pair Vth mismatch appears as comparator input offset
  (the smallest input the comparator still resolves correctly).
"""

import pytest

from benchmarks.conftest import print_table
from repro.circuits import StrongArmComparator
from repro.errors import MeasureError


@pytest.fixture(scope="module")
def delay_vs_regen(tech):
    rows = []
    for latch_fins in (32, 64, 128):
        comparator = StrongArmComparator(tech, latch_fins=latch_fins)
        regen_ref = comparator.regen.schematic_reference()
        metrics = comparator.measure(comparator.schematic(), dt=2e-12)
        rows.append(
            {
                "latch_fins": latch_fins,
                "neg_gm": regen_ref["neg_gm"],
                "cout": regen_ref["cout"],
                "delay": metrics["delay"],
            }
        )
    return rows


def test_fig3_latch_capacitance_costs_delay(delay_vs_regen, benchmark):
    benchmark(lambda: list(delay_vs_regen))
    print_table(
        "Fig. 3 — latch metrics vs comparator delay (fixed input pair)",
        ["latch fins", "neg_gm (mS)", "cout (fF)", "delay (ps)"],
        [
            [
                r["latch_fins"],
                f"{r['neg_gm'] * 1e3:.2f}",
                f"{r['cout'] * 1e15:.1f}",
                f"{r['delay'] * 1e12:.1f}",
            ]
            for r in delay_vs_regen
        ],
    )
    # neg-gm and cout both scale with size (their ratio is constant), so
    # with a fixed-size input pair the extra latch capacitance dominates:
    # delay grows.  This is exactly the C_out entry of the paper's Fig. 3
    # correspondence (delay is a nonlinear function of the latch C).
    neg_gms = [r["neg_gm"] for r in delay_vs_regen]
    couts = [r["cout"] for r in delay_vs_regen]
    delays = [r["delay"] for r in delay_vs_regen]
    assert neg_gms == sorted(neg_gms)
    assert couts == sorted(couts)
    assert delays == sorted(delays)


def test_fig3_pair_gm_buys_delay(tech, benchmark):
    """At a fixed latch, a stronger input pair resolves faster."""
    benchmark(lambda: None)
    delays = []
    for pair_fins in (48, 96, 192):
        comparator = StrongArmComparator(tech, pair_fins=pair_fins)
        metrics = comparator.measure(comparator.schematic(), dt=2e-12)
        delays.append(metrics["delay"])
    print(f"\npair fins (48/96/192) -> delay (ps): "
          + "/".join(f"{d * 1e12:.1f}" for d in delays))
    assert delays == sorted(delays, reverse=True)


def test_fig3_input_offset_correspondence(tech, benchmark):
    """An input-pair Vth mismatch flips small-input decisions."""
    from dataclasses import replace

    benchmark(lambda: None)
    mismatch = 0.02  # 20 mV on one input device

    def decision(v_in_diff, inject):
        comparator = StrongArmComparator(tech, v_in_diff=v_in_diff)
        schematic = comparator.schematic()
        if inject:
            ma = schematic.element("xpair.MA")
            schematic.replace_element(
                "xpair.MA", replace(ma, vth_mismatch=mismatch)
            )
        return comparator.measure(schematic, dt=2e-12)["decision"]

    # Without mismatch a +5 mV input resolves positive.
    assert decision(+5e-3, inject=False) > 0
    # A +20 mV Vth shift on the positive input device overwhelms +5 mV:
    # the comparator now decides negative — input-referred offset.
    assert decision(+5e-3, inject=True) < 0
    # A large input still wins over the offset.
    assert decision(+50e-3, inject=True) > 0
