"""Fig. 5 — layout options for a DP with a fixed fin budget.

The paper's Fig. 5(c) shows three transistor configurations for a 96-
FinFET DP at different (nfin, nf, m); the full Table III search uses
960 fins with nfin*nf*m constant.  This bench enumerates the variant
space and shows the aspect-ratio spread the binning step works with.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cellgen.sizing import enumerate_sizings
from repro.primitives import DifferentialPair


@pytest.fixture(scope="module")
def dp(tech):
    return DifferentialPair(tech, base_fins=960)


def test_fig5_variant_enumeration(dp, benchmark):
    variants = benchmark(dp.variants)
    rows = []
    for base in variants[:14]:
        layout = dp.generate(base, "ABAB")
        rows.append(
            [
                f"({base.nfin}, {base.nf}, {base.m})",
                f"{layout.width / 1000:.1f}",
                f"{layout.height / 1000:.1f}",
                f"{layout.aspect_ratio:.2f}",
            ]
        )
    print_table(
        f"Fig. 5 — {len(variants)} variants of a 960-fin DP "
        "(first 14 shown; nfin*nf*m preserved)",
        ["(nfin, nf, m)", "W (um)", "H (um)", "aspect"],
        rows,
    )
    assert all(v.nfins_total == 960 for v in variants)
    # The variant space spans a wide aspect-ratio range for binning.
    ars = []
    for base in variants:
        ars.append(dp.generate(base, "ABAB").aspect_ratio)
    assert max(ars) / min(ars) > 3.0


def test_fig5_96_finfet_example(tech, benchmark):
    # The figure's example: 96 FinFETs per device.
    variants = benchmark(enumerate_sizings, 96, min_nfin=4, max_nfin=32)
    assert len(variants) >= 3
    for v in variants:
        assert v.nfins_total == 96


def test_bench_variant_generation(benchmark, dp):
    variants = dp.variants()

    def run():
        return [dp.generate(base, "ABAB").aspect_ratio for base in variants[:5]]

    ars = benchmark(run)
    assert len(ars) == 5
