"""Fig. 6 — primitive port optimization on the 5T OTA.

The paper's example: the DP constrains nets 3/4/5, the passive CM nets
1/3, the active CM nets 2/4/5; on net 3 the DP asks w_min=1 and the CM
w_min=4 with no upper bounds, so reconciliation picks max(w_min) = 4.

Here the OTA's diode net (``nx``, the paper's net 3 analogue) is
constrained by both the DP and the mirror, and the reconciliation rule
is exercised directly on the flow's own constraints.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.reconcile import intervals_overlap, reconcile_net


@pytest.fixture(scope="module")
def reconciled(ota_runs):
    return ota_runs["this_work"].reconciled


def test_fig6_constraint_table(reconciled, benchmark):
    benchmark(lambda: dict(reconciled))
    rows = []
    for net, rec in sorted(reconciled.items()):
        for c in rec.constraints:
            rows.append(
                [
                    net,
                    c.primitive_name,
                    c.w_min,
                    c.w_max if c.w_max is not None else "unbounded",
                    "overlap" if rec.overlapped else "gap-search",
                    rec.wires,
                ]
            )
    print_table(
        "Fig. 6 — per-net port constraints and reconciliation "
        "(paper example: net 3 gets max(1, 4) = 4 routes)",
        ["net", "primitive", "w_min", "w_max", "mode", "chosen"],
        rows,
    )
    assert reconciled


def test_shared_net_constrained_by_multiple_primitives(reconciled, benchmark):
    benchmark(lambda: None)
    multi = [r for r in reconciled.values() if len(r.constraints) > 1]
    assert multi, "the OTA's diode/output nets are shared by DP and mirror"


def test_overlap_rule_max_wmin(reconciled, benchmark):
    benchmark(lambda: None)
    for rec in reconciled.values():
        if rec.overlapped:
            assert rec.wires == max(c.w_min for c in rec.constraints)


def test_chosen_wires_respect_intervals(reconciled, benchmark):
    benchmark(lambda: None)
    for rec in reconciled.values():
        if rec.overlapped:
            for c in rec.constraints:
                assert rec.wires >= c.w_min
                if c.w_max is not None:
                    assert rec.wires <= c.w_max


def test_bench_reconciliation(benchmark, reconciled):
    nets = {
        net: list(rec.constraints) for net, rec in reconciled.items()
    }

    def run():
        return {
            net: reconcile_net(net, constraints).wires
            for net, constraints in nets.items()
        }

    chosen = benchmark(run)
    assert all(w >= 1 for w in chosen.values())
