"""Library-wide survey: Algorithm 1 over every primitive family.

Not a paper table, but the paper's Section II-A claim in benchmark form:
augmenting and optimizing "20-30 primitives in a primitive library …
constitutes a manageable overhead".  One row per family: option count,
simulations, best cost, and the winning configuration.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import PrimitiveOptimizer
from repro.primitives import PrimitiveLibrary

FAMILIES = [
    "differential_pair",
    "pmos_differential_pair",
    "cascode_differential_pair",
    "switched_differential_pair",
    "current_mirror",
    "pmos_current_mirror",
    "active_current_mirror",
    "cascode_current_mirror",
    "lv_cascode_current_mirror",
    "common_source_amplifier",
    "common_gate_amplifier",
    "common_drain_amplifier",
    "current_source",
    "pmos_current_source",
    "cascode_current_source",
    "diode_load",
    "cascode_diode_load",
    "current_starved_inverter",
    "cross_coupled_pair",
    "pmos_cross_coupled_pair",
    "cross_coupled_inverters",
    "regenerative_pair",
    "switch",
    "pmos_switch",
]


@pytest.fixture(scope="module")
def survey(tech):
    library = PrimitiveLibrary()
    optimizer = PrimitiveOptimizer(n_bins=2, max_wires=3)
    results = {}
    for family in FAMILIES:
        primitive = library.create(family, tech, base_fins=48)
        results[family] = optimizer.optimize(
            primitive, variants=primitive.variants()[:4]
        )
    return results


def test_survey_table(survey, benchmark):
    benchmark(lambda: None)
    rows = []
    for family, report in survey.items():
        best = report.best
        rows.append(
            [
                family,
                len(report.options),
                report.total_simulations,
                f"({best.base.nfin},{best.base.nf},{best.base.m})",
                best.pattern,
                f"{best.cost:.2f}",
            ]
        )
    print_table(
        "Library survey — Algorithm 1 on every MOS primitive family "
        "(48 fins, first 4 variants)",
        ["family", "options", "sims", "best sizing", "pattern", "cost"],
        rows,
    )
    assert len(survey) == len(FAMILIES)


def test_survey_costs_finite(survey, benchmark):
    benchmark(lambda: None)
    for family, report in survey.items():
        assert 0.0 <= report.best.cost < 1e4, family


def test_matched_families_prefer_symmetric_patterns(survey, benchmark):
    benchmark(lambda: None)
    # Families whose metric set punishes mismatch (input offset or
    # current ratio) never pick the clustered pattern.  Cross-coupled
    # structures have no mismatch metric in Table II, so they are free
    # to cluster.
    sensitive = [
        f
        for f in FAMILIES
        if ("differential_pair" in f or "mirror" in f)
        and "cross" not in f
    ]
    for family in sensitive:
        assert survey[family].best.pattern != "AABB", family


def test_bench_one_family(benchmark, tech):
    library = PrimitiveLibrary()
    optimizer = PrimitiveOptimizer(n_bins=2, max_wires=2)

    def run():
        primitive = library.create("diode_load", tech, base_fins=48)
        return optimizer.optimize(primitive, variants=primitive.variants()[:2])

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.best.cost >= 0
