"""Table III — cost components for the DP layout options.

Paper: a W/L = 46um/14nm differential pair (960 fins per side), 11
layouts over (nfin, nf, m) in {(8,20,6), (16,12,5), (24,20,2),
(12,20,4)} and patterns {ABBA, ABAB, AABB}, binned into three aspect
ratios.  Headline shapes: ABAB edges out ABBA on dGm/dC_total, one AABB
row blows up on offset (92% -> cost 101.7), and the boldfaced minimum-
cost option per bin goes to the placer.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import PrimitiveOptimizer
from repro.core.selection import select_best_per_bin
from repro.devices.mosfet import MosGeometry
from repro.primitives import DifferentialPair

VARIANTS = [
    MosGeometry(8, 20, 6),
    MosGeometry(16, 12, 5),
    MosGeometry(24, 20, 2),
    MosGeometry(12, 20, 4),
]
PATTERNS = ["ABBA", "ABAB", "AABB"]


@pytest.fixture(scope="module")
def report(tech):
    dp = DifferentialPair(tech, base_fins=960)
    optimizer = PrimitiveOptimizer(n_bins=3, max_wires=7)
    return dp, optimizer.optimize(dp, variants=VARIANTS, patterns=PATTERNS, tune=False)


def test_table3_rows(report, benchmark):
    dp, rep = benchmark(lambda: report)
    rows = []
    for o in sorted(rep.options, key=lambda o: (o.aspect_ratio, o.pattern)):
        d = o.breakdown.deviations
        rows.append(
            [
                f"nfin={o.base.nfin} nf={o.base.nf} m={o.base.m}",
                o.pattern,
                f"{o.aspect_ratio:.2f}",
                f"{d['gm']:.1f}%",
                f"{d['gm_over_ctotal']:.1f}%",
                f"{d['offset']:.1f}%",
                f"{o.cost:.1f}",
            ]
        )
    print_table(
        "Table III — DP layout option costs "
        "(paper: best rows cost 3.0-4.3; AABB blow-up 101.7)",
        ["sizing", "pattern", "AR", "dGm", "dGm/Ct", "dOffset", "cost"],
        rows,
    )

    # Shape 1: at least one AABB option is catastrophically penalized.
    aabb_costs = [o.cost for o in rep.options if o.pattern == "AABB"]
    other_costs = [o.cost for o in rep.options if o.pattern != "AABB"]
    assert max(aabb_costs) > 3 * max(other_costs)

    # Shape 2: three bins, one winner each, none of them AABB.
    selected = select_best_per_bin(rep.options, 3)
    assert len(selected) == 3
    assert all(o.pattern != "AABB" for o in selected)

    # Shape 3: symmetric patterns have (near-)zero offset deviation.
    for o in rep.options:
        if o.pattern in ("ABBA", "ABAB"):
            assert o.breakdown.deviations["offset"] < 5.0


def test_table3_selection_count(report, benchmark):
    _, rep = benchmark(lambda: report)
    # 4 sizings x 3 patterns, minus infeasible (ABBA needs even m: m=5
    # works through the 2D alternating arrangement) = 12 options.
    assert len(rep.options) == 12
    # 3 metrics per option, like the paper's "20 x 3" accounting.
    assert rep.stages[0].simulations == len(rep.options) * 3


def test_bench_one_selection_evaluation(benchmark, tech):
    dp = DifferentialPair(tech, base_fins=960)
    from repro.core.selection import evaluate_option

    result = benchmark(evaluate_option, dp, MosGeometry(8, 20, 6), "ABAB")
    assert result.cost > 0
