"""Table IV — DP and passive-CM cost during primitive port optimization.

Paper: with 2um global routes on metal 3, the DP's drain-route sweep has
its cost minimum at 4 wires with interval [w_min=3, w_max=5]; the CM's
cost keeps improving to 6-7 wires.  The shapes to reproduce: an
initially-improving, eventually-worsening (or saturating) cost curve and
a meaningful [w_min, w_max] interval per primitive.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import GlobalRouteInfo
from repro.core.port_constraints import derive_port_constraint
from repro.core.selection import evaluate_option
from repro.devices.mosfet import MosGeometry
from repro.primitives import DifferentialPair, PassiveCurrentMirror

ROUTE_LENGTH = 2000.0  # the paper's 2um M3 routes


def dp_constraint(tech, max_wires=7):
    dp = DifferentialPair(tech, base_fins=960)
    option = evaluate_option(dp, MosGeometry(8, 20, 6), "ABAB")
    dut = dp.extract(dp.generate(option.base, option.pattern), option.base)
    route = GlobalRouteInfo(
        "outp", "M3", ROUTE_LENGTH, via_cuts=2, via_resistance=20.0,
        symmetric_with=("outn",),
    )
    return dp, derive_port_constraint(dp, dut.build_circuit(), route, max_wires)


def cm_constraint(tech, max_wires=7):
    cm = PassiveCurrentMirror(tech, base_fins=240, ratio=1)
    option = evaluate_option(cm, MosGeometry(8, 6, 5), "ABAB")
    dut = cm.extract(cm.generate(option.base, option.pattern), option.base)
    route = GlobalRouteInfo(
        "out", "M3", ROUTE_LENGTH, via_cuts=2, via_resistance=20.0
    )
    return cm, derive_port_constraint(cm, dut.build_circuit(), route, max_wires)


@pytest.fixture(scope="module")
def constraints(tech):
    dp, (dp_c, dp_sims) = dp_constraint(tech)
    cm, (cm_c, cm_sims) = cm_constraint(tech)
    return {"dp": (dp, dp_c, dp_sims), "cm": (cm, cm_c, cm_sims)}


def test_table4_dp_sweep(constraints, benchmark):
    dp, constraint, _ = benchmark(lambda: constraints["dp"])
    ref = dp.schematic_reference()
    rows = []
    for p in constraint.sweep:
        dgm = abs(ref["gm"] - p.values["gm"]) / ref["gm"] * 100
        dgc = (
            abs(ref["gm_over_ctotal"] - p.values["gm_over_ctotal"])
            / ref["gm_over_ctotal"]
            * 100
        )
        rows.append([p.wires, f"{dgm:.2f}%", f"{dgc:.2f}%", f"{p.cost:.2f}"])
    print_table(
        "Table IV (DP) — paper: dGm 3.4->1.1%, cost min at 4 wires, "
        "interval [3, 5]",
        ["# wires", "dGm", "dGm/Ctotal", "cost"],
        rows,
    )
    costs = constraint.costs if hasattr(constraint, "costs") else [
        p.cost for p in constraint.sweep
    ]
    # dGm improves monotonically with added route wires.
    dgms = [abs(ref["gm"] - p.values["gm"]) for p in constraint.sweep]
    assert dgms[-1] < dgms[0]
    # The interval is non-trivial.
    assert constraint.w_min >= 1
    if constraint.w_max is not None:
        assert constraint.w_max >= constraint.w_min


def test_table4_cm_sweep(constraints, benchmark):
    cm, constraint, _ = benchmark(lambda: constraints["cm"])
    ref = cm.schematic_reference()
    rows = []
    for p in constraint.sweep:
        dr = (
            abs(ref["current_ratio"] - p.values["current_ratio"])
            / ref["current_ratio"]
            * 100
        )
        dc = abs(ref["cout"] - p.values["cout"]) / ref["cout"] * 100
        rows.append([p.wires, f"{dr:.2f}%", f"{dc:.2f}%", f"{p.cost:.2f}"])
    print_table(
        "Table IV (CM) — paper: cost decreasing to ~6-7 wires",
        ["# wires", "dRatio", "dCtotal", "cost"],
        rows,
    )
    # Capacitance deviation grows with wires (route C accumulates).
    dcs = [abs(ref["cout"] - p.values["cout"]) for p in constraint.sweep]
    assert dcs[-1] > dcs[0]


def test_table4_wmin_shifts_with_gm_weight(tech, benchmark):
    """Paper: '[3,5] becomes [4,6] if dGm is weighted higher'."""
    dp = benchmark(lambda: DifferentialPair(tech, base_fins=960))
    option = evaluate_option(dp, MosGeometry(8, 20, 6), "ABAB")
    dut = dp.extract(
        dp.generate(option.base, option.pattern), option.base
    ).build_circuit()
    route = GlobalRouteInfo(
        "outp", "M3", ROUTE_LENGTH, via_cuts=2, via_resistance=20.0,
        symmetric_with=("outn",),
    )
    normal, _ = derive_port_constraint(dp, dut, route, max_wires=7)
    boosted, _ = derive_port_constraint(
        dp, dut, route, max_wires=7,
        weight_override={"gm": 1.0, "gm_over_ctotal": 0.1},
    )
    print(f"\nnormal interval [{normal.w_min}, {normal.w_max}]; "
          f"gm-weighted interval [{boosted.w_min}, {boosted.w_max}]")
    # Weighting Gm higher never tightens the interval downward.
    upper = lambda c: c.w_max if c.w_max is not None else 99  # noqa: E731
    assert upper(boosted) >= upper(normal)


def test_bench_port_constraint(benchmark, tech):
    def run():
        _, (constraint, sims) = cm_constraint(tech, max_wires=3)
        return constraint

    constraint = benchmark.pedantic(run, rounds=2, iterations=1)
    assert constraint.w_min >= 1
