"""Table V — number of simulations for a set of primitives.

Paper: DP 113 simulations (20x3 selection + 3x7x1 tuning + 2x8x2 ports),
CM 74, current-starved inverter 157 — and an *effective* wall time of
3 x 10 s = 30 s per primitive because every stage's simulations run in
parallel.

The reproduction runs the same three optimizations and prints the actual
per-stage counts; the effective-time model (one 10 s batch per stage)
matches the paper exactly.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import GlobalRouteInfo, PrimitiveOptimizer
from repro.core.optimizer import PAPER_SIM_TIME
from repro.primitives import (
    CurrentStarvedInverter,
    DifferentialPair,
    PassiveCurrentMirror,
)

PAPER = {"differential pair": 113, "current mirror": 74, "current-starved inverter": 157}


@pytest.fixture(scope="module")
def reports(tech):
    optimizer = PrimitiveOptimizer(n_bins=3, max_wires=7)
    dp = DifferentialPair(tech, base_fins=960)
    cm = PassiveCurrentMirror(tech, base_fins=240, ratio=1)
    csi = CurrentStarvedInverter(tech, base_fins=48)
    return {
        "differential pair": optimizer.optimize(
            dp,
            routes=[
                GlobalRouteInfo("outp", "M3", 2000.0, 2, 20.0, ("outn",)),
                GlobalRouteInfo("tail", "M3", 2000.0, 2, 20.0),
            ],
        ),
        "current mirror": optimizer.optimize(
            cm,
            routes=[GlobalRouteInfo("out", "M3", 2000.0, 2, 20.0)],
        ),
        "current-starved inverter": optimizer.optimize(
            csi,
            routes=[GlobalRouteInfo("out", "M3", 2000.0, 2, 20.0)],
        ),
    }


def test_table5_counts(reports, benchmark):
    rows = benchmark(list)
    for name, report in reports.items():
        stage = {s.name: s.simulations for s in report.stages}
        rows.append(
            [
                name,
                stage.get("selection", 0),
                stage.get("tuning", 0),
                stage.get("port_constraints", 0),
                report.total_simulations,
                f"{report.effective_time:.0f}s",
                f"(paper {PAPER[name]}, 30s)",
            ]
        )
    print_table(
        "Table V — simulations per optimization stage",
        ["primitive", "selection", "tuning", "ports", "total", "eff. time", "paper"],
        rows,
    )
    for name, report in reports.items():
        # Same order of magnitude as the paper's counts.
        assert 0.2 * PAPER[name] < report.total_simulations < 5 * PAPER[name]
        # Three parallel stages -> the paper's 30 s effective time.
        assert report.effective_time == 3 * PAPER_SIM_TIME


def test_table5_selection_structure(reports, benchmark):
    # Selection cost = #options x #metrics, the paper's "20 x 3" shape.
    dp_report = benchmark(lambda: reports["differential pair"])
    assert dp_report.stages[0].simulations == len(dp_report.options) * 3
    cm_report = reports["current mirror"]
    assert cm_report.stages[0].simulations == len(cm_report.options) * 2


def test_bench_full_dp_optimization(benchmark, tech):
    optimizer = PrimitiveOptimizer(n_bins=2, max_wires=4)

    def run():
        dp = DifferentialPair(tech, base_fins=240)
        return optimizer.optimize(dp)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.best.cost > 0
