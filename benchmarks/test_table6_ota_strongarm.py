"""Table VI — high-frequency 5T OTA and StrongARM comparator.

Paper rows (schematic / manual / conventional / this work):

* OTA current (uA):   706 / 706 / 675 / 708
* OTA gain (dB):      22.6 / 22.4 / 21.8 / 22.4
* OTA UGF (GHz):      5.1 / 4.8 / 4.2 / 4.8
* OTA 3dB (MHz):      389 / 384 / 362 / 383
* OTA PM (deg):       77.9 / 78.0 / 75.5 / 77.2
* SA delay (ps):      19.2 / 25.4 / 35.0 / 31.5
* SA power (uW):      145 / 161 / 172 / 168

The claim to reproduce is the *ordering*: this work sits between manual
(best) and conventional (worst) on every parasitic-sensitive metric, and
recovers most of the schematic-to-conventional gap.
"""

import pytest

from benchmarks.conftest import print_table


def closer(sch, a, b):
    """True if a is at least as close to the schematic value as b."""
    return abs(sch - a) <= abs(sch - b) + 1e-12


@pytest.fixture(scope="module")
def ota_table(ota, ota_runs):
    sch = ota.measure(ota.schematic())
    return {
        "schematic": sch,
        "manual": ota_runs["manual"].metrics,
        "conventional": ota_runs["conventional"].metrics,
        "this_work": ota_runs["this_work"].metrics,
    }


@pytest.fixture(scope="module")
def sa_table(strongarm, strongarm_runs):
    sch = strongarm.measure(strongarm.schematic())
    return {
        "schematic": sch,
        "manual": strongarm_runs["manual"].metrics,
        "conventional": strongarm_runs["conventional"].metrics,
        "this_work": strongarm_runs["this_work"].metrics,
    }


def test_table6_ota(ota_table, benchmark):
    benchmark(lambda: dict(ota_table))
    rows = [
        [
            name,
            f"{m['current'] * 1e6:.0f}",
            f"{m['gain_db']:.1f}",
            f"{m['ugf'] / 1e9:.2f}",
            f"{m['f3db'] / 1e6:.0f}",
            f"{m['phase_margin']:.1f}",
        ]
        for name, m in ota_table.items()
    ]
    print_table(
        "Table VI (OTA) — paper: 706/675/708 uA, 22.6/21.8/22.4 dB, "
        "5.1/4.2/4.8 GHz",
        ["row", "current (uA)", "gain (dB)", "UGF (GHz)", "3dB (MHz)", "PM (deg)"],
        rows,
    )
    sch, tw, conv = (
        ota_table["schematic"],
        ota_table["this_work"],
        ota_table["conventional"],
    )
    # This work recovers more of the schematic performance than the
    # conventional flow on every parasitic-sensitive metric.
    for key in ("current", "ugf", "f3db"):
        assert closer(sch[key], tw[key], conv[key]), key


def test_table6_ota_manual_vs_this_work(ota_table, benchmark):
    benchmark(lambda: dict(ota_table))
    sch, tw, man = (
        ota_table["schematic"],
        ota_table["this_work"],
        ota_table["manual"],
    )
    # The paper finds this work competitive with manual layout: within
    # a factor of two of the oracle's deviation on UGF.
    dev_tw = abs(sch["ugf"] - tw["ugf"])
    dev_man = abs(sch["ugf"] - man["ugf"])
    assert dev_tw <= 2.0 * dev_man + 0.05 * sch["ugf"]


def test_table6_strongarm(sa_table, benchmark):
    benchmark(lambda: dict(sa_table))
    rows = [
        [name, f"{m['delay'] * 1e12:.1f}", f"{m['power'] * 1e6:.2f}"]
        for name, m in sa_table.items()
    ]
    print_table(
        "Table VI (StrongARM) — paper delay: 19.2/25.4/35.0/31.5 ps",
        ["row", "delay (ps)", "power (uW)"],
        rows,
    )
    sch, tw, conv = (
        sa_table["schematic"],
        sa_table["this_work"],
        sa_table["conventional"],
    )
    # Delay ordering: schematic fastest, conventional slowest, this work
    # in between (the paper's 19.2 < 31.5 < 35.0).
    assert sch["delay"] < tw["delay"]
    assert tw["delay"] < conv["delay"]


def test_table8_style_runtimes(ota_runs, strongarm_runs, benchmark):
    benchmark(lambda: None)
    rows = [
        ["OTA", f"{ota_runs['this_work'].modeled_runtime:.0f}s", "(paper 80s)"],
        [
            "StrongARM",
            f"{strongarm_runs['this_work'].modeled_runtime:.0f}s",
            "(paper 85s)",
        ],
    ]
    print_table("Modeled flow runtimes", ["circuit", "modeled", "paper"], rows)


def test_bench_ota_measurement(benchmark, ota):
    schematic = ota.schematic()
    metrics = benchmark(ota.measure, schematic)
    assert metrics["gain_db"] > 0
