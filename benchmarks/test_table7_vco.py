"""Table VII — eight-stage differential RO-VCO.

Paper (schematic / conventional / this work):

* max frequency (GHz): 7.5 / 3.8 / 5.5
* min frequency (GHz): 0.20 / 0.26 / 0.25
* voltage range (V):   0-0.5 / 0.1-0.5 / 0-0.5

The shape: the conventional layout loses roughly half the maximum
frequency and part of the usable control range; the optimized flow
recovers a large fraction of both.
"""

import pytest

from benchmarks.conftest import print_table

SWEEP = [0.38, 0.45, 0.6, 0.8]


@pytest.fixture(scope="module")
def vco_tables(vco, vco_runs):
    results = {}
    results["schematic"] = vco.frequency_sweep(vco.schematic(), SWEEP)
    results["conventional"] = vco.frequency_sweep(
        vco_runs["conventional"].assembled, SWEEP
    )
    results["this_work"] = vco.frequency_sweep(
        vco_runs["this_work"].assembled, SWEEP
    )
    return results


def summarize(sweep):
    osc = {v: f for v, f in sweep.items() if f > 0}
    if not osc:
        return {"f_max": 0.0, "f_min": 0.0, "v_lo": None, "v_hi": None}
    return {
        "f_max": max(osc.values()),
        "f_min": min(osc.values()),
        "v_lo": min(osc),
        "v_hi": max(osc),
    }


def test_table7(vco_tables, benchmark):
    benchmark(lambda: dict(vco_tables))
    rows = []
    for name, sweep in vco_tables.items():
        s = summarize(sweep)
        rng = (
            f"{s['v_lo']:.2f}-{s['v_hi']:.2f}" if s["v_lo"] is not None else "none"
        )
        rows.append(
            [
                name,
                f"{s['f_max'] / 1e9:.2f}",
                f"{s['f_min'] / 1e9:.2f}",
                rng,
            ]
        )
    print_table(
        "Table VII — RO-VCO (paper fmax: 7.5/3.8/5.5 GHz; "
        "range 0-0.5 / 0.1-0.5 / 0-0.5 V)",
        ["row", "f_max (GHz)", "f_min (GHz)", "ctrl range (V)"],
        rows,
    )
    sch = summarize(vco_tables["schematic"])
    conv = summarize(vco_tables["conventional"])
    tw = summarize(vco_tables["this_work"])
    assert sch["f_max"] > 0
    # Conventional loses max frequency; this work recovers part of it.
    assert conv["f_max"] < sch["f_max"]
    assert tw["f_max"] > conv["f_max"]
    # This work's usable range is at least as wide as conventional's.
    count = lambda s: sum(1 for f in s.values() if f > 0)  # noqa: E731
    assert count(vco_tables["this_work"]) >= count(vco_tables["conventional"])


def test_per_point_frequencies(vco_tables, benchmark):
    benchmark(lambda: dict(vco_tables))
    rows = []
    for v in SWEEP:
        rows.append(
            [f"{v:.2f}"]
            + [
                f"{vco_tables[k][v] / 1e9:.2f}" if vco_tables[k][v] else "-"
                for k in ("schematic", "conventional", "this_work")
            ]
        )
    print_table(
        "RO-VCO frequency vs control voltage (GHz)",
        ["v_ctrl", "schematic", "conventional", "this work"],
        rows,
    )


def test_bench_vco_single_point(benchmark, vco):
    schematic = vco.schematic()

    def run():
        return vco.measure(schematic, v_ctrl=0.6, periods=8, steps_per_period=150)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["frequency"] > 0
