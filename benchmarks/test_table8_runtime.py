"""Table VIII — runtime of the approach for the three circuits.

Paper: OTA 80s, StrongARM 85s, RO-VCO 135s, where each primitive's
simulations run in parallel batches of ~10s.  The reproduction reports
the same parallel-batch model (selection/tuning/port-constraint batches
per unique primitive, plus placement and routing) alongside the actual
wall time of the pure-Python run.
"""

import pytest

from benchmarks.conftest import print_table

PAPER = {"OTA": 80.0, "StrongARM": 85.0, "RO-VCO": 135.0}


def test_table8(ota_runs, strongarm_runs, vco_runs, benchmark):
    benchmark(lambda: None)
    rows = []
    for name, runs in (
        ("OTA", ota_runs),
        ("StrongARM", strongarm_runs),
        ("RO-VCO", vco_runs),
    ):
        result = runs["this_work"]
        rows.append(
            [
                name,
                f"{result.modeled_runtime:.0f}s",
                f"{result.wall_time:.1f}s",
                f"(paper {PAPER[name]:.0f}s)",
            ]
        )
    print_table(
        "Table VIII — flow runtime (modeled parallel batches vs paper)",
        ["circuit", "modeled", "actual wall", "paper"],
        rows,
    )
    # The modeled runtimes land in the paper's order of magnitude and
    # the VCO (more primitive types than the OTA has parallel slack)
    # costs at least as much as the cheapest circuit.
    for name, runs in (
        ("OTA", ota_runs),
        ("StrongARM", strongarm_runs),
        ("RO-VCO", vco_runs),
    ):
        modeled = runs["this_work"].modeled_runtime
        assert 0.25 * PAPER[name] <= modeled <= 4 * PAPER[name]


def test_conventional_faster_than_this_work(ota_runs, benchmark):
    benchmark(lambda: None)
    assert (
        ota_runs["conventional"].modeled_runtime
        < ota_runs["this_work"].modeled_runtime
    )


def test_bench_modeled_runtime_accounting(benchmark, ota_runs):
    result = ota_runs["this_work"]
    total = benchmark(lambda: sum(s.parallel_time for r in result.reports.values() for s in r.stages))
    assert total > 0
