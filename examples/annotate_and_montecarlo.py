#!/usr/bin/env python
"""Automatic annotation and Monte-Carlo offset analysis.

Two supporting capabilities of the flow:

1. **Annotation** — the paper assumes netlists arrive annotated into
   primitives "manually or automatically"; this example runs the
   automatic recognizer on a flat 5T OTA transistor netlist.
2. **Monte Carlo** — the DP's offset *spec* is defined as 10% of the
   random offset; this example samples the random offset distribution and
   compares it against the analytic sigma the spec uses.

Run with::

    python examples/annotate_and_montecarlo.py
"""

from repro import Technology
from repro.devices.mosfet import MosGeometry
from repro.flow import annotation_report
from repro.primitives import DifferentialPair
from repro.spice import Circuit, run_monte_carlo


def flat_ota(tech) -> Circuit:
    c = Circuit("flat_ota")
    g = MosGeometry(8, 6, 2)
    c.add_mosfet("m1", "nx", "vinp", "ntail", "0", tech.nmos, g)
    c.add_mosfet("m2", "vout", "vinn", "ntail", "0", tech.nmos, g)
    c.add_mosfet("m3", "nx", "nx", "vdd", "vdd", tech.pmos, g)
    c.add_mosfet("m4", "vout", "nx", "vdd", "vdd", tech.pmos, g)
    c.add_mosfet("m5", "ntail", "vbn", "0", "0", tech.nmos, g)
    return c


def main() -> None:
    tech = Technology.default()

    print("=== automatic annotation of a flat 5T OTA netlist ===")
    print(annotation_report(flat_ota(tech)))

    print("\n=== Monte-Carlo random offset of a differential pair ===")
    dp = DifferentialPair(tech, base_fins=192)
    dut = dp.schematic_circuit()

    def offset_of(circuit):
        values, _ = dp.evaluate(circuit)
        return values["offset"]

    result = run_monte_carlo(
        dut, tech.rules, offset_of, n_samples=40, seed=2,
        match_groups=[("MA", "MB")],
    )
    sigma = dp.random_offset_sigma()
    print(f"samples: {len(result)}")
    print(f"mean |offset|      = {result.mean * 1e3:.3f} mV")
    print(f"95th percentile    = {result.percentile(95) * 1e3:.3f} mV")
    print(f"analytic sigma     = {sigma * 1e3:.3f} mV")
    print(f"offset spec (10%)  = {0.1 * sigma * 1e3:.3f} mV")
    print("\nThe offset spec used by the cost function (Eq. 6's zero-"
          "schematic case) sits at 10% of this random-offset sigma; the "
          "AABB pattern's systematic offset exceeds it, symmetric "
          "patterns stay far below.")


if __name__ == "__main__":
    main()
