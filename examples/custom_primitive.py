#!/usr/bin/env python
"""Extending the primitive library with a custom primitive.

The paper's library augmentation (Section II-B) is a one-time exercise
per topology: declare the devices, the performance metrics with weights,
the tuning terminals, and a testbench per metric.  This example adds a
*source-degenerated differential pair* — a topology not in the stock
library — registers it, and runs Algorithm 1 on it.

Run with::

    python examples/custom_primitive.py
"""

from repro import PrimitiveOptimizer, Technology
from repro.primitives import PrimitiveLibrary
from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc


class DegeneratedDifferentialPair(MosPrimitive):
    """Differential pair with source-degeneration devices.

    The degeneration FETs (triode-biased) linearize the pair; the key
    metrics are the effective Gm (α=1, now set by the degeneration) and
    the output capacitance (α=0.5).
    """

    family = "degenerated_differential_pair"

    def __init__(self, tech, base_fins=192, name=None):
        super().__init__(tech, base_fins, name)
        self.vcm = 0.7 * tech.vdd
        self.vout = 0.75 * tech.vdd
        self.i_tail = 0.3e-6 * base_fins

    def templates(self):
        return [
            DeviceTemplate("MA", "n", {"d": "outp", "g": "inp", "s": "int_sa"}),
            DeviceTemplate("MB", "n", {"d": "outn", "g": "inn", "s": "int_sb"}),
            DeviceTemplate("MDA", "n", {"d": "int_sa", "g": "vbd", "s": "tail"}),
            DeviceTemplate("MDB", "n", {"d": "int_sb", "g": "vbd", "s": "tail"}),
        ]

    def metrics(self):
        return [
            MetricSpec("gm", WEIGHT_HIGH, _eval_gm),
            MetricSpec("cout", WEIGHT_MEDIUM, _eval_cout, larger_is_better=False),
        ]

    def tuning_terminals(self):
        return [
            TuningTerminal(
                "degeneration", nets=("int_sa", "int_sb"),
                correlated_with=("source",),
            ),
            TuningTerminal("source", nets=("tail",), correlated_with=("degeneration",)),
        ]

    def bias_testbench(self, dut, ac_in=False):
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource(
            "vinp", "inp", "0", Dc(self.vcm), ac_magnitude=1.0 if ac_in else 0.0
        )
        tb.add_vsource("vinn", "inn", "0", self.vcm)
        tb.add_vsource("vbd", "vbd", "0", self.tech.vdd)  # triode degeneration
        tb.add_vsource("voutp", "outp", "0", self.vout)
        tb.add_vsource("voutn", "outn", "0", self.vout)
        tb.add_isource("itail", "tail", "0", self.i_tail)
        return tb


def _eval_gm(prim, dut, cache):
    tb = prim.bias_testbench(dut, ac_in=True)
    freqs, current = tbh.transfer_current(tb, prim.tech, ["voutp", "voutn"], [1.0, -1.0])
    return float(abs(current[0])), 1


def _eval_cout(prim, dut, cache):
    tb = prim.bias_testbench(dut)
    tb.replace_element(
        "voutp", VoltageSource("voutp", "outp", "0", Dc(prim.vout), ac_magnitude=1.0)
    )
    return tbh.port_capacitance(tb, prim.tech, "voutp"), 1


def main() -> None:
    tech = Technology.default()
    library = PrimitiveLibrary()
    library.register("degenerated_differential_pair", DegeneratedDifferentialPair)
    print(f"Library now holds {len(library)} primitives.")

    prim = library.create("degenerated_differential_pair", tech, base_fins=192)
    ref = prim.schematic_reference()
    print(f"Schematic: Gm = {ref['gm'] * 1e3:.3f} mA/V, "
          f"Cout = {ref['cout'] * 1e15:.1f} fF")

    report = PrimitiveOptimizer(n_bins=2, max_wires=4).optimize(prim)
    print(f"\n{len(report.options)} options evaluated, "
          f"{report.total_simulations} simulations.")
    for result in report.tuned:
        o = result.option
        d = o.breakdown.deviations
        print(f"  ({o.base.nfin}, {o.base.nf}, {o.base.m}) {o.pattern}: "
              f"cost {o.cost:.2f} (dGm {d['gm']:.1f}%, dCout {d['cout']:.1f}%)")
    print(f"\nBest: {report.best.describe()}")
    print("Note: the correlated degeneration/source terminals were "
          "enumerated jointly, as Algorithm 1 prescribes.")


if __name__ == "__main__":
    main()
