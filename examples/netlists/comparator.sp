* comparator
* exercises: .subckt/X hierarchy, cross-coupled pairs, reset switches

.subckt latch outp outn tail vdd!
MXA outp outn tail 0 nfet nfin=8 nf=2 m=1
MXB outn outp tail 0 nfet nfin=8 nf=2 m=1
MPA outp outn vdd! vdd! pfet nfin=8 nf=2 m=1
MPB outn outp vdd! vdd! pfet nfin=8 nf=2 m=1
.ends

.subckt comp clk vinp vinn voutp voutn vdd!
MMA voutp vinp ncom 0 nfet nfin=8 nf=2 m=2
MMB voutn vinn ncom 0 nfet nfin=8 nf=2
+ m=2
MTAIL ncom clk 0 0 nfet nfin=8 nf=2 m=4
Xlatch voutp voutn ncom vdd! latch
MRSP voutp clk vdd! vdd! pfet nfin=8 nf=2 m=1
MRSN voutn clk vdd! vdd! pfet nfin=8 nf=2 m=1
CCP voutp 0 5f
CCN voutn 0 5f
.ends
.end
