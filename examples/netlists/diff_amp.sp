* diff_amp
* ports: vinp vinn voutp voutn vdd!
* exercises: flat netlists, ports comment, engineering suffixes
RRP vdd! voutp 10k
RRN vdd! voutn 10k
MMA voutp vinp ntail 0 nfet nfin=8
+ nf=2 m=2
MMB voutn vinn ntail 0 nfet nfin=8 nf=2 m=2
MM5 ntail nbias 0 0 nfet nfin=8 nf=2 m=4
MM6 nbias nbias 0 0 nfet nfin=8 nf=2 m=1
CCL voutp voutn 150f
RRB vdd! nbias 100meg
.end
