* ota
* exercises: .subckt/X hierarchy, + continuation lines, unit suffixes

.subckt dp inp inn outp outn tail
MMA outp inp tail 0 nfet nfin=8 nf=2 m=2
MMB outn inn tail 0 nfet nfin=8 nf=2 m=2
.ends

.subckt ota5 vinp vinn vout vbn vdd!
Xdp vinp vinn nx vout ntail dp
MM3 nx nx vdd! vdd! pfet nfin=8 nf=2 m=2
MM4 vout nx vdd! vdd! pfet nfin=8 nf=2 m=2
MM5 ntail vbn 0 0 nfet nfin=8 nf=2
+ m=4
CCL vout 0 200f
.ends
.end
