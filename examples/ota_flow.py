#!/usr/bin/env python
"""Full hierarchical flow on the high-frequency 5T OTA (paper Table VI).

Runs the complete Fig. 1 flow — bias calibration, primitive optimization,
placement, global routing, port optimization with reconciliation, final
assembly — for both the conventional baseline and this work, and prints
the Table VI comparison.

Run with::

    python examples/ota_flow.py
"""

from repro import HierarchicalFlow, Technology
from repro.circuits import FiveTransistorOta
from repro.reporting import format_table


def main() -> None:
    tech = Technology.default()
    ota = FiveTransistorOta(tech)
    flow = HierarchicalFlow(tech, n_bins=3, max_wires=7)

    print("Measuring the schematic...")
    schematic = ota.measure(ota.schematic())

    print("Running the conventional flow (geometric constraints only)...")
    conventional = flow.run(ota, flavor="conventional")

    print("Running this work (Algorithms 1 + 2)...")
    this_work = flow.run(ota, flavor="this_work")

    rows = []
    for name, metrics in (
        ("schematic", schematic),
        ("conventional", conventional.metrics),
        ("this work", this_work.metrics),
    ):
        rows.append(
            [
                name,
                f"{metrics['current'] * 1e6:.0f}",
                f"{metrics['gain_db']:.1f}",
                f"{metrics['ugf'] / 1e9:.2f}",
                f"{metrics['f3db'] / 1e6:.0f}",
                f"{metrics['phase_margin']:.1f}",
            ]
        )
    print()
    print(
        format_table(
            ["row", "current (uA)", "gain (dB)", "UGF (GHz)", "3dB (MHz)",
             "PM (deg)"],
            rows,
            title="Table VI reproduction — high-frequency 5T OTA:",
        )
    )

    print("\nLayout decisions (this work):")
    for name, choice in this_work.choices.items():
        print(
            f"  {name}: (nfin, nf, m) = ({choice.base.nfin}, "
            f"{choice.base.nf}, {choice.base.m}), pattern {choice.pattern}"
        )
    print("\nReconciled parallel-route counts:")
    for net, rec in this_work.reconciled.items():
        mode = "overlap" if rec.overlapped else "gap search"
        print(f"  {net}: {rec.wires} wires ({mode}, "
              f"{len(rec.constraints)} constraining primitives)")
    print(f"\nModeled runtime: {this_work.modeled_runtime:.0f}s "
          f"(paper: 80s); actual wall time {this_work.wall_time:.1f}s.")


if __name__ == "__main__":
    main()
