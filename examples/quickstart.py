#!/usr/bin/env python
"""Quickstart — optimize one primitive end to end.

Runs the paper's Algorithm 1 on a differential pair: enumerate the
(nfin, nf, m) layout variants and placement patterns, score each with the
weighted deviation cost (post-layout SPICE with wire parasitics + LDEs),
bin by aspect ratio, pick the best per bin, and tune the wire widths at
the tuning terminals.

Run with::

    python examples/quickstart.py
"""

from repro import PrimitiveOptimizer, Technology
from repro.primitives import DifferentialPair
from repro.reporting import format_table, si_format


def main() -> None:
    tech = Technology.default()
    print(f"Technology: {tech.name} (VDD = {tech.vdd} V, "
          f"{tech.stack.num_metals} metals)")

    # The paper's example: a W/L = 46um/14nm pair -> 960 fins per side.
    dp = DifferentialPair(tech, base_fins=960)
    reference = dp.schematic_reference()
    print("\nSchematic reference metrics:")
    print(f"  Gm        = {si_format(reference['gm'], 'A/V')}")
    print(f"  Gm/Ctotal = {si_format(reference['gm_over_ctotal'], 'rad/s')}")
    print(f"  offset    = {si_format(reference['offset'], 'V')}")

    optimizer = PrimitiveOptimizer(n_bins=3, max_wires=7)
    report = optimizer.optimize(dp)

    print(f"\nEvaluated {len(report.options)} layout options "
          f"({report.total_simulations} simulations, "
          f"effective time {report.effective_time:.0f}s at the paper's "
          f"10 s/simulation with parallel batches).")

    rows = []
    for result in report.tuned:
        option = result.option
        rows.append(
            [
                f"({option.base.nfin}, {option.base.nf}, {option.base.m})",
                option.pattern,
                f"{option.aspect_ratio:.2f}",
                f"{option.cost:.2f}",
                ", ".join(
                    f"{s.terminal}={s.chosen}" for s in result.sweeps
                ),
            ]
        )
    print()
    print(
        format_table(
            ["(nfin, nf, m)", "pattern", "aspect", "cost", "tuned wires"],
            rows,
            title="Optimized options handed to the placer (one per bin):",
        )
    )
    best = report.best
    print(f"\nBest option: {best.describe()}")
    print("Per-metric deviations: "
          + ", ".join(f"{k}={v:.1f}%" for k, v in best.breakdown.deviations.items()))


if __name__ == "__main__":
    main()
