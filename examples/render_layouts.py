#!/usr/bin/env python
"""Render generated primitive layouts to SVG and export SPICE netlists.

Generates the paper's Table III differential-pair variants in all three
placement patterns, writes one SVG per layout (colored per metal layer,
ports annotated) and the extracted post-layout SPICE netlist, into
``./out/``.

Run with::

    python examples/render_layouts.py [--outdir out]
"""

import argparse
from pathlib import Path

from repro import Technology
from repro.devices.mosfet import MosGeometry
from repro.io import layout_to_svg, write_spice
from repro.primitives import DifferentialPair

VARIANTS = [
    MosGeometry(8, 20, 6),
    MosGeometry(16, 12, 5),
    MosGeometry(24, 20, 2),
]
PATTERNS = ["ABAB", "ABBA", "AABB"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="out")
    args = parser.parse_args()
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    tech = Technology.default()
    dp = DifferentialPair(tech, base_fins=960)

    written = []
    for base in VARIANTS:
        for pattern in PATTERNS:
            tag = f"dp_{base.nfin}x{base.nf}x{base.m}_{pattern.lower()}"
            layout = dp.generate(base, pattern)
            svg_path = outdir / f"{tag}.svg"
            svg_path.write_text(layout_to_svg(layout))

            circuit = dp.extract(layout, base).build_circuit()
            sp_path = outdir / f"{tag}.sp"
            sp_path.write_text(write_spice(circuit, title=tag))
            written.append((tag, layout))

    print(f"Wrote {2 * len(written)} files to {outdir}/:")
    for tag, layout in written:
        print(
            f"  {tag}: {layout.width / 1000:.1f} x {layout.height / 1000:.1f} um, "
            f"AR {layout.aspect_ratio:.2f}, {len(layout.wires)} wires, "
            f"{len(layout.vias)} vias"
        )


if __name__ == "__main__":
    main()
