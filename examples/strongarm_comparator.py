#!/usr/bin/env python
"""StrongARM comparator: primitive annotation and transient evaluation.

Demonstrates the paper's Fig. 3: a clocked comparator decomposed into
five primitive classes (input pair, regenerative pair, PMOS cross-coupled
pair, precharge switches, tail switch), with top-level delay/power
measured by transient simulation — schematic vs the optimized flow.

Run with::

    python examples/strongarm_comparator.py
"""

from repro import HierarchicalFlow, Technology
from repro.circuits import StrongArmComparator
from repro.reporting import format_table


def main() -> None:
    tech = Technology.default()
    comparator = StrongArmComparator(tech, v_in_diff=50e-3)

    print("Primitive annotation (the shaded boxes of the paper's Fig. 3):")
    for binding in comparator.bindings():
        ports = ", ".join(f"{p}->{n}" for p, n in binding.port_map.items())
        print(f"  {binding.name}: {binding.primitive.family} ({ports})")

    print("\nTransient decision on the schematic...")
    schematic = comparator.measure(comparator.schematic(), dt=2e-12)

    flow = HierarchicalFlow(tech, n_bins=2, max_wires=5)
    print("Running the hierarchical flow (this work)...")
    result = flow.run(comparator, flavor="this_work")

    print()
    print(
        format_table(
            ["row", "delay (ps)", "power (uW)", "decision"],
            [
                [
                    "schematic",
                    f"{schematic['delay'] * 1e12:.1f}",
                    f"{schematic['power'] * 1e6:.2f}",
                    "+1" if schematic["decision"] > 0 else "-1",
                ],
                [
                    "this work",
                    f"{result.metrics['delay'] * 1e12:.1f}",
                    f"{result.metrics['power'] * 1e6:.2f}",
                    "+1" if result.metrics["decision"] > 0 else "-1",
                ],
            ],
            title="StrongARM comparator (paper Table VI: 19.2 ps schematic, "
            "31.5 ps this work):",
        )
    )

    print("\nOffset sensitivity: sweeping the input difference...")
    for v_diff in (5e-3, 20e-3, 50e-3):
        comparator.v_in_diff = v_diff
        metrics = comparator.measure(comparator.schematic(), dt=2e-12)
        print(f"  vin_diff = {v_diff * 1e3:4.0f} mV -> "
              f"delay {metrics['delay'] * 1e12:6.1f} ps")


if __name__ == "__main__":
    main()
