#!/usr/bin/env python
"""RO-VCO tuning curve: frequency vs control voltage (paper Table VII).

Builds the differential ring-oscillator VCO from current-starved
inverter primitives, sweeps the control voltage on the schematic and on
the optimized post-layout assembly, and prints the tuning curves plus
the Table VII summary (max/min frequency, usable range).

A 4-stage ring keeps this example fast; pass ``--stages 8`` for the
paper's configuration.

Run with::

    python examples/vco_tuning_curve.py [--stages N]
"""

import argparse

from repro import HierarchicalFlow, Technology
from repro.circuits import RingOscillatorVco
from repro.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stages", type=int, default=4)
    args = parser.parse_args()

    tech = Technology.default()
    vco = RingOscillatorVco(tech, stages=args.stages)
    # Stay inside the ring's startup range: dead control points cost
    # several retry windows each.
    sweep_points = [0.45, 0.55, 0.7]

    print(f"{args.stages}-stage differential RO-VCO "
          f"({len(vco.bindings())} delay-cell instances sharing one "
          f"primitive optimization).")

    print("Sweeping the schematic...")
    schematic_curve = vco.frequency_sweep(vco.schematic(), sweep_points)

    flow = HierarchicalFlow(tech, n_bins=2, max_wires=5)
    print("Running the hierarchical flow (this work)...")
    result = flow.run(vco, flavor="this_work", measure=False)
    print("Sweeping the optimized layout...")
    layout_curve = vco.frequency_sweep(result.assembled, sweep_points)

    rows = []
    for v in sweep_points:
        rows.append(
            [
                f"{v:.2f}",
                f"{schematic_curve[v] / 1e9:.2f}" if schematic_curve[v] else "-",
                f"{layout_curve[v] / 1e9:.2f}" if layout_curve[v] else "-",
            ]
        )
    print()
    print(
        format_table(
            ["v_ctrl (V)", "schematic (GHz)", "this work (GHz)"],
            rows,
            title="VCO tuning curve:",
        )
    )

    for name, curve in (("schematic", schematic_curve), ("this work", layout_curve)):
        try:
            summary = RingOscillatorVco.table_vii_metrics(curve)
            print(
                f"{name}: f_max {summary['f_max'] / 1e9:.2f} GHz, "
                f"f_min {summary['f_min'] / 1e9:.2f} GHz, "
                f"range {summary['v_lo']:.2f}-{summary['v_hi']:.2f} V"
            )
        except Exception as exc:  # no oscillation anywhere
            print(f"{name}: {exc}")


if __name__ == "__main__":
    main()
