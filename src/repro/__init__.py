"""repro — Analog layout generation using optimized primitives.

A from-scratch Python reproduction of M. Madhusudan et al., *Analog
Layout Generation using Optimized Primitives* (DATE 2021), including
every substrate the paper relies on: a synthetic FinFET PDK, an
EKV-model circuit simulator, a procedural primitive cell generator,
parasitic/LDE extraction, a primitive library with metric testbenches,
the paper's two optimization algorithms, a placer and global router, and
the paper's four evaluation circuits.

Quickstart::

    from repro import Technology, PrimitiveLibrary, PrimitiveOptimizer

    tech = Technology.default()
    dp = PrimitiveLibrary().create("differential_pair", tech, base_fins=960)
    report = PrimitiveOptimizer(n_bins=3).optimize(dp)
    print(report.best.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.tech import Technology
from repro.primitives import PrimitiveLibrary
from repro.core import PrimitiveOptimizer, GlobalRouteInfo
from repro.flow import FlowResult, HierarchicalFlow
from repro.runtime import (
    EvalFailure,
    EvalRuntime,
    FailureLog,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    SweepJournal,
)
from repro.verify import Report, Violation, verify_layout

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "PrimitiveLibrary",
    "PrimitiveOptimizer",
    "GlobalRouteInfo",
    "HierarchicalFlow",
    "FlowResult",
    "EvalFailure",
    "EvalRuntime",
    "FailureLog",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "SweepJournal",
    "Report",
    "Violation",
    "verify_layout",
    "__version__",
]
