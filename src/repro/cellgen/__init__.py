"""Parameterized analog primitive cell generator.

Replaces the ALIGN-style procedural cell generator the paper builds on.
Given a set of matched FinFET devices with a (nfin, nf, m) sizing, a
placement pattern and a per-net wire configuration, it produces a
:class:`~repro.geometry.layout.Layout` with:

* device unit placements on the fin/poly grid (one row, or two rows for
  the 2D common-centroid pattern), with optional dummy fingers,
* within-cell mesh wiring — M1 finger stubs rising to stacked M2 straps,
  with a configurable number of parallel straps per net (the paper's
  *effective wire width*),
* ports on the strap ends, and the well rectangle used by WPE extraction.

The stacked-strap track model is what gives primitive tuning its
characteristic cost curve: the first added strap halves the strap
resistance, while every added strap raises the cell's track stack and
lengthens all finger stubs, so cost is convex in the strap count.
"""

from repro.cellgen.patterns import pattern_sequence, available_patterns
from repro.cellgen.sizing import enumerate_sizings, aspect_ratio_of_sizing
from repro.cellgen.generator import (
    CellDevice,
    CellSpec,
    WireConfig,
    generate_layout,
)

__all__ = [
    "pattern_sequence",
    "available_patterns",
    "enumerate_sizings",
    "aspect_ratio_of_sizing",
    "CellDevice",
    "CellSpec",
    "WireConfig",
    "generate_layout",
]
