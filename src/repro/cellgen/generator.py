"""The primitive cell generator.

:func:`generate_layout` turns a :class:`CellSpec` (devices, terminal
nets, matched groups) plus a placement pattern and a :class:`WireConfig`
into a full :class:`~repro.geometry.layout.Layout`.

Geometry model — the 2D mesh arrangement FinFET analog cells use:

* The matched group's units are stacked as ``m`` rows of one unit per
  device (see :func:`repro.cellgen.patterns.pattern_rows`); unmatched
  devices get their own rows below.  This is what makes the paper's
  (nfin, nf, m) factorizations trade bounding-box aspect ratio.
* Each row carries horizontal M2 *row straps* per net; every diffusion
  column rises to them through an M1 *finger stub*.  The number of straps
  per row per net is ``1 + n_parallel(net)`` — the tuning lever of
  primitive tuning (Algorithm 1, step 2).  Straps occupy tracks above the
  row's active area, so adding straps grows the cell height, which is the
  degradation mechanism the paper cites for over-tuned cells.
* Vertical M3 *rails* on the right edge of the cell collect each net's
  row straps and carry it to the port at the bottom.
* Stubs and straps record their owning device+terminal so extraction can
  build per-device branch resistances (a differential pair's Gm
  degradation depends on each transistor's own path to the common node,
  not on the shared trunk).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellgen.patterns import PatternRows, pattern_rows
from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError
from repro.geometry.layout import DevicePlacement, Layout, Port, Via, Wire
from repro.geometry.shapes import Point, Rect
from repro.tech.pdk import Technology

#: Number of vertical trunk rails per net (fixed mesh density).
RAILS_PER_NET = 4

#: Default verification policy for emitted layouts.  ``True`` runs the
#: static DRC + connectivity pass on every layout the generator returns
#: and attaches the report to ``layout.metadata["verification"]``.  Hot
#: sweep loops (the optimizer's variant enumeration) pass
#: ``verify=False`` explicitly and verify only the variants they emit.
VERIFY_EMITTED = True


@dataclass(frozen=True)
class CellDevice:
    """One schematic device to lay out.

    Attributes:
        name: Device name (e.g. ``"MA"``).
        polarity: ``"n"`` or ``"p"``.
        geometry: (nfin, nf, m) sizing.
        terminals: Mapping from terminal letter (``"d"``, ``"g"``, ``"s"``,
            optionally ``"b"``) to net name.
    """

    name: str
    polarity: str
    geometry: MosGeometry
    terminals: dict[str, str]

    def __post_init__(self) -> None:
        for required in ("d", "g", "s"):
            if required not in self.terminals:
                raise LayoutError(
                    f"device {self.name!r}: missing terminal {required!r}"
                )


@dataclass(frozen=True)
class CellSpec:
    """Input to the cell generator.

    Attributes:
        name: Cell name.
        devices: All devices in the primitive.
        matched_group: Names of devices placed with the chosen pattern
            (the primitive's matching constraint).  Devices not in the
            group are placed in their own rows below the matched stack.
        port_nets: Nets exposed as ports, in declaration order.
        symmetric_pairs: Net pairs that must stay electrically matched;
            the generator alternates their strap-track assignment per row
            so both see the same average stub length.
    """

    name: str
    devices: tuple[CellDevice, ...]
    matched_group: tuple[str, ...]
    port_nets: tuple[str, ...]
    symmetric_pairs: tuple[tuple[str, str], ...] = ()

    def device(self, name: str) -> CellDevice:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise LayoutError(f"cell {self.name!r} has no device {name!r}")


@dataclass
class WireConfig:
    """Per-net effective wire widths.

    ``parallel`` maps net names to the number of *additional* parallel
    row straps (the paper's tuning variable); unlisted nets get 1.  The
    generator places ``1 + parallel`` straps per row per net.
    ``dummies`` adds dummy fingers on both sides of every unit.
    """

    parallel: dict[str, int] = field(default_factory=dict)
    dummies: bool = False

    def straps(self, net: str) -> int:
        count = self.parallel.get(net, 1)
        if count < 1:
            raise LayoutError(f"net {net!r}: strap count must be >= 1")
        return count

    def with_straps(self, net: str, count: int) -> "WireConfig":
        updated = dict(self.parallel)
        updated[net] = count
        return WireConfig(parallel=updated, dummies=self.dummies)


def generate_layout(
    spec: CellSpec,
    pattern: str,
    tech: Technology,
    wires: WireConfig | None = None,
    verify: bool | None = None,
    strict: bool = False,
) -> Layout:
    """Generate the layout of a primitive cell.

    Args:
        spec: Devices, matched group and ports.
        pattern: Placement pattern for the matched group (``"ABAB"``,
            ``"ABBA"``, ``"AABB"`` or ``"CC2D"``).
        tech: Technology node.
        wires: Wire configuration; defaults to single extra straps and no
            dummies.
        verify: Run the static DRC + connectivity pass on the emitted
            layout and attach the report to
            ``layout.metadata["verification"]``; ``None`` follows the
            module default :data:`VERIFY_EMITTED`.
        strict: With verification on, raise
            :class:`~repro.errors.VerificationError` on any
            error-severity violation instead of just recording it.

    Returns:
        A layout whose metadata records the pattern, per-device sizing,
        wire configuration and (when enabled) the verification report.

    Raises:
        VerificationError: In strict mode, when verification finds
            errors.
    """
    wires = wires or WireConfig()
    matched = [spec.device(name) for name in spec.matched_group]
    if not matched:
        raise LayoutError(f"cell {spec.name!r} has an empty matched group")
    others = [d for d in spec.devices if d.name not in spec.matched_group]

    nfin = matched[0].geometry.nfin
    nf = matched[0].geometry.nf
    for dev in matched:
        if dev.geometry.nfin != nfin or dev.geometry.nf != nf:
            raise LayoutError(
                f"cell {spec.name!r}: matched devices must share (nfin, nf)"
            )

    counts = {d.name: d.geometry.m for d in matched}
    rows = pattern_rows(pattern, [d.name for d in matched], counts)
    for dev in others:
        rows.append([(dev.name, k) for k in range(dev.geometry.m)])

    layout = _build_layout(spec, pattern, rows, tech, wires)
    if VERIFY_EMITTED if verify is None else verify:
        from repro.verify import verify_layout

        report = verify_layout(layout, tech, spec=spec, strict=strict)
        layout.metadata["verification"] = report
    return layout


def _build_layout(
    spec: CellSpec,
    pattern: str,
    rows: PatternRows,
    tech: Technology,
    wires: WireConfig,
) -> Layout:
    rules = tech.rules
    stack = tech.stack
    m1 = stack.metal("M1")
    m2 = stack.metal("M2")
    m3 = stack.metal("M3")
    dummy = rules.dummy_fingers if wires.dummies else 0
    device_by_name = {d.name: d for d in spec.devices}
    unit_gap = rules.poly_pitch  # diffusion break between units

    layout = Layout(name=f"{spec.name}_{pattern.lower()}")
    nets = _nets_in_order(spec)
    # The baseline mesh density scales with the stack height: single-row
    # cells need less strapping; each tuning "parallel wire" adds one
    # strap.  Power nets (ground and any "...!"-suffixed rail) get a
    # denser mesh — the paper routes power manually with wide straps,
    # outside the methodology.
    multi_row = len(rows) > 1
    signal_base = 2 if multi_row else 1
    power_base = 4 if multi_row else 2
    straps_per_net = {
        net: (power_base if _is_power(net) else signal_base) + wires.straps(net)
        for net in nets
    }

    # Stub columns per row: (x, net, owner). Strap extents per row/net.
    y_cursor = 0
    max_row_right = 0
    row_records: list[dict] = []
    for row in rows:
        x_cursor = rules.diffusion_extension
        row_nfin = max(device_by_name[name].geometry.nfin for name, _ in row)
        active_h = row_nfin * rules.fin_pitch
        columns: list[tuple[int, str, str]] = []
        row_nets: list[str] = []
        for device_name, unit_idx in row:
            dev = device_by_name[device_name]
            unit_nf = dev.geometry.nf
            unit_width = unit_nf * rules.poly_pitch
            dummy_width = dummy * rules.poly_pitch
            x_active = x_cursor + dummy_width
            rect = Rect.from_size(
                x_active, y_cursor, unit_width, dev.geometry.nfin * rules.fin_pitch
            )
            layout.devices.append(
                DevicePlacement(
                    device=device_name,
                    unit_index=unit_idx,
                    rect=rect,
                    nfin=dev.geometry.nfin,
                    nf=unit_nf,
                    dummy_fingers=dummy,
                )
            )
            d_net, s_net = dev.terminals["d"], dev.terminals["s"]
            g_net = dev.terminals["g"]
            for col in range(unit_nf + 1):
                x = x_active + col * rules.poly_pitch
                net = s_net if col % 2 == 0 else d_net
                terminal = "s" if col % 2 == 0 else "d"
                columns.append((x, net, f"{device_name}.{terminal}"))
            # Gate mesh: a contact every four fingers (plus the centre),
            # as analog FinFET cells strap gates to keep Rg low.
            for col in range(0, unit_nf, 4):
                x = x_active + col * rules.poly_pitch + rules.poly_pitch // 2
                columns.append((x, g_net, f"{device_name}.g"))
            for net in (s_net, d_net, g_net):
                if net not in row_nets:
                    row_nets.append(net)
            x_cursor = x_active + unit_width + dummy_width + unit_gap
        row_right = x_cursor - unit_gap + rules.diffusion_extension
        max_row_right = max(max_row_right, row_right)

        # Strap slots above the active area, one per (net, strap copy);
        # triple-width straps occupy three tracks each.
        slot_pitch = 3 * m2.pitch
        slots_needed = sum(straps_per_net[n] for n in row_nets)
        track_region = max(rules.row_height, (slots_needed + 1) * slot_pitch)
        slot_y0 = y_cursor + active_h + m2.pitch // 2
        slot = 0
        strap_slots: dict[str, list[int]] = {}
        # Alternate symmetric pairs' track order per row so matched nets
        # see the same average stub length (the matching constraint the
        # detailed router enforces on routes applies to the mesh too).
        row_index = len(row_records)
        if row_index % 2 == 1:
            for net_a, net_b in spec.symmetric_pairs:
                if net_a in row_nets and net_b in row_nets:
                    ia, ib = row_nets.index(net_a), row_nets.index(net_b)
                    row_nets[ia], row_nets[ib] = row_nets[ib], row_nets[ia]
        for net in row_nets:
            ys = []
            for _ in range(straps_per_net[net]):
                ys.append(slot_y0 + slot * slot_pitch)
                slot += 1
            strap_slots[net] = ys
        row_records.append(
            {
                "y0": y_cursor,
                "active_h": active_h,
                "columns": columns,
                "strap_slots": strap_slots,
                "row_right": row_right,
            }
        )
        y_cursor += active_h + track_region + rules.row_spacing
    total_height = y_cursor - rules.row_spacing

    # --- emit stubs and row straps --------------------------------------
    for rec in row_records:
        strap_slots: dict[str, list[int]] = rec["strap_slots"]
        net_extent: dict[str, tuple[int, int]] = {}
        for x, net, owner in rec["columns"]:
            # Stubs only need to reach the net's first strap; the net's
            # further straps interconnect through via chains at every
            # stub column, so tuning does not lengthen stubs.  Stubs are
            # double width: they model the trench-contact bar plus M1.
            top = strap_slots[net][0] + 3 * m2.min_width
            layout.wires.append(
                Wire(
                    net=net,
                    layer="M1",
                    rect=Rect(x, rec["y0"], x + 2 * m1.min_width, top),
                    role="finger_stub",
                    owner=owner,
                )
            )
            for y in strap_slots[net]:
                layout.vias.append(
                    Via(net, "M1", "M2", Point(x, y))
                )
            lo, hi = net_extent.get(net, (x, x))
            net_extent[net] = (min(lo, x), max(hi, x + m1.min_width))
        for net, ys in strap_slots.items():
            lo, hi = net_extent[net]
            # Straps run to the rail region on the right; triple width
            # (three merged tracks) is the default mesh strap.
            for y in ys:
                layout.wires.append(
                    Wire(
                        net=net,
                        layer="M2",
                        rect=Rect(lo, y, max_row_right, y + 3 * m2.min_width),
                        role="strap",
                    )
                )

    # --- vertical rails ----------------------------------------------------
    wired_nets = [
        net
        for net in nets
        if any(net in rec["strap_slots"] for rec in row_records)
    ]
    rail_x = max_row_right + m3.pitch
    rail_index = 0
    port_positions: dict[str, Rect] = {}
    n_rows = len(row_records)
    for net in wired_nets:
        # Rail count scales with the row count (a one-row cell needs one
        # tap per net); power nets get a 4x denser mesh, and every tuning
        # "parallel wire" adds a rail — the tuning terminal's RC covers
        # the trunk, not just the row straps.
        base_rails = max(1, min(RAILS_PER_NET, n_rows))
        n_rails = base_rails * (4 if _is_power(net) else 1)
        n_rails += wires.straps(net) - 1
        for copy in range(n_rails):
            x = rail_x + rail_index * 2 * m3.pitch
            rect = Rect(x, 0, x + 3 * m3.min_width, total_height)
            layout.wires.append(Wire(net=net, layer="M3", rect=rect, role="rail"))
            if copy == 0:
                port_positions[net] = Rect(
                    x, 0, x + 3 * m3.min_width, m3.min_width
                )
            rail_index += 1
            for rec in row_records:
                for y in rec["strap_slots"].get(net, []):
                    layout.vias.append(Via(net, "M2", "M3", Point(x, y)))
    # Extend row straps into the rail region (they already end at
    # max_row_right; emit short jumper straps across the rail region).
    rail_region_right = rail_x + rail_index * 2 * m3.pitch
    for rec in row_records:
        for net, ys in rec["strap_slots"].items():
            for y in ys:
                layout.wires.append(
                    Wire(
                        net=net,
                        layer="M2",
                        rect=Rect(max_row_right, y, rail_region_right, y + m2.min_width),
                        role="strap_jumper",
                    )
                )

    # --- ports -----------------------------------------------------------
    for net in spec.port_nets:
        if net not in port_positions:
            # Bulk-only nets (tap rings) carry no mesh wiring; they are
            # circuit ports but have no routed pin geometry.
            continue
        layout.ports.append(Port(net=net, layer="M3", rect=port_positions[net]))

    # --- well ------------------------------------------------------------
    device_box = layout.devices[0].rect
    for placement in layout.devices[1:]:
        device_box = device_box.union(placement.rect)
    layout.well_rect = device_box.expanded(rules.well_enclosure)

    layout.metadata = {
        "pattern": pattern.upper(),
        "cell": spec.name,
        "sizings": {
            d.name: (d.geometry.nfin, d.geometry.nf, d.geometry.m)
            for d in spec.devices
        },
        "wire_parallel": {net: wires.straps(net) for net in nets},
        "straps_per_row": dict(straps_per_net),
        "dummies": wires.dummies,
        "rows": len(row_records),
    }
    return layout


def _is_power(net: str) -> bool:
    """Power/ground nets get the dense (manually-routed) mesh."""
    from repro.spice.netlist import is_ground

    return is_ground(net) or net.endswith("!")


def _nets_in_order(spec: CellSpec) -> list[str]:
    """All nets, ports first, then internal nets in discovery order."""
    seen: list[str] = list(spec.port_nets)
    for dev in spec.devices:
        for net in dev.terminals.values():
            if net not in seen:
                seen.append(net)
    return seen
