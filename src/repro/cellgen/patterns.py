"""Placement patterns for matched device groups.

A pattern turns per-device unit counts into a linear (or two-row)
arrangement of units.  The paper's three one-dimensional patterns are

* ``ABAB`` — interdigitated,
* ``ABBA`` — common centroid,
* ``AABB`` — clustered (non-common-centroid),

plus ``CC2D``, a two-row cross-coupled common-centroid arrangement
(``AB…/BA…``) provided as the natural 2D extension.

Patterns generalize beyond two equal devices: unit counts may differ (the
1:8 current mirror interleaves one reference unit among eight output
units using a Bresenham-style spread), and any number of devices may be
grouped.
"""

from __future__ import annotations

from repro.errors import LayoutError

#: Unit entry: (device name, unit index within that device).
PatternUnit = tuple[str, int]

#: A placed pattern: rows of units (one row for 1D patterns).
PatternRows = list[list[PatternUnit]]


def _normalize_units(
    devices: list[str], units_per_device: int | dict[str, int]
) -> dict[str, int]:
    if not devices:
        raise LayoutError("pattern needs at least one device")
    if len(set(devices)) != len(devices):
        raise LayoutError("duplicate device names in pattern group")
    if isinstance(units_per_device, int):
        counts = {d: units_per_device for d in devices}
    else:
        missing = [d for d in devices if d not in units_per_device]
        if missing:
            raise LayoutError(f"missing unit counts for {missing}")
        counts = {d: units_per_device[d] for d in devices}
    for device, count in counts.items():
        if count < 1:
            raise LayoutError(f"device {device!r} needs at least one unit")
    return counts


def available_patterns(
    devices: list[str], units_per_device: int | dict[str, int]
) -> list[str]:
    """Pattern names applicable to a matched group of this shape."""
    counts = _normalize_units(devices, units_per_device)
    values = list(counts.values())
    names = ["ABAB", "AABB"]
    if all(v % 2 == 0 for v in values) or all(v == 1 for v in values):
        names.insert(1, "ABBA")
    if len(devices) == 2 and all(v % 2 == 0 for v in values):
        names.append("CC2D")
    return names


def _round_robin(counts: dict[str, int]) -> list[PatternUnit]:
    total = sum(counts.values())
    placed = {d: 0 for d in counts}
    sequence: list[PatternUnit] = []
    while len(sequence) < total:
        progressed = False
        for device, count in counts.items():
            if placed[device] < count:
                deficit = count * (len(sequence) + 1) / total - placed[device]
                if deficit > 0 or all(
                    placed[d] >= counts[d] for d in counts if d != device
                ):
                    sequence.append((device, placed[device]))
                    placed[device] += 1
                    progressed = True
        if not progressed:  # pragma: no cover - safeguarded by counts >= 1
            raise LayoutError("interleave failed to progress")
    return sequence


def _clustered(counts: dict[str, int]) -> list[PatternUnit]:
    sequence: list[PatternUnit] = []
    for device, count in counts.items():
        sequence.extend((device, k) for k in range(count))
    return sequence


def _common_centroid(counts: dict[str, int]) -> list[PatternUnit]:
    values = list(counts.values())
    if all(v == 1 for v in values):
        return _round_robin(counts)
    if any(v % 2 != 0 for v in values):
        raise LayoutError("ABBA needs even unit counts per device")
    half_counts = {d: c // 2 for d, c in counts.items()}
    half = _round_robin(half_counts)
    indices = dict(half_counts)
    mirrored: list[PatternUnit] = []
    for device, _ in reversed(half):
        mirrored.append((device, indices[device]))
        indices[device] += 1
    return half + mirrored


def pattern_sequence(
    name: str,
    devices: list[str],
    units_per_device: int | dict[str, int],
) -> PatternRows:
    """Arrange device units per the named pattern.

    Args:
        name: One of :func:`available_patterns`.
        devices: Matched device names, in interleave order.
        units_per_device: Multiplicity ``m`` per device — one int for
            equal counts, or a per-device dict for ratioed groups.

    Returns:
        Rows of (device, unit_index) entries; 1D patterns return one row.

    Raises:
        LayoutError: If the pattern is unknown or infeasible.
    """
    counts = _normalize_units(devices, units_per_device)
    key = name.upper()
    if key == "ABAB":
        return [_round_robin(counts)]
    if key == "AABB":
        return [_clustered(counts)]
    if key == "ABBA":
        return [_common_centroid(counts)]
    if key == "CC2D":
        if len(devices) != 2:
            raise LayoutError("CC2D is defined for exactly two devices")
        if any(c % 2 != 0 for c in counts.values()):
            raise LayoutError("CC2D needs even unit counts per device")
        half_counts = {d: c // 2 for d, c in counts.items()}
        a, b = devices
        top = _round_robin(half_counts)
        bottom_order = _round_robin({b: half_counts[b], a: half_counts[a]})
        indices = dict(half_counts)
        bottom: list[PatternUnit] = []
        for device, _ in bottom_order:
            bottom.append((device, indices[device]))
            indices[device] += 1
        return [top, bottom]
    raise LayoutError(f"unknown placement pattern {name!r}")


def pattern_rows(
    name: str,
    devices: list[str],
    units_per_device: int | dict[str, int],
) -> PatternRows:
    """2D arrangement: the pattern sequence wrapped into device-wide rows.

    This is the arrangement the generator actually places: each row holds
    one unit per matched device (``len(devices)`` columns), stacked over
    ``m`` rows.  The classic 1D pattern names then read as:

    * ``ABAB`` — same column order every row (A column next to B column),
    * ``ABBA`` — column order alternates per row (checkerboard common
      centroid; works for odd ``m`` too, with a half-unit residue),
    * ``AABB`` — rows clustered per device (A rows above B rows),
    * ``CC2D`` — alias of ``ABBA`` (the two-row cross-coupled case).

    Unequal unit counts (ratioed mirrors) are wrapped row-major from the
    1D sequence.
    """
    counts = _normalize_units(devices, units_per_device)
    key = name.upper()
    ncols = len(devices)
    values = set(counts.values())

    if values == {counts[devices[0]]} and len(values) == 1:
        m = counts[devices[0]]
        if key == "ABAB":
            rows: PatternRows = []
            for r in range(m):
                rows.append([(d, r) for d in devices])
            return rows
        if key in ("ABBA", "CC2D"):
            rows = []
            for r in range(m):
                order = devices if r % 2 == 0 else list(reversed(devices))
                rows.append([(d, r) for d in order])
            return rows
        if key == "AABB":
            rows = []
            for device in devices:
                for r in range(0, m, ncols):
                    row = [
                        (device, r + k) for k in range(min(ncols, m - r))
                    ]
                    rows.append(row)
            return rows

    # Ratioed groups: wrap the 1D sequence row-major.
    flat = pattern_sequence(key if key != "CC2D" else "ABBA", devices, counts)[0]
    rows = [flat[i : i + ncols] for i in range(0, len(flat), ncols)]
    return rows


def centroid_offsets(rows: PatternRows) -> dict[str, float]:
    """Per-device unit-centroid x position, in unit pitches.

    Used to verify pattern symmetry: ABBA and CC2D have equal centroids
    for all devices; AABB does not.
    """
    positions: dict[str, list[float]] = {}
    for row in rows:
        for col, (device, _idx) in enumerate(row):
            positions.setdefault(device, []).append(float(col))
    return {d: sum(p) / len(p) for d, p in positions.items()}


def centroid_offsets_2d(rows: PatternRows) -> dict[str, tuple[float, float]]:
    """Per-device unit-centroid (x, y) position, in unit pitches.

    For the 2D arrangements of :func:`pattern_rows`: ``ABBA`` matches
    centroids in both axes (even ``m``); ``ABAB`` differs in x by one
    column; ``AABB`` differs in y by half the stack.
    """
    positions: dict[str, list[tuple[float, float]]] = {}
    for r, row in enumerate(rows):
        for col, (device, _idx) in enumerate(row):
            positions.setdefault(device, []).append((float(col), float(r)))
    return {
        d: (
            sum(x for x, _ in p) / len(p),
            sum(y for _, y in p) / len(p),
        )
        for d, p in positions.items()
    }
