"""Enumeration of (nfin, nf, m) layout variants.

A schematic device fixes the total fin count ``nfin * nf * m``; the cell
generator is free to redistribute fins between fins-per-finger, fingers
and multiplicity (paper Fig. 5).  Each factorization lands at a different
bounding-box aspect ratio and a different parasitic/LDE operating point,
which is exactly the search space of primitive selection.
"""

from __future__ import annotations

from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError
from repro.tech.rules import DesignRules


def enumerate_sizings(
    total_fins: int,
    min_nfin: int = 4,
    max_nfin: int = 32,
    min_nf: int = 2,
    max_nf: int = 32,
    max_m: int = 8,
    even_nf: bool = True,
) -> list[MosGeometry]:
    """All (nfin, nf, m) factorizations of ``total_fins`` within bounds.

    Args:
        total_fins: The schematic fin count to preserve.
        min_nfin, max_nfin: Fin-count range per finger (device rows).
        min_nf, max_nf: Finger-count range per unit.
        max_m: Maximum multiplicity.
        even_nf: Require an even finger count (keeps source diffusions on
            both unit ends, the usual analog convention).

    Returns:
        Geometries sorted by (nfin, nf, m).

    Raises:
        LayoutError: If no factorization exists within the bounds.
    """
    if total_fins < 1:
        raise LayoutError("total_fins must be >= 1")
    found: list[MosGeometry] = []
    for nfin in range(min_nfin, max_nfin + 1):
        if total_fins % nfin != 0:
            continue
        rest = total_fins // nfin
        for m in range(1, max_m + 1):
            if rest % m != 0:
                continue
            nf = rest // m
            if nf < min_nf or nf > max_nf:
                continue
            if even_nf and nf % 2 != 0:
                continue
            found.append(MosGeometry(nfin=nfin, nf=nf, m=m))
    if not found:
        raise LayoutError(
            f"no (nfin, nf, m) factorization of {total_fins} fins within bounds"
        )
    found.sort(key=lambda g: (g.nfin, g.nf, g.m))
    return found


def aspect_ratio_of_sizing(
    geometry: MosGeometry,
    rules: DesignRules,
    units_in_row: int | None = None,
    rows: int = 1,
) -> float:
    """Estimated cell aspect ratio (width/height) for a sizing.

    ``units_in_row`` defaults to the geometry's own multiplicity — i.e.
    one matched device's units; a matched pair doubles it.
    """
    units = geometry.m if units_in_row is None else units_in_row
    width = units * rules.finger_footprint(geometry.nf)
    height = rows * rules.row_footprint(geometry.nfin)
    if height == 0:
        raise LayoutError("zero-height sizing")
    return width / height
