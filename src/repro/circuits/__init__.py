"""Evaluation circuits.

The paper's four benchmark circuits, expressed as *annotated* netlists —
compositions of primitive instances, exactly what the hierarchical flow
of Fig. 1 consumes:

* :mod:`repro.circuits.csamp` — the common-source amplifier of Fig. 2 /
  Table I (CS stage + PMOS current-source load),
* :mod:`repro.circuits.ota` — the high-frequency five-transistor OTA
  (differential pair + active current-mirror load + tail current source),
* :mod:`repro.circuits.strongarm` — the StrongARM comparator of Fig. 3
  (input pair, regenerative NMOS pair, PMOS cross-coupled pair, precharge
  switches, clock tail switch),
* :mod:`repro.circuits.vco` — the eight-stage differential
  ring-oscillator VCO built from current-starved inverters with
  cross-coupled latch keepers.

Each circuit class knows its primitive bindings, builds schematic or
post-layout assemblies, and measures the paper's top-level metrics.
"""

from repro.circuits.base import CompositeCircuit, PrimitiveBinding, RouteBudget
from repro.circuits.csamp import CommonSourceAmpCircuit
from repro.circuits.ota import FiveTransistorOta
from repro.circuits.strongarm import StrongArmComparator
from repro.circuits.vco import RingOscillatorVco

__all__ = [
    "CompositeCircuit",
    "PrimitiveBinding",
    "RouteBudget",
    "CommonSourceAmpCircuit",
    "FiveTransistorOta",
    "StrongArmComparator",
    "RingOscillatorVco",
]
