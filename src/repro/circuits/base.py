"""Composite-circuit framework.

A :class:`CompositeCircuit` is the flow's view of a top-level design: a
set of :class:`PrimitiveBinding` instances (the *annotated hierarchy* of
Fig. 1) plus testbench stimuli and top-level measurements.

Assembly modes:

* ``schematic()`` — every binding contributes its ideal netlist,
  connected directly (the designer's pre-layout view),
* ``assembled(choices, route_budgets)`` — every binding contributes an
  extracted post-layout netlist (a chosen variant/pattern/wire config)
  and inter-primitive nets carry global-route RC scaled by the chosen
  parallel-route counts.

Both return a flat :class:`~repro.spice.netlist.Circuit` ready for the
circuit's measurement testbench.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cellgen.generator import WireConfig
from repro.core.port_constraints import GlobalRouteInfo, route_rc
from repro.devices.mosfet import MosGeometry
from repro.errors import OptimizationError
from repro.spice.netlist import Circuit, is_ground
from repro.tech.pdk import Technology


@dataclass
class PrimitiveBinding:
    """One primitive instance inside a composite circuit.

    Attributes:
        name: Instance name (e.g. ``"xdp"``).
        primitive: The primitive object (bias fields set for this
            circuit's context).
        port_map: Primitive port net → top-level net.
        symmetric_ports: Groups of primitive ports that the detailed
            router keeps matched (sized together during port
            optimization).
        optimize_ports: Primitive ports whose external routes take part
            in Algorithm 2 (defaults to all mapped ports).
    """

    name: str
    primitive: object
    port_map: dict[str, str]
    symmetric_ports: list[tuple[str, ...]] = field(default_factory=list)
    optimize_ports: list[str] | None = None

    def ports_to_optimize(self) -> list[str]:
        if self.optimize_ports is not None:
            return list(self.optimize_ports)
        return [p for p in self.port_map if not is_ground(self.port_map[p])]


@dataclass
class LayoutChoice:
    """The layout decision for one binding in an assembly."""

    base: MosGeometry
    pattern: str
    wires: WireConfig = field(default_factory=WireConfig)


@dataclass
class RouteBudget:
    """Route RC applied to one top-level net during assembly.

    Attributes:
        route: The global-route description.
        n_wires: Parallel-route count chosen by reconciliation.
    """

    route: GlobalRouteInfo
    n_wires: int = 1


class CompositeCircuit(ABC):
    """Base class for the benchmark circuits."""

    name = "composite"

    def __init__(self, tech: Technology):
        self.tech = tech

    # -- structure ---------------------------------------------------------

    @abstractmethod
    def bindings(self) -> list[PrimitiveBinding]:
        """The annotated primitive hierarchy."""

    @abstractmethod
    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        """Add stimuli/bias/load elements for the top-level testbench."""

    @abstractmethod
    def measure(self, dut: Circuit) -> dict[str, float]:
        """Measure the paper's top-level metrics on an assembly."""

    def placement_rows(self) -> list[list[str]] | None:
        """Optional floorplan hint: rows of binding names.

        Circuits with a strong natural topology (ring oscillators) return
        a snake-ordered floorplan here; the flow then places rows
        directly instead of annealing, exactly as a layout engineer would
        constrain the placer.  ``None`` (default) means anneal freely.
        """
        return None

    # -- assembly ----------------------------------------------------------

    def schematic(self) -> Circuit:
        """Flat pre-layout netlist of the whole circuit."""
        top = Circuit(f"{self.name}_schematic")
        for binding in self.bindings():
            child = binding.primitive.schematic_circuit()
            missing = [p for p in child.ports if p not in binding.port_map]
            if missing:
                raise OptimizationError(
                    f"{self.name}/{binding.name}: unmapped ports {missing}"
                )
            port_map = {p: binding.port_map[p] for p in child.ports}
            top.instantiate(child, binding.name, port_map)
        return top

    def assembled(
        self,
        choices: dict[str, LayoutChoice],
        route_budgets: dict[str, RouteBudget] | None = None,
    ) -> Circuit:
        """Flat post-layout netlist.

        Args:
            choices: Layout decision per binding name.
            route_budgets: Per-top-net global-route RC (keyed by top net);
                nets without a budget connect directly.
        """
        route_budgets = route_budgets or {}
        top = Circuit(f"{self.name}_assembled")

        # Inter-primitive route RC: the net is split into a trunk node
        # plus per-pin tap; the trunk carries the route C and each pin
        # reaches it through half the route R (a symmetric pi).
        routed_nets = set(route_budgets)
        for net, budget in route_budgets.items():
            r, c = route_rc(budget.route, self.tech, budget.n_wires)
            if c > 0:
                top.add_capacitor(f"c_route_{net}", f"{net}__trunk", "0", c)

        pin_counter: dict[str, int] = {}
        for binding in self.bindings():
            choice = choices.get(binding.name)
            if choice is None:
                raise OptimizationError(
                    f"{self.name}: no layout choice for binding {binding.name!r}"
                )
            child = binding.primitive.extract(
                binding.primitive.generate(
                    choice.base, choice.pattern, choice.wires, verify=False
                ),
                choice.base,
            ).build_circuit()

            port_map: dict[str, str] = {}
            for port, net in binding.port_map.items():
                if port not in child.ports:
                    continue
                if net in routed_nets:
                    pin_counter[net] = pin_counter.get(net, 0) + 1
                    pin_node = f"{net}__pin{pin_counter[net]}"
                    budget = route_budgets[net]
                    r, _c = route_rc(budget.route, self.tech, budget.n_wires)
                    top.add_resistor(
                        f"r_route_{net}_{binding.name}_{port}",
                        f"{net}__trunk",
                        pin_node,
                        max(r / 2.0, 1e-3),
                    )
                    port_map[port] = pin_node
                else:
                    port_map[port] = net
            top.instantiate(child, binding.name, port_map)

        # Routed nets keep a zero-ish impedance link from trunk to the
        # canonical net name so testbench stimuli attach naturally.
        for net in routed_nets:
            top.add_resistor(f"r_tap_{net}", net, f"{net}__trunk", 1e-3)
        return top

    # -- testbench helper -----------------------------------------------

    def testbench(self, dut: Circuit, ac: bool = False) -> Circuit:
        """Wrap an assembly (or the schematic) with the circuit stimuli."""
        tb = Circuit(f"{self.name}_tb")
        for element in dut.elements:
            tb.add(element)
        self.finish_testbench(tb, ac=ac)
        return tb
