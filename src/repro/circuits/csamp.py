"""The common-source amplifier of the paper's Fig. 2 / Table I.

Two primitives: an NMOS common-source stage (M1) and a PMOS
current-source load (M2).  Top-level metrics are the figure's Gain, UGF
and Power; the primitive-level metrics (Gm, Rout, C_total, I_M2) come
from the primitives' own testbenches and feed Table I.
"""

from __future__ import annotations

from repro.circuits.base import CompositeCircuit, PrimitiveBinding
from repro.primitives.amplifiers import CommonSourceAmplifier
from repro.primitives.loads import PmosCurrentSource
from repro.spice import measure
from repro.spice.mna import CompiledCircuit
from repro.spice.ac import ac_analysis
from repro.spice.dc import dc_operating_point
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology


class CommonSourceAmpCircuit(CompositeCircuit):
    """CS amplifier with a PMOS current-source load.

    Args:
        tech: Technology node.
        i_bias: Stage current (A); the paper's example runs at 290 uA.
        c_load: External load capacitance (F).
        stage_fins: Fins of the CS device.
        load_fins: Fins of the load device.
    """

    name = "cs_amplifier"

    def __init__(
        self,
        tech: Technology,
        i_bias: float = 290.0e-6,
        c_load: float = 30.0e-15,
        stage_fins: int = 384,
        load_fins: int = 576,
    ):
        super().__init__(tech)
        self.i_bias = i_bias
        self.c_load = c_load
        vout_mid = 0.5 * tech.vdd
        self.stage = CommonSourceAmplifier(
            tech, base_fins=stage_fins, name="cs_stage",
            i_target=i_bias, vout=vout_mid,
        )
        self.load = PmosCurrentSource(
            tech, base_fins=load_fins, name="cs_load",
            i_target=i_bias, vout=vout_mid,
        )

    def bindings(self) -> list[PrimitiveBinding]:
        return [
            PrimitiveBinding(
                name="xstage",
                primitive=self.stage,
                port_map={"in": "vin", "out": "vout"},
            ),
            PrimitiveBinding(
                name="xload",
                primitive=self.load,
                port_map={"out": "vout", "vb": "vbp", "vdd!": "vdd!"},
            ),
        ]

    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_vsource("vbias", "vbp", "0", self.load.v_bias)
        tb.add_vsource(
            "vin", "vin", "0", self.stage.vin, ac_magnitude=1.0 if ac else 0.0
        )
        tb.add_capacitor("cl", "vout", "0", self.c_load)

    def measure(self, dut: Circuit) -> dict[str, float]:
        """Gain (dB), UGF (Hz), 3dB bandwidth (Hz), current (A), power (W)."""
        tb = self.testbench(dut, ac=True)
        compiled = CompiledCircuit(tb, self.tech.rules)
        op = dc_operating_point(compiled)
        ac = ac_analysis(compiled, op, 1.0e5, 1.0e11, 10)
        h = ac.v("vout")
        current = abs(op.i("vdd"))
        return {
            "current": current,
            "gain_db": measure.low_frequency_gain_db(h),
            "ugf": measure.unity_gain_frequency(ac.freqs, h),
            "f3db": measure.bandwidth_3db(ac.freqs, h),
            "power": current * self.tech.vdd,
        }


def quick_schematic_performance(tech: Technology) -> dict[str, float]:
    """Convenience: the schematic row of Fig. 2's table."""
    circuit = CommonSourceAmpCircuit(tech)
    return circuit.measure(circuit.schematic())
