"""The high-frequency five-transistor OTA (paper Table VI, Fig. 6a).

Three primitives, matching the paper's Fig. 6 annotation:

* the NMOS input differential pair (M1/M2),
* the PMOS active current-mirror load (M3/M4),
* the NMOS tail current source (M5, mirrored from an external bias).

Nets follow Fig. 6(a): net ``nx`` is the mirror's diode node, ``vout``
the single-ended output, ``ntail`` the common source.
"""

from __future__ import annotations

from repro.circuits.base import CompositeCircuit, PrimitiveBinding
from repro.primitives.diffpair import DifferentialPair
from repro.primitives.loads import CurrentSourceLoad
from repro.primitives.mirrors import ActiveCurrentMirror
from repro.spice import measure
from repro.spice.ac import ac_analysis
from repro.spice.dc import dc_operating_point
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology


class FiveTransistorOta(CompositeCircuit):
    """High-frequency 5T OTA.

    Args:
        tech: Technology node.
        i_tail: Tail current (A).
        c_load: Output load capacitance (F).
        pair_fins: Fins per input-pair side.
        mirror_fins: Fins per load-mirror device.
        tail_fins: Fins of the tail current source.
        vcm: Input common-mode voltage (V).
    """

    name = "ota5t"

    def __init__(
        self,
        tech: Technology,
        i_tail: float = 700.0e-6,
        c_load: float = 200.0e-15,
        pair_fins: int = 240,
        mirror_fins: int = 240,
        tail_fins: int = 480,
        vcm: float | None = None,
    ):
        super().__init__(tech)
        self.i_tail = i_tail
        self.c_load = c_load
        # Enough common-mode headroom that the tail device stays safely
        # saturated even under layout-induced source IR drop.
        self.vcm = vcm if vcm is not None else 0.72 * tech.vdd

        half = i_tail / 2.0
        vout_est = tech.vdd - 0.25 * tech.vdd  # mirror diode drop estimate
        self.pair = DifferentialPair(
            tech, base_fins=pair_fins, name="ota_dp",
            vcm=self.vcm, vout=vout_est, i_tail=i_tail,
        )
        self.mirror = ActiveCurrentMirror(
            tech, base_fins=mirror_fins, ratio=1, name="ota_mirror",
            i_ref=half, vout=vout_est,
        )
        self.tail = CurrentSourceLoad(
            tech, base_fins=tail_fins, name="ota_tail",
            i_target=i_tail, vout=0.15 * tech.vdd,
        )

    def bindings(self) -> list[PrimitiveBinding]:
        return [
            PrimitiveBinding(
                name="xdp",
                primitive=self.pair,
                port_map={
                    "inp": "vinp",
                    "inn": "vinn",
                    "outp": "nx",
                    "outn": "vout",
                    "tail": "ntail",
                },
                symmetric_ports=[("outp", "outn"), ("inp", "inn")],
            ),
            PrimitiveBinding(
                name="xmirror",
                primitive=self.mirror,
                port_map={"in": "nx", "out": "vout", "vdd!": "vdd!"},
            ),
            PrimitiveBinding(
                name="xtail",
                primitive=self.tail,
                port_map={"out": "ntail", "vb": "vbn"},
            ),
        ]

    def calibrate_biases(self) -> None:
        """Refresh primitive bias points from the schematic OP.

        Mirrors Algorithm 1 line 3: the primitives' testbench biases come
        from a circuit-level schematic simulation.
        """
        tb = self.testbench(self.schematic(), ac=False)
        compiled = CompiledCircuit(tb, self.tech.rules)
        op = dc_operating_point(compiled)
        self.pair.vout = op.v("nx")
        self.mirror.vout = op.v("vout")
        self.tail.vout = op.v("ntail")

    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        vdd = self.tech.vdd
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vbn", "vbn", "0", self.tail.v_bias)
        tb.add_vsource(
            "vinp", "vinp", "0", self.vcm, ac_magnitude=0.5 if ac else 0.0
        )
        tb.add_vsource(
            "vinn",
            "vinn",
            "0",
            self.vcm,
            ac_magnitude=0.5 if ac else 0.0,
            ac_phase_deg=180.0,
        )
        tb.add_capacitor("cl", "vout", "0", self.c_load)

    def measure(self, dut: Circuit) -> dict[str, float]:
        """The Table VI row: current, gain, UGF, 3dB freq, phase margin."""
        tb = self.testbench(dut, ac=True)
        compiled = CompiledCircuit(tb, self.tech.rules)
        op = dc_operating_point(compiled)
        ac = ac_analysis(compiled, op, 1.0e5, 1.0e11, 12)
        h = ac.v("vout")
        current = abs(op.i("vdd"))
        return {
            "current": current,
            "gain_db": measure.low_frequency_gain_db(h),
            "ugf": measure.unity_gain_frequency(ac.freqs, h),
            "f3db": measure.bandwidth_3db(ac.freqs, h),
            "phase_margin": measure.phase_margin(ac.freqs, h),
        }
