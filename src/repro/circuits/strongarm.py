"""The StrongARM comparator (paper Fig. 3, Table VI).

Primitive annotation (the shaded boxes of Fig. 3):

* input differential pair M1/M2 (sources on the clocked tail node),
* regenerative NMOS pair M3/M4 (sources on the pair's drains P/Q),
* PMOS cross-coupled pair M5/M6 (output latch),
* PMOS precharge switches on the output nodes,
* NMOS clock tail switch M7.

Top-level metrics (Table VI): clock-to-output delay and average power,
measured with a transient simulation of one decision.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.base import CompositeCircuit, PrimitiveBinding
from repro.errors import MeasureError
from repro.primitives.diffpair import DifferentialPair
from repro.primitives.digital import (
    PmosCrossCoupledPair,
    PmosSwitch,
    RegenerativePair,
    TransmissionSwitch,
)
from repro.spice import measure
from repro.spice.dc import dc_operating_point
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.spice.tran import transient
from repro.spice.waveforms import Pulse
from repro.tech.pdk import Technology


class StrongArmComparator(CompositeCircuit):
    """StrongARM latch comparator.

    Args:
        tech: Technology node.
        v_in_diff: Differential input applied during the measurement (V).
        vcm: Input common mode (V).
        pair_fins: Fins per input-pair side.
        latch_fins: Fins of the regenerative/cross-coupled devices.
        clock_period: Clock period for the transient (s).
    """

    name = "strongarm"

    def __init__(
        self,
        tech: Technology,
        v_in_diff: float = 50.0e-3,
        vcm: float | None = None,
        pair_fins: int = 96,
        latch_fins: int = 64,
        switch_fins: int = 48,
        tail_fins: int = 192,
        clock_period: float = 2.0e-9,
    ):
        super().__init__(tech)
        self.v_in_diff = v_in_diff
        self.vcm = vcm if vcm is not None else 0.6 * tech.vdd
        self.clock_period = clock_period

        self.pair = DifferentialPair(
            tech, base_fins=pair_fins, name="sa_pair",
            vcm=self.vcm, vout=0.3 * tech.vdd, i_tail=0.5e-6 * pair_fins,
        )
        self.regen = RegenerativePair(tech, base_fins=latch_fins, name="sa_regen")
        self.latch_p = PmosCrossCoupledPair(
            tech, base_fins=latch_fins, name="sa_latchp"
        )
        self.pre_p = PmosSwitch(tech, base_fins=switch_fins, name="sa_prep")
        self.pre_n = PmosSwitch(tech, base_fins=switch_fins, name="sa_pren")
        self.tail_sw = TransmissionSwitch(
            tech, base_fins=tail_fins, name="sa_tail", v_signal=0.05 * tech.vdd
        )

    def bindings(self) -> list[PrimitiveBinding]:
        return [
            PrimitiveBinding(
                name="xpair",
                primitive=self.pair,
                port_map={
                    "inp": "vinp",
                    "inn": "vinn",
                    "outp": "np",
                    "outn": "nq",
                    "tail": "ntail",
                },
                symmetric_ports=[("outp", "outn")],
            ),
            PrimitiveBinding(
                name="xregen",
                primitive=self.regen,
                # The positive output rides on the *negative* input's
                # drain (the StrongARM inverts through the first stage).
                port_map={
                    "outp": "voutp",
                    "outn": "voutn",
                    "srcp": "nq",
                    "srcn": "np",
                },
                symmetric_ports=[("outp", "outn"), ("srcp", "srcn")],
            ),
            PrimitiveBinding(
                name="xlatchp",
                primitive=self.latch_p,
                port_map={"outp": "voutp", "outn": "voutn", "vdd!": "vdd!"},
                symmetric_ports=[("outp", "outn")],
            ),
            PrimitiveBinding(
                name="xprep",
                primitive=self.pre_p,
                port_map={"a": "voutp", "en": "clk", "b": "vdd!", "vdd!": "vdd!"},
            ),
            PrimitiveBinding(
                name="xpren",
                primitive=self.pre_n,
                port_map={"a": "voutn", "en": "clk", "b": "vdd!", "vdd!": "vdd!"},
            ),
            PrimitiveBinding(
                name="xtail",
                primitive=self.tail_sw,
                port_map={"a": "ntail", "en": "clk", "b": "0"},
                optimize_ports=["a"],
            ),
        ]

    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        vdd = self.tech.vdd
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vinp", "vinp", "0", self.vcm + self.v_in_diff / 2.0)
        tb.add_vsource("vinn", "vinn", "0", self.vcm - self.v_in_diff / 2.0)
        tb.add_vsource(
            "vclk",
            "clk",
            "0",
            Pulse(
                v1=0.0,
                v2=vdd,
                delay=0.2e-9,
                rise=10e-12,
                fall=10e-12,
                width=self.clock_period / 2.0,
                period=self.clock_period,
            ),
        )
        tb.add_capacitor("clp", "voutp", "0", 2.0e-15)
        tb.add_capacitor("cln", "voutn", "0", 2.0e-15)

    def measure(self, dut: Circuit, dt: float = 1.0e-12) -> dict[str, float]:
        """Delay (s) from clock edge to decision, and average power (W)."""
        vdd = self.tech.vdd
        tb = self.testbench(dut)
        compiled = CompiledCircuit(tb, self.tech.rules)
        op = dc_operating_point(compiled)
        t_stop = 0.2e-9 + self.clock_period / 2.0
        result = transient(compiled, t_stop=t_stop, dt=dt, op=op)

        diff = result.v("voutp") - result.v("voutn")
        # Decision: |differential output| crosses half the supply — in
        # either direction (offset can flip the nominal polarity).
        level = vdd / 2.0
        clk_rise = measure.crossing_times(
            result.t, result.v("clk"), vdd / 2.0, "rise"
        )
        if len(clk_rise) == 0:
            raise MeasureError("clock never rises")
        pos = measure.crossing_times(result.t, diff, +level, "rise")
        neg = measure.crossing_times(result.t, diff, -level, "fall")
        candidates = [t for t in list(pos) + list(neg) if t > clk_rise[0]]
        if not candidates:
            raise MeasureError("comparator never resolves")
        delay = float(min(candidates) - clk_rise[0])

        power = measure.average_power(
            result.t, result.i("vdd"), vdd, settle_fraction=0.0
        )
        return {
            "delay": delay,
            "power": abs(power),
            "decision": float(np.sign(diff[-1])),
        }
