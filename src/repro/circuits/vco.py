"""The eight-stage differential ring-oscillator VCO (paper Table VII).

Each stage is one :class:`~repro.primitives.digital.DifferentialDelayCell`
primitive — two current-starved inverters with an internal cross-coupled
keeper (the regeneration loop must live inside the cell; a keeper
fighting its inverter across global-route resistance latches mid-rail).
The ring closes with one polarity twist, so an even stage count
oscillates.  The control voltage drives the starve gates (``vbn`` and its
complement ``vbp``), trading delay for current — the circuit whose output
RC trade-off the paper highlights.

Top-level metrics: oscillation frequency versus control voltage, from
which Table VII's max/min frequency and usable voltage range follow.
"""

from __future__ import annotations

from repro.circuits.base import CompositeCircuit, PrimitiveBinding
from repro.errors import MeasureError
from repro.primitives.digital import DifferentialDelayCell
from repro.spice import measure
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.spice.tran import transient
from repro.tech.pdk import Technology


class RingOscillatorVco(CompositeCircuit):
    """Differential RO-VCO built from differential delay cells.

    Args:
        tech: Technology node.
        stages: Number of differential stages (even; the paper uses 8).
        keeper_fins: Fins of the keeper devices (the cell's unit size).
        drive_ratio: Inverter/starve device size relative to the keeper.
        v_ctrl: Default control voltage (V).
    """

    name = "ro_vco"

    def __init__(
        self,
        tech: Technology,
        stages: int = 8,
        keeper_fins: int = 8,
        drive_ratio: int = 6,
        v_ctrl: float = 0.5,
    ):
        super().__init__(tech)
        if stages < 2 or stages % 2 != 0:
            raise ValueError("differential ring needs an even stage count >= 2")
        self.stages = stages
        self.v_ctrl = v_ctrl
        self.cell = DifferentialDelayCell(
            tech,
            base_fins=keeper_fins,
            drive_ratio=drive_ratio,
            name="vco_cell",
            v_ctrl=v_ctrl,
        )

    # -- netlist -----------------------------------------------------------

    def _stage_nets(self, index: int) -> tuple[str, str]:
        return f"na{index}", f"nb{index}"

    def bindings(self) -> list[PrimitiveBinding]:
        out: list[PrimitiveBinding] = []
        for k in range(self.stages):
            in_a, in_b = self._stage_nets((k - 1) % self.stages)
            if k == 0:
                in_a, in_b = in_b, in_a  # the differential twist
            out_a, out_b = self._stage_nets(k)
            out.append(
                PrimitiveBinding(
                    name=f"xstage{k}",
                    primitive=self.cell,
                    port_map={
                        "ina": in_a,
                        "inb": in_b,
                        "outa": out_a,
                        "outb": out_b,
                        "vbp": "vbp",
                        "vbn": "vbn",
                        "vdd!": "vdd!",
                    },
                    symmetric_ports=[("outa", "outb"), ("ina", "inb")],
                    optimize_ports=["outa", "outb"],
                )
            )
        return out

    def placement_rows(self) -> list[list[str]]:
        """Snake floorplan: first half left-to-right, second half below
        right-to-left, so consecutive stages abut."""
        half = self.stages // 2
        top = [f"xstage{k}" for k in range(half)]
        bottom = [f"xstage{k}" for k in range(self.stages - 1, half - 1, -1)]
        return [top, bottom]

    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        vdd = self.tech.vdd
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vctrl_n", "vbn", "0", self.v_ctrl)
        tb.add_vsource("vctrl_p", "vbp", "0", vdd - self.v_ctrl)

    # -- measurement -------------------------------------------------------

    def estimate_period(self) -> float:
        """Rough period estimate from the cell's delay metric."""
        values = self.cell.schematic_reference()
        delay = max(values["delay"], 1.0e-12)
        return 2.0 * self.stages * delay * 2.0

    def measure(
        self,
        dut: Circuit,
        v_ctrl: float | None = None,
        periods: int = 14,
        steps_per_period: int = 220,
    ) -> dict[str, float]:
        """Oscillation frequency at one control voltage.

        Raises :class:`~repro.errors.MeasureError` if the ring does not
        oscillate (callers interpret that as "outside the usable voltage
        range").  Post-layout rings run slower than the schematic-based
        window estimate, so the window widens geometrically before the
        ring is declared dead.
        """
        if v_ctrl is not None:
            old = self.v_ctrl
            self.v_ctrl = v_ctrl
            try:
                return self.measure(
                    dut, periods=periods, steps_per_period=steps_per_period
                )
            finally:
                self.v_ctrl = old

        drive = max(self.v_ctrl - 0.25, 0.02)
        t_period = self.estimate_period() * (0.45 / drive) ** 2
        vdd = self.tech.vdd
        tb = self.testbench(dut)
        compiled = CompiledCircuit(tb, self.tech.rules)
        # Solve the (metastable, symmetric) operating point, then kick
        # the first stage apart by overwriting its node voltages — the
        # transient's companion models absorb the inconsistency, which is
        # exactly the symmetry-breaking impulse an oscillator needs.
        op = dc_operating_point(compiled)
        kicked = op.x.copy()
        na, nb = self._stage_nets(0)
        kicked[compiled.index_of(na)] = vdd
        kicked[compiled.index_of(nb)] = 0.0
        op = OperatingPoint(compiled=compiled, x=kicked,
                            mos_eval=compiled.eval_mosfets(kicked))

        last_error: MeasureError | None = None
        for window_scale in (1.0, 4.0, 16.0):
            t_stop = periods * t_period * window_scale
            dt = t_period * window_scale / steps_per_period
            result = transient(compiled, t_stop=t_stop, dt=dt, op=op)
            wave = result.v(self._stage_nets(self.stages // 2)[0]) - result.v(
                self._stage_nets(self.stages // 2)[1]
            )
            swing = measure.peak_to_peak(wave[len(wave) // 2 :])
            if swing < 0.3 * vdd:
                last_error = MeasureError(
                    f"no sustained oscillation at v_ctrl={self.v_ctrl:.3f} "
                    f"(swing {swing:.3f} V)"
                )
                continue
            try:
                freq = measure.oscillation_frequency(
                    result.t, wave, settle_fraction=0.4
                )
            except MeasureError as exc:
                last_error = exc  # too few periods: widen the window
                continue
            return {"frequency": freq, "swing": swing}
        assert last_error is not None
        raise last_error

    def frequency_sweep(
        self,
        dut: Circuit,
        v_values: list[float],
    ) -> dict[float, float]:
        """Oscillation frequency per control voltage; 0.0 = no oscillation."""
        out: dict[float, float] = {}
        for v in v_values:
            try:
                out[v] = self.measure(dut, v_ctrl=v)["frequency"]
            except MeasureError:
                out[v] = 0.0
        return out

    @staticmethod
    def table_vii_metrics(sweep: dict[float, float]) -> dict[str, float]:
        """Max/min frequency and usable control range from a sweep."""
        oscillating = {v: f for v, f in sweep.items() if f > 0.0}
        if not oscillating:
            raise MeasureError("VCO never oscillates over the sweep")
        return {
            "f_max": max(oscillating.values()),
            "f_min": min(oscillating.values()),
            "v_lo": min(oscillating),
            "v_hi": max(oscillating),
        }
