"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize <primitive>`` — run Algorithm 1 on a library primitive and
  print the binned/tuned options; ``--run-dir``/``--resume`` checkpoint
  the sweep so a killed run restarts without re-simulating,
* ``flow <circuit> [--flavor ...]`` — run the hierarchical flow on one of
  the paper's circuits and print the measured metrics (same
  checkpointing flags),
* ``render <primitive>`` — generate a layout variant and write SVG +
  extracted SPICE to disk,
* ``verify <target>`` — statically verify layouts and netlists (DRC +
  connectivity + ERC + constraint/symmetry lint + the electrical
  audit); target is a primitive, ``all``, or a benchmark circuit.
  ``--severity`` picks the failure threshold, ``--waivers`` a lint
  baseline and ``--format json`` machine-readable output; ``--emag``,
  ``--antenna`` and ``--symmetry-geo`` toggle the static EM/IR,
  antenna/density and geometric-symmetry audits (all default on).
  Exits nonzero when any unwaived violation at or above the threshold
  is found,
* ``profile <target>`` — run a primitive optimization (or a circuit
  flow) single-process and print the solver-kernel profile: per-phase
  timings (device eval / stamp / factor / solve), Newton iteration and
  factorization counts, LU reuses, and adaptive-vs-fixed transient step
  counts,
* ``ingest <file.sp>`` — parse a raw SPICE netlist, recognize analog
  primitives (diff pairs, mirrors, cascodes, cross-coupled pairs, ...)
  by subgraph matching, emit matching/symmetry constraints and report
  coverage/ambiguities as ``TOPO-*`` lint findings; ``--format json``
  prints a byte-deterministic machine-readable summary,
* ``cache stats|export`` — inspect the evalcache disk tier and the
  surrogate training corpus (``stats``), or dump the corpus rows as
  deterministic JSON (``export``),
* ``list`` — list the primitive library and the benchmark circuits.

``optimize``, ``flow`` and ``profile`` accept ``--surrogate`` (or the
``REPRO_SURROGATE`` environment variable) to enable surrogate-guided
sweep pruning, with ``--surrogate-topk``, ``--explore`` and
``--surrogate-corpus`` tuning the budget and corpus location.

``flow`` also accepts ``--netlist <file.sp>`` instead of a circuit
name: the netlist is ingested and every recognized primitive with a
library binding is optimized by the flow (no measurement testbench, so
metrics are skipped).

``optimize``, ``flow`` and ``profile`` accept ``--solver
{auto,dense,sparse}`` to pin the MNA linear-solver backend (overrides
the ``REPRO_SOLVER`` environment variable; ``auto`` picks by system
size).
"""

from __future__ import annotations

import argparse
import sys

from repro import HierarchicalFlow, PrimitiveOptimizer, Technology
from repro.primitives import PrimitiveLibrary
from repro.reporting import format_table

CIRCUITS = {
    "csamp": "CommonSourceAmpCircuit",
    "ota": "FiveTransistorOta",
    "strongarm": "StrongArmComparator",
    "vco": "RingOscillatorVco",
}


def _build_circuit(name: str, tech: Technology):
    import repro.circuits as circuits

    try:
        cls = getattr(circuits, CIRCUITS[name])
    except KeyError:
        raise SystemExit(
            f"unknown circuit {name!r}; choose from {', '.join(CIRCUITS)}"
        )
    return cls(tech)


def cmd_list(args: argparse.Namespace) -> int:
    """List the primitive library and the benchmark circuits."""
    library = PrimitiveLibrary()
    print("Primitives:")
    for name in library.names():
        print(f"  {name}")
    print("\nCircuits:")
    for name in CIRCUITS:
        print(f"  {name}")
    return 0


def _policy_from_args(args: argparse.Namespace):
    from repro.runtime import RetryPolicy

    defaults = RetryPolicy()
    return RetryPolicy(
        max_retries=(
            args.retries if args.retries is not None else defaults.max_retries
        ),
        deadline_s=args.deadline,
        task_timeout_s=getattr(args, "task_timeout", None),
    )


def _jobs_from_args(args: argparse.Namespace) -> int:
    """CLI job count: ``--jobs``, then ``REPRO_JOBS``, then all cores."""
    import os

    from repro.runtime import resolve_jobs

    return resolve_jobs(args.jobs, default=os.cpu_count())


def _surrogate_kwargs(args: argparse.Namespace) -> dict:
    """Surrogate knobs shared by optimize/flow (unset flags omitted)."""
    kwargs: dict = {
        "surrogate": getattr(args, "surrogate", None),
        "surrogate_corpus": getattr(args, "surrogate_corpus", None),
    }
    if getattr(args, "surrogate_topk", None) is not None:
        kwargs["surrogate_topk"] = args.surrogate_topk
    if getattr(args, "explore", None) is not None:
        kwargs["explore"] = args.explore
    return kwargs


def _apply_solver(args: argparse.Namespace) -> None:
    """Pin the MNA solver backend for the process (``--solver``)."""
    if getattr(args, "solver", None) is not None:
        from repro.spice import kernel

        kernel.set_default_solver(args.solver)


def cmd_optimize(args: argparse.Namespace) -> int:
    """Run Algorithm 1 on a library primitive and print the options."""
    _apply_solver(args)
    tech = Technology.default()
    library = PrimitiveLibrary()
    primitive = library.create(args.primitive, tech, base_fins=args.fins)
    if args.resume and not args.run_dir:
        raise SystemExit("--resume requires --run-dir")
    optimizer = PrimitiveOptimizer(
        n_bins=args.bins,
        max_wires=args.max_wires,
        policy=_policy_from_args(args),
        run_dir=args.run_dir,
        resume=args.resume,
        jobs=_jobs_from_args(args),
        batch=args.batch,
        cache=args.cache,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        **_surrogate_kwargs(args),
    )
    from repro.runtime import graceful_shutdown

    with graceful_shutdown(run_dir=args.run_dir):
        report = optimizer.optimize(primitive)
    rows = []
    for result in report.tuned:
        o = result.option
        rows.append(
            [
                f"({o.base.nfin}, {o.base.nf}, {o.base.m})",
                o.pattern,
                f"{o.aspect_ratio:.2f}",
                f"{o.cost:.2f}",
            ]
        )
    print(
        format_table(
            ["(nfin, nf, m)", "pattern", "aspect", "cost"],
            rows,
            title=f"{args.primitive} ({args.fins} fins): "
            f"{report.total_simulations} simulations",
        )
    )
    if report.cached_evaluations:
        print(f"resumed: {report.cached_evaluations} evaluations from checkpoint")
    if report.cache_stats.get("hits"):
        print(
            f"cache: {report.cache_stats['hits']} evaluations answered "
            f"from content cache"
        )
    if report.surrogate_stats:
        s = report.surrogate_stats
        print(
            f"surrogate: {s['sel_pruned'] + s['tune_pruned']} candidates "
            f"pruned, {s['recorded']} corpus rows recorded"
        )
    if report.failures:
        print(f"absorbed: {report.failures.summary()}")
    return 0


def cmd_flow(args: argparse.Namespace) -> int:
    """Run the hierarchical flow on a benchmark circuit or a netlist."""
    _apply_solver(args)
    tech = Technology.default()
    if (args.circuit is None) == (args.netlist is None):
        raise SystemExit("flow needs a circuit name or --netlist, not both")
    if args.netlist is not None:
        from repro.ingest import IngestedCircuit
        from repro.ingest.pipeline import ingest_file

        ingested = ingest_file(args.netlist, tech=tech, validate=False)
        circuit = IngestedCircuit(ingested, tech)
        if not circuit.bindings():
            raise SystemExit(
                f"{args.netlist}: no recognized primitive has a library "
                f"binding; nothing to optimize (run `repro ingest` for "
                f"details)"
            )
        if circuit.skipped:
            print(f"skipped (no library binding): "
                  f"{', '.join(circuit.skipped)}")
        target = args.netlist
        measure = False
    else:
        circuit = _build_circuit(args.circuit, tech)
        target = args.circuit
        measure = args.circuit != "vco"  # the VCO needs a control sweep
    if args.resume and not args.run_dir:
        raise SystemExit("--resume requires --run-dir")
    flow = HierarchicalFlow(
        tech,
        n_bins=args.bins,
        max_wires=args.max_wires,
        policy=_policy_from_args(args),
        run_dir=args.run_dir,
        resume=args.resume,
        jobs=_jobs_from_args(args),
        batch=args.batch,
        cache=args.cache,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        **_surrogate_kwargs(args),
    )
    from repro.runtime import graceful_shutdown

    with graceful_shutdown(run_dir=args.run_dir):
        result = flow.run(circuit, flavor=args.flavor, measure=measure)
    print(f"{target} / {args.flavor}: "
          f"modeled runtime {result.modeled_runtime:.0f}s, "
          f"wall {result.wall_time:.1f}s")
    for key, value in result.metrics.items():
        print(f"  {key} = {value:.6g}")
    if result.reconciled:
        print("  reconciled routes: "
              + ", ".join(f"{n}={r.wires}" for n, r in result.reconciled.items()))
    if result.surrogate_stats:
        s = result.surrogate_stats
        print(
            f"  surrogate: {s['sel_pruned'] + s['tune_pruned']} candidates "
            f"pruned, {s['recorded']} corpus rows recorded"
        )
    if result.failures:
        print(f"  absorbed: {result.failures.summary()}")
    return 0


def _render_profile(profile: dict, title: str) -> str:
    """Solver-profile counter table (see ``SolverStats.as_dict``)."""
    rows = [
        ["device eval time", f"{profile.get('device_eval_s', 0.0):.3f} s"],
        ["stamp time", f"{profile.get('stamp_s', 0.0):.3f} s"],
        ["factor time", f"{profile.get('factor_s', 0.0):.3f} s"],
        ["solve time", f"{profile.get('solve_s', 0.0):.3f} s"],
        ["newton iterations", str(profile.get("newton_iterations", 0))],
        ["linear solves", str(profile.get("solves", 0))],
        ["factorizations", str(profile.get("factorizations", 0))],
        ["LU reuses", str(profile.get("lu_reuses", 0))],
        ["tran steps accepted", str(profile.get("tran_steps", 0))],
        ["tran steps rejected", str(profile.get("tran_rejected", 0))],
        ["tran fixed-grid steps", str(profile.get("tran_fixed_steps", 0))],
        ["stacked solve calls", str(profile.get("batched_solves", 0))],
        ["stacked solve members", str(profile.get("batch_members", 0))],
        ["stacked solve fallbacks", str(profile.get("batch_fallbacks", 0))],
    ]
    for kind, count in profile.get("analyses", {}).items():
        rows.append([f"{kind} analyses", str(count)])
    for backend, count in profile.get("backends", {}).items():
        rows.append([f"{backend} backend solves", str(count)])
    return format_table(["counter", "value"], rows, title=title)


def _render_surrogate_stats(stats: dict, title: str) -> str:
    """Surrogate-guide counter table (see ``SurrogateStats.as_dict``)."""
    rows = [
        ["models trained", str(stats.get("models_trained", 0))],
        ["predictions", str(stats.get("predictions", 0))],
        ["selection kept", str(stats.get("sel_kept", 0))],
        ["selection pruned", str(stats.get("sel_pruned", 0))],
        ["tuning points pruned", str(stats.get("tune_pruned", 0))],
        ["corpus rows recorded", str(stats.get("recorded", 0))],
    ]
    for reason, count in stats.get("fallbacks", {}).items():
        rows.append([f"fallback: {reason}", str(count)])
    return format_table(["counter", "value"], rows, title=title)


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile the solver kernel across one optimization or flow run.

    Runs single-process (``jobs=1``) so every evaluation executes in
    this process and the kernel counters cover the whole run.
    """
    _apply_solver(args)
    tech = Technology.default()
    if args.target in CIRCUITS:
        circuit = _build_circuit(args.target, tech)
        flow = HierarchicalFlow(
            tech,
            n_bins=args.bins,
            max_wires=args.max_wires,
            jobs=1,
            batch=getattr(args, "batch", None),
            **_surrogate_kwargs(args),
        )
        result = flow.run(circuit, measure=args.target != "vco")
        profile = result.solver_profile
        surrogate_stats = result.surrogate_stats
    else:
        library = PrimitiveLibrary()
        if args.target not in library:
            raise SystemExit(
                f"unknown target {args.target!r}; choose a primitive "
                f"(see `repro list`) or a circuit ({', '.join(CIRCUITS)})"
            )
        primitive = library.create(args.target, tech, base_fins=args.fins)
        optimizer = PrimitiveOptimizer(
            n_bins=args.bins,
            max_wires=args.max_wires,
            jobs=1,
            batch=getattr(args, "batch", None),
            **_surrogate_kwargs(args),
        )
        report = optimizer.optimize(primitive)
        profile = report.solver_profile
        surrogate_stats = report.surrogate_stats
    if not profile:
        print(f"{args.target}: no solver activity recorded")
        return 1
    print(_render_profile(profile, title=f"solver profile: {args.target}"))
    if surrogate_stats:
        print(
            _render_surrogate_stats(
                surrogate_stats, title=f"surrogate profile: {args.target}"
            )
        )
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    """Render a primitive layout to SVG and SPICE files."""
    from pathlib import Path

    from repro.io import layout_to_svg, write_spice

    tech = Technology.default()
    library = PrimitiveLibrary()
    primitive = library.create(args.primitive, tech, base_fins=args.fins)
    base = primitive.variants()[0]
    layout = primitive.generate(base, args.pattern)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    tag = f"{args.primitive}_{base.nfin}x{base.nf}x{base.m}_{args.pattern.lower()}"
    (outdir / f"{tag}.svg").write_text(layout_to_svg(layout))
    circuit = primitive.extract(layout, base).build_circuit()
    (outdir / f"{tag}.sp").write_text(write_spice(circuit))
    print(f"wrote {outdir / tag}.svg and .sp "
          f"({layout.width / 1000:.1f} x {layout.height / 1000:.1f} um)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically verify layouts and netlists: DRC + connectivity +
    ERC + constraints.

    Targets: a library primitive (every sizing variant x feasible
    pattern, bounded by ``--variants``), ``all`` (every primitive — ERC
    on the schematic plus the geometric passes when the primitive
    generates layouts), or a benchmark circuit (runs the flow and
    verifies the assembled placement).  Violations matching the waiver
    baseline (``--waivers``, default ``.reprolint.toml`` when present)
    are marked waived and ignored by the exit code.  Exits 1 when any
    unwaived violation at or above ``--severity`` is found.
    """
    import json

    from repro.cellgen.patterns import available_patterns
    from repro.primitives.base import MosPrimitive
    from repro.verify import load_waivers, verify_circuit, verify_layout

    tech = Technology.default()
    waivers = load_waivers(args.waivers)
    severity = "warning" if args.strict else args.severity
    as_json = args.json or args.format == "json"
    reports = []

    if args.target in CIRCUITS:
        circuit = _build_circuit(args.target, tech)
        flow = HierarchicalFlow(
            tech, n_bins=2, max_wires=args.max_wires, waivers=waivers
        )
        result = flow.run(circuit, flavor=args.flavor, measure=False)
        assert result.verification is not None
        reports.append(result.verification)
    else:
        library = PrimitiveLibrary()
        names = library.names() if args.target == "all" else [args.target]
        for name in names:
            if name not in library:
                raise SystemExit(
                    f"unknown target {name!r}; choose a primitive "
                    f"(see `repro list`), a circuit "
                    f"({', '.join(CIRCUITS)}), or 'all'"
                )
            try:
                primitive = library.create(name, tech, base_fins=args.fins)
            except TypeError:
                primitive = None
            if primitive is not None and args.erc:
                erc_report = verify_circuit(
                    primitive.schematic_circuit(), waivers=waivers
                )
                erc_report.target = f"{name} (schematic ERC)"
                reports.append(erc_report)
            if not isinstance(primitive, MosPrimitive):
                # Passive primitives synthesize netlists, not layouts.
                if args.target != "all" and primitive is None:
                    raise SystemExit(
                        f"{name!r} does not generate layouts; nothing to "
                        f"verify"
                    )
                continue
            for base in primitive.variants()[: args.variants]:
                matched = list(primitive.matched_group())
                counts = {
                    t.name: base.m * t.m_ratio
                    for t in primitive.templates()
                    if t.name in matched
                }
                for pattern in available_patterns(matched, counts):
                    layout = primitive.generate(base, pattern, verify=False)
                    report = verify_layout(
                        layout,
                        tech,
                        spec=primitive.cell_spec(base),
                        constraints=args.constraints,
                        waivers=waivers,
                        emag=args.emag,
                        antenna=args.antenna,
                        symmetry_geo=args.symmetry_geo,
                    )
                    report.target = (
                        f"{name} ({base.nfin}x{base.nf}x{base.m}, {pattern})"
                    )
                    reports.append(report)

    if not reports:
        raise SystemExit(
            f"nothing verified for {args.target!r} (check --variants)"
        )
    failed = False
    if as_json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    for report in reports:
        bad = report.fails(severity)
        failed = failed or bad
        if not as_json:
            if bad or args.verbose:
                print(report.render_text(max_per_rule=args.max_per_rule))
            else:
                print(report.summary())
    return 1 if failed else 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest a raw SPICE netlist: recognize primitives, emit constraints.

    Parses the netlist (``.subckt`` hierarchy, continuation lines and
    engineering suffixes included), canonicalizes it into a device
    graph, recognizes analog primitives by deterministic subgraph
    matching, emits matching/symmetry constraints, validates them
    against the cell generator, and reports coverage gaps and
    ambiguities as ``TOPO-*`` findings (plus schematic ERC).  Output is
    byte-deterministic: repeated runs — with any ``--jobs`` value — emit
    identical text.  Exits 1 when any unwaived violation at or above
    ``--severity`` is found.
    """
    import json

    from repro.ingest.pipeline import ingest_file
    from repro.verify import load_waivers

    tech = Technology.default()
    waivers = load_waivers(args.waivers)
    result = ingest_file(
        args.netlist, tech=tech, waivers=waivers,
        validate=args.validate,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        summary = result.to_dict()
        print(f"ingest: {result.source}")
        print(f"  circuit {summary['circuit']}: "
              f"{summary['n_elements']} elements "
              f"({summary['n_mos']} MOS), {summary['n_nets']} nets, "
              f"ports: {' '.join(summary['ports']) or '-'}")
        print(f"  recognized {len(result.primitives)} primitives, "
              f"coverage {100.0 * result.coverage:.1f}%")
        for prim in result.primitives:
            devices = ", ".join(name for _, name in prim.match.devices)
            line = f"    {prim.name}: {devices}"
            if prim.binding is not None:
                line += (f" -> {prim.binding.family}"
                         f"(base_fins={prim.binding.base_fins}"
                         + (f", ratio={prim.binding.ratio}"
                            if prim.binding.ratio != 1 else "")
                         + ")")
            print(line)
            if prim.spec is not None and prim.spec.symmetric_pairs:
                pairs = ", ".join(
                    f"({a}, {b})" for a, b in prim.spec.symmetric_pairs
                )
                print(f"      symmetric: {pairs}")
        if result.recognition.uncovered:
            print("  uncovered: "
                  + ", ".join(result.recognition.uncovered))
        print(f"  {result.report.summary()}")
        if result.report.violations:
            print(result.report.render_text(max_per_rule=args.max_per_rule))
    return 1 if result.report.fails(args.severity) else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or export the evalcache disk tier and surrogate corpus.

    ``stats`` prints order-independent accounting (disk-tier entries and
    bytes, corpus rows per family, skipped lines) as JSON; ``export``
    dumps every corpus row as deterministic JSON for offline analysis
    or corpus transplants.  Both read only — nothing is mutated.
    """
    import json
    from pathlib import Path

    from repro.surrogate import CorpusStore

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    corpus_path = args.corpus
    if corpus_path is None and cache_dir is not None:
        candidate = cache_dir / "corpus.jsonl"
        corpus_path = str(candidate) if candidate.exists() else None
    store = CorpusStore(corpus_path)
    if args.action == "stats":
        disk: dict = {}
        if cache_dir is not None and cache_dir.is_dir():
            entries = sorted(cache_dir.glob("*.json"))
            disk = {
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p in entries),
                "dir": str(cache_dir),
            }
        payload = {"corpus": store.stats(), "evalcache": disk}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = store.export_rows()
    text = json.dumps(rows, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {len(rows)} corpus rows to {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list primitives and circuits")

    def add_runtime_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--run-dir",
            default=None,
            help="directory for sweep-checkpoint journals",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="resume from the journals in --run-dir",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            help="retries per failed evaluation",
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            help="per-evaluation wall-clock deadline (seconds)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for batched evaluations (default: "
            "REPRO_JOBS, else all CPU cores; results are identical for "
            "any value)",
        )
        p.add_argument(
            "--batch",
            type=int,
            default=None,
            metavar="K",
            help="vectorized-sweep width: same-pattern variants per "
            "stacked solver call (default: REPRO_BATCH, else 1; results "
            "are identical for any value; engages when --jobs is 1)",
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="content-addressed evaluation cache (on-disk tier under "
            "--run-dir when set)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="shared disk directory for the evaluation cache "
            "(overrides the <run-dir>/evalcache default; safe to share "
            "between concurrent runs)",
        )
        p.add_argument(
            "--cache-max-mb",
            type=float,
            default=None,
            metavar="MB",
            help="size cap for the on-disk cache tier in MiB (stalest "
            "entries are evicted past the cap; default: unbounded)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="S",
            help="per-task watchdog deadline (seconds): a worker whose "
            "evaluation hangs past it is SIGKILLed and the task recorded "
            "as EVAL-TIMEOUT (default: no watchdog)",
        )
        add_surrogate_args(p)
        add_solver_arg(p)

    def add_surrogate_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--surrogate",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="surrogate-guided sweep pruning: rank candidates with a "
            "model trained on previously measured sweeps and simulate "
            "only the predicted top-k plus an exploration budget "
            "(default: REPRO_SURROGATE, else off; metrics always come "
            "from real simulation)",
        )
        p.add_argument(
            "--surrogate-topk",
            type=int,
            default=None,
            metavar="K",
            help="predicted-best candidates kept per selection sweep "
            "(default: 4)",
        )
        p.add_argument(
            "--explore",
            type=int,
            default=None,
            metavar="N",
            help="exploration budget per pruned sweep: extra seeded "
            "picks beyond the predicted top-k (default: 2)",
        )
        p.add_argument(
            "--surrogate-corpus",
            default=None,
            metavar="FILE",
            help="surrogate training-corpus JSONL (default: "
            "corpus.jsonl next to the evalcache disk tier)",
        )

    def add_solver_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--solver",
            default=None,
            choices=["auto", "dense", "sparse"],
            help="MNA linear-solver backend (default: the REPRO_SOLVER "
            "environment variable, else auto-selection by system size)",
        )

    p_opt = sub.add_parser("optimize", help="run Algorithm 1 on a primitive")
    p_opt.add_argument("primitive")
    p_opt.add_argument("--fins", type=int, default=96)
    p_opt.add_argument("--bins", type=int, default=3)
    p_opt.add_argument("--max-wires", type=int, default=5)
    add_runtime_args(p_opt)

    p_flow = sub.add_parser("flow", help="run the hierarchical flow")
    p_flow.add_argument(
        "circuit", nargs="?", default=None, choices=sorted(CIRCUITS),
        help="benchmark circuit (omit when using --netlist)",
    )
    p_flow.add_argument(
        "--netlist",
        default=None,
        metavar="FILE.SP",
        help="ingest a raw SPICE netlist and run the flow on its "
        "recognized primitives (measurement is skipped)",
    )
    p_flow.add_argument(
        "--flavor",
        default="this_work",
        choices=["this_work", "conventional", "manual"],
    )
    p_flow.add_argument("--bins", type=int, default=2)
    p_flow.add_argument("--max-wires", type=int, default=5)
    add_runtime_args(p_flow)

    p_verify = sub.add_parser(
        "verify",
        help="statically verify layouts and netlists "
        "(DRC + connectivity + ERC + constraints)",
    )
    p_verify.add_argument(
        "target",
        help="primitive name, circuit name, or 'all'",
    )
    p_verify.add_argument("--fins", type=int, default=96)
    p_verify.add_argument(
        "--variants",
        type=int,
        default=2,
        help="sizing variants to check per primitive",
    )
    p_verify.add_argument(
        "--flavor",
        default="conventional",
        choices=["this_work", "conventional", "manual"],
        help="flow flavor when verifying a circuit",
    )
    p_verify.add_argument("--max-wires", type=int, default=5)
    p_verify.add_argument(
        "--erc",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run electrical-rule checks on schematic netlists",
    )
    p_verify.add_argument(
        "--constraints",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the constraint/symmetry analyzer on layouts",
    )
    p_verify.add_argument(
        "--emag",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the static EM / IR-drop audit on layouts",
    )
    p_verify.add_argument(
        "--antenna",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the antenna-ratio / metal-density audit on layouts",
    )
    p_verify.add_argument(
        "--symmetry-geo",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the geometric symmetry-realization audit on layouts",
    )
    p_verify.add_argument(
        "--severity",
        default="error",
        choices=["error", "warning"],
        help="exit nonzero on unwaived violations at or above this "
        "severity (default: error)",
    )
    p_verify.add_argument(
        "--waivers",
        default=None,
        metavar="PATH",
        help="waiver baseline file (default: .reprolint.toml when present)",
    )
    p_verify.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report output format",
    )
    p_verify.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (alias for --severity warning)",
    )
    p_verify.add_argument(
        "--json",
        action="store_true",
        help="emit the reports as JSON (alias for --format json)",
    )
    p_verify.add_argument(
        "--verbose",
        action="store_true",
        help="print full reports even when clean",
    )
    p_verify.add_argument("--max-per-rule", type=int, default=5)

    p_ingest = sub.add_parser(
        "ingest",
        help="parse a raw SPICE netlist, recognize primitives and emit "
        "lint constraints",
    )
    p_ingest.add_argument("netlist", help="path to a .sp netlist file")
    p_ingest.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format (json is byte-deterministic)",
    )
    p_ingest.add_argument(
        "--validate",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="generate each emitted constraint spec and run the CONST "
        "checks against it",
    )
    p_ingest.add_argument(
        "--severity",
        default="error",
        choices=["error", "warning"],
        help="exit nonzero on unwaived violations at or above this "
        "severity (default: error)",
    )
    p_ingest.add_argument(
        "--waivers",
        default=None,
        metavar="PATH",
        help="waiver baseline file (default: .reprolint.toml when present)",
    )
    p_ingest.add_argument("--max-per-rule", type=int, default=5)
    p_ingest.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="accepted for interface symmetry with optimize/flow; "
        "ingestion is a deterministic single pass, so the output is "
        "identical for any value",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run single-process and print the solver-kernel profile",
    )
    p_prof.add_argument(
        "target",
        help="primitive name or circuit name",
    )
    p_prof.add_argument("--fins", type=int, default=96)
    p_prof.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="K",
        help="vectorized-sweep width (default: REPRO_BATCH, else 1)",
    )
    p_prof.add_argument("--bins", type=int, default=2)
    p_prof.add_argument("--max-wires", type=int, default=5)
    add_surrogate_args(p_prof)
    add_solver_arg(p_prof)

    p_cache = sub.add_parser(
        "cache",
        help="inspect/export the evaluation cache and surrogate corpus",
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    for action, blurb in (
        ("stats", "print disk-tier and corpus accounting as JSON"),
        ("export", "dump the surrogate corpus rows as JSON"),
    ):
        p_action = cache_sub.add_parser(action, help=blurb)
        p_action.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="evalcache disk-tier directory (its corpus.jsonl is "
            "used when --corpus is not given)",
        )
        p_action.add_argument(
            "--corpus",
            default=None,
            metavar="FILE",
            help="surrogate corpus JSONL to read",
        )
        if action == "export":
            p_action.add_argument(
                "--out",
                default=None,
                metavar="FILE",
                help="write the JSON here instead of stdout",
            )

    p_render = sub.add_parser("render", help="render a primitive layout")
    p_render.add_argument("primitive")
    p_render.add_argument("--fins", type=int, default=96)
    p_render.add_argument("--pattern", default="ABAB")
    p_render.add_argument("--outdir", default="out")

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "optimize": cmd_optimize,
        "flow": cmd_flow,
        "profile": cmd_profile,
        "render": cmd_render,
        "verify": cmd_verify,
        "ingest": cmd_ingest,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
