"""The paper's core methodology.

* :mod:`repro.core.cost` — the weighted relative-deviation cost of
  Eqs. (5)-(6),
* :mod:`repro.core.binning` — aspect-ratio binning of layout options,
* :mod:`repro.core.selection` — primitive selection (Algorithm 1 step 1),
* :mod:`repro.core.tuning` — primitive tuning (Algorithm 1 step 2),
* :mod:`repro.core.port_constraints` — per-port wire-count intervals from
  global-route parasitics (Algorithm 2 step 1),
* :mod:`repro.core.reconcile` — combining interval constraints per net
  (Algorithm 2 step 2),
* :mod:`repro.core.optimizer` — the
  :class:`~repro.core.optimizer.PrimitiveOptimizer` facade tying the steps
  together and accounting simulations (Table V).
"""

from repro.core.cost import CostBreakdown, layout_cost, metric_deviation
from repro.core.binning import bin_by_aspect_ratio
from repro.core.selection import LayoutOption, evaluate_options, select_best_per_bin
from repro.core.tuning import TuningResult, tune_option
from repro.core.port_constraints import (
    GlobalRouteInfo,
    PortConstraint,
    attach_route,
    derive_port_constraint,
)
from repro.core.reconcile import ReconciledNet, reconcile_net
from repro.core.optimizer import OptimizationReport, PrimitiveOptimizer

__all__ = [
    "CostBreakdown",
    "metric_deviation",
    "layout_cost",
    "bin_by_aspect_ratio",
    "LayoutOption",
    "evaluate_options",
    "select_best_per_bin",
    "TuningResult",
    "tune_option",
    "GlobalRouteInfo",
    "PortConstraint",
    "attach_route",
    "derive_port_constraint",
    "ReconciledNet",
    "reconcile_net",
    "OptimizationReport",
    "PrimitiveOptimizer",
]
