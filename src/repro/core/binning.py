"""Aspect-ratio binning of layout options.

"To keep the number of options manageable, we bin options of similar
layout (bounding box) aspect ratio and provide one option per bin."

Options are sorted by log aspect ratio and split at the ``n - 1`` largest
gaps, which groups genuinely similar shapes together regardless of how
the ratios are distributed (the paper's Table III has bins of size 3, 2
and 6).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from repro.errors import OptimizationError

T = TypeVar("T")


def bin_by_aspect_ratio(
    options: Sequence[T],
    n_bins: int,
    aspect_of: Callable[[T], float],
) -> list[list[T]]:
    """Split options into ``n_bins`` groups of similar aspect ratio.

    Args:
        options: The layout options.
        n_bins: Number of bins requested; capped at the number of
            distinct options.
        aspect_of: Accessor returning an option's aspect ratio.

    Returns:
        Bins ordered by increasing aspect ratio; every bin is non-empty.
    """
    if not options:
        raise OptimizationError("cannot bin an empty option list")
    if n_bins < 1:
        raise OptimizationError("n_bins must be >= 1")

    annotated = sorted(
        ((math.log(max(aspect_of(o), 1e-9)), o) for o in options),
        key=lambda pair: pair[0],
    )
    # Cap at the number of *distinct* aspect ratios, not raw options:
    # with ties, a raw-length cap would select zero-width gaps between
    # identical values as cuts and split equal-aspect options across
    # bins.
    distinct = len({value for value, _ in annotated})
    n_bins = min(n_bins, distinct)
    if n_bins == 1:
        return [[o for _, o in annotated]]

    gaps = [
        (annotated[i + 1][0] - annotated[i][0], i)
        for i in range(len(annotated) - 1)
    ]
    cut_indices = sorted(i for _gap, i in sorted(gaps, reverse=True)[: n_bins - 1])

    bins: list[list[T]] = []
    start = 0
    for cut in cut_indices:
        bins.append([o for _, o in annotated[start : cut + 1]])
        start = cut + 1
    bins.append([o for _, o in annotated[start:]])
    return [b for b in bins if b]
