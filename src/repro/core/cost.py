"""The layout cost function (paper Eqs. (5) and (6)).

``Cost = sum_i alpha_i * Delta_x_i`` where each deviation is expressed in
percent:

* when the schematic value is nonzero,
  ``Delta = |x_sch - x_layout| / x_sch * 100``;
* when the schematic value is zero (e.g. differential-pair input offset),
  the deviation is measured against a *specification* value and only the
  excess above the spec is penalized:
  ``Delta = max(0, (|x_layout| - x_spec) / x_spec) * 100``.

The second case is printed in the paper as ``max[0, |x_spec -
x_layout|/x_spec]``, which would penalize a perfect (zero-offset) layout
by 100%; Table III's zero entries for symmetric patterns show the intent
is to penalize only exceeding the spec, which is what we implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizationError


def metric_deviation(
    x_schematic: float,
    x_layout: float,
    x_spec: float | None = None,
) -> float:
    """Relative deviation of one metric, in percent (Eq. 6)."""
    if x_schematic != 0.0:
        return abs(x_schematic - x_layout) / abs(x_schematic) * 100.0
    if x_spec is None or x_spec <= 0.0:
        raise OptimizationError(
            "metric has zero schematic value but no positive spec value"
        )
    return max(0.0, (abs(x_layout) - x_spec) / x_spec) * 100.0


@dataclass
class CostBreakdown:
    """Weighted cost with per-metric detail.

    Attributes:
        deviations: Per-metric deviation in percent.
        weights: Per-metric weights alpha.
        cost: The weighted sum (Eq. 5).
    """

    deviations: dict[str, float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        return sum(
            self.weights[name] * dev for name, dev in self.deviations.items()
        )

    def __str__(self) -> str:
        parts = ", ".join(
            f"d{name}={dev:.1f}%" for name, dev in self.deviations.items()
        )
        return f"Cost={self.cost:.2f} ({parts})"


def layout_cost(
    primitive,
    layout_values: dict[str, float],
    reference: dict[str, float] | None = None,
    weight_override: dict[str, float] | None = None,
) -> CostBreakdown:
    """Cost of a layout's metric values against the schematic reference.

    Args:
        primitive: The primitive (supplies metrics, weights, spec values).
        layout_values: Metric values measured on the extracted layout.
        reference: Schematic reference values; defaults to the
            primitive's cached :meth:`schematic_reference`.
        weight_override: Optional per-metric weight replacement (used by
            the weight-ablation study and by the paper's "if dGm is
            weighted higher" discussion of Table IV).

    Returns:
        The weighted :class:`CostBreakdown`.
    """
    reference = reference if reference is not None else primitive.schematic_reference()
    breakdown = CostBreakdown()
    for metric in primitive.metrics():
        if metric.name not in layout_values:
            raise OptimizationError(
                f"{primitive.name}: missing layout value for {metric.name!r}"
            )
        x_sch = reference[metric.name]
        spec = metric.spec_value(primitive) if metric.spec_value else None
        breakdown.deviations[metric.name] = metric_deviation(
            x_sch, layout_values[metric.name], spec
        )
        weight = metric.weight
        if weight_override and metric.name in weight_override:
            weight = weight_override[metric.name]
        breakdown.weights[metric.name] = weight
    return breakdown
