"""The primitive optimizer facade (Algorithms 1 and 2 end to end).

Runs primitive selection, binning, per-bin tuning and (given global-route
information) port-constraint generation for one primitive, while keeping
the simulation accounting the paper reports in Table V: each stage's
simulations are independent, so with enough parallel SPICE licenses a
stage costs one simulation wall-time; the effective runtime is
``stages x sim_time``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.port_constraints import (
    GlobalRouteInfo,
    PortConstraint,
    derive_port_constraint,
)
from repro.core.selection import (
    LayoutOption,
    evaluate_options,
    select_best_per_bin,
)
from repro.core.tuning import TuningResult, tune_option
from repro.devices.mosfet import MosGeometry
from repro.errors import OptimizationError
from repro.runtime import (
    EvalCache,
    EvalRuntime,
    FailureLog,
    ParallelEvalRuntime,
    RetryPolicy,
    SweepJournal,
)
from repro.surrogate import SurrogateGuide, resolve_surrogate
from repro.surrogate.guide import DEFAULT_EXPLORE, DEFAULT_TOP_K
from repro.verify import verify_circuit

#: Wall time the paper attributes to one primitive simulation (seconds).
PAPER_SIM_TIME = 10.0


@dataclass
class StageCount:
    """Simulation accounting for one optimization stage."""

    name: str
    simulations: int

    @property
    def parallel_time(self) -> float:
        """Wall time with unlimited parallelism (one batch)."""
        return PAPER_SIM_TIME if self.simulations else 0.0


@dataclass
class OptimizationReport:
    """Full record of one primitive's optimization.

    Attributes:
        primitive_name: The optimized primitive.
        options: Every evaluated (sizing x pattern) option.
        selected: Best option per aspect-ratio bin (input to the placer).
        tuned: Tuning results, parallel to ``selected``.
        port_constraints: Per-net constraints from Algorithm 2 step 1.
        stages: Simulation counts per stage (Table V rows).
        failures: Absorbed evaluation failures of the run (see
            :mod:`repro.runtime`).
        cached_evaluations: Evaluations answered from a checkpoint
            journal without re-simulating (resume bookkeeping).
        cache_stats: Content-cache accounting (``hits``/``stored``)
            when an :class:`~repro.runtime.EvalCache` was active.  Only
            the order-independent fields are reported, so the stats are
            identical for any ``--jobs``.
        solver_profile: Solver-kernel profiling counters accumulated by
            the run's :class:`~repro.runtime.EvalRuntime` (see
            :meth:`repro.spice.kernel.SolverStats.as_dict`).  A
            profiling view only — wall-clock timings vary run to run and
            the dict is excluded from determinism fingerprints.
        surrogate_stats: Surrogate-guide counters
            (:meth:`repro.surrogate.SurrogateStats.as_dict`) when the
            surrogate was enabled: models trained, predictions made,
            candidates kept/pruned, corpus rows recorded, and per-reason
            full-sweep fallbacks.  Accounting only — predictions never
            reach metrics, payloads or cache values.
    """

    primitive_name: str
    options: list[LayoutOption] = field(default_factory=list)
    selected: list[LayoutOption] = field(default_factory=list)
    tuned: list[TuningResult] = field(default_factory=list)
    port_constraints: dict[str, PortConstraint] = field(default_factory=dict)
    stages: list[StageCount] = field(default_factory=list)
    failures: FailureLog = field(default_factory=FailureLog)
    cached_evaluations: int = 0
    cache_stats: dict[str, int] = field(default_factory=dict)
    solver_profile: dict = field(default_factory=dict)
    surrogate_stats: dict = field(default_factory=dict)

    @property
    def best(self) -> LayoutOption:
        """The minimum-cost tuned option."""
        if self.tuned:
            return min((t.option for t in self.tuned), key=lambda o: o.cost)
        if self.selected:
            return min(self.selected, key=lambda o: o.cost)
        detail = f" ({self.failures.summary()})" if self.failures else ""
        raise OptimizationError(
            f"report has no options{detail}", failures=self.failures
        )

    @property
    def total_simulations(self) -> int:
        return sum(stage.simulations for stage in self.stages)

    @property
    def effective_time(self) -> float:
        """Paper-style effective wall time (stages x 10s)."""
        return sum(stage.parallel_time for stage in self.stages)

    def placer_options(self) -> list[LayoutOption]:
        """The tuned options handed to the placer (one per bin)."""
        return [t.option for t in self.tuned] if self.tuned else list(self.selected)

    def summary(self) -> str:
        """Human-readable multi-line report of the optimization."""
        lines = [
            f"primitive {self.primitive_name}: "
            f"{len(self.options)} options, "
            f"{self.total_simulations} simulations, "
            f"effective {self.effective_time:.0f}s"
        ]
        for stage in self.stages:
            lines.append(f"  {stage.name}: {stage.simulations} simulations")
        for option in self.placer_options():
            lines.append(f"  -> {option.describe()}")
        for net, constraint in self.port_constraints.items():
            upper = constraint.w_max if constraint.w_max is not None else "inf"
            lines.append(
                f"  port {net}: [{constraint.w_min}, {upper}] parallel routes"
            )
        if self.failures:
            lines.append(f"  {self.failures.summary()}")
        if self.cached_evaluations:
            lines.append(
                f"  resumed: {self.cached_evaluations} evaluations from "
                f"checkpoint"
            )
        if self.cache_stats.get("hits"):
            lines.append(
                f"  cache: {self.cache_stats['hits']} evaluations answered "
                f"from content cache"
            )
        if self.surrogate_stats:
            pruned = (
                self.surrogate_stats.get("sel_pruned", 0)
                + self.surrogate_stats.get("tune_pruned", 0)
            )
            lines.append(
                f"  surrogate: {pruned} candidates pruned, "
                f"{self.surrogate_stats.get('recorded', 0)} corpus rows "
                f"recorded"
            )
        return "\n".join(lines)


class PrimitiveOptimizer:
    """Primitive-level layout optimization engine.

    Args:
        n_bins: Number of aspect-ratio bins (options given to the placer).
        max_wires: Upper bound for tuning and port-constraint sweeps.
        weight_override: Optional per-metric weight replacement (ablation
            and what-if studies).
        policy: Retry/budget policy for simulation failures (defaults to
            :class:`~repro.runtime.RetryPolicy`).
        run_dir: Directory for sweep-checkpoint journals; evaluations are
            journaled to ``<run_dir>/<primitive>.jsonl`` so a crashed
            sweep can resume.  None disables checkpointing.
        resume: Replay an existing journal instead of starting fresh.
        erc: Run electrical-rule checks on the primitive's schematic
            reference before any simulation is spent; ERC errors raise
            :class:`~repro.errors.OptimizationError` immediately (a
            broken netlist would corrupt every downstream score).
        jobs: Worker processes for batched evaluations (None reads
            ``REPRO_JOBS``, else 1).  Any value produces byte-identical
            reports; >1 adds wall-clock parallelism only.
        batch: Vectorized-sweep width — how many same-pattern variants
            one stacked solver call covers (None reads ``REPRO_BATCH``,
            else 1).  Like ``jobs``, any value is byte-identical; >1
            trades peak memory for wall-clock.  Engages only on the
            in-process path (``jobs <= 1``).
        cache: Content-addressed evaluation cache: ``True`` builds one
            (with an on-disk tier under ``<run_dir>/evalcache`` when
            checkpointing), ``False`` disables caching, or pass an
            :class:`~repro.runtime.EvalCache` to share across
            optimizers (as the flow does).
        cache_dir: Explicit disk-tier directory for the content cache
            (``--cache-dir``), overriding the ``<run_dir>/evalcache``
            default — safe to share between concurrent runs (the tier
            is checksummed and written atomically).
        cache_max_mb: Size cap in MiB for the disk tier
            (``--cache-max-mb``); stalest entries are evicted once the
            tier exceeds it.  None leaves it unbounded.
        surrogate: Surrogate-guided sweep pruning (``--surrogate``):
            rank selection candidates and truncate tuning sweeps with a
            model trained on previously measured candidates, simulating
            only the predicted top-k plus an exploration budget.  None
            reads ``REPRO_SURROGATE``, else off.  Predictions decide
            order and pruning only; all reported metrics come from real
            simulation, and decisions are deterministic for a fixed
            corpus across ``jobs``/``batch``/resume.
        surrogate_topk: Predicted-best candidates kept per selection
            sweep (``--surrogate-topk``).
        explore: Exploration budget (``--explore``): extra seeded picks
            per pruned selection sweep and extra points past a
            truncated tuning sweep's predicted stop.
        surrogate_corpus: Explicit corpus JSONL path
            (``--surrogate-corpus``), overriding the
            ``<cache-dir>/corpus.jsonl`` default; pass a dedicated path
            to decouple surrogate training from evaluation caching.
        quality_abs: Absolute cost allowance added to the per-bin
            quality threshold in
            :func:`~repro.core.selection.select_best_per_bin` (default
            keeps the historical ``5.0``).
    """

    def __init__(
        self,
        n_bins: int = 3,
        max_wires: int = 8,
        weight_override: dict[str, float] | None = None,
        policy: RetryPolicy | None = None,
        run_dir: str | os.PathLike | None = None,
        resume: bool = False,
        erc: bool = True,
        jobs: int | None = None,
        batch: int | None = None,
        cache: "bool | EvalCache" = True,
        cache_dir: str | os.PathLike | None = None,
        cache_max_mb: float | None = None,
        surrogate: bool | None = None,
        surrogate_topk: int = DEFAULT_TOP_K,
        explore: int = DEFAULT_EXPLORE,
        surrogate_corpus: str | os.PathLike | None = None,
        quality_abs: float = 5.0,
    ):
        self.n_bins = n_bins
        self.max_wires = max_wires
        self.weight_override = weight_override
        self.policy = policy
        self.run_dir = run_dir
        self.resume = resume
        self.erc = erc
        self.jobs = jobs
        self.batch = batch
        self.quality_abs = quality_abs
        if isinstance(cache, EvalCache):
            self.cache: EvalCache | None = cache
        elif cache:
            disk = (
                Path(cache_dir)
                if cache_dir is not None
                else Path(self.run_dir) / "evalcache"
                if self.run_dir is not None
                else None
            )
            max_bytes = (
                int(cache_max_mb * 1024 * 1024)
                if cache_max_mb is not None
                else None
            )
            self.cache = EvalCache(disk_dir=disk, max_disk_bytes=max_bytes)
        else:
            self.cache = None
        self.guide: SurrogateGuide | None = None
        if resolve_surrogate(surrogate):
            corpus = surrogate_corpus
            if corpus is None and self.cache is not None:
                if self.cache.disk_dir is not None:
                    corpus = self.cache.disk_dir / "corpus.jsonl"
            if corpus is None and self.run_dir is not None:
                corpus = Path(self.run_dir) / "corpus.jsonl"
            self.guide = SurrogateGuide(
                corpus_path=corpus,
                top_k=surrogate_topk,
                explore=explore,
            )

    def _runtime_for(self, primitive) -> EvalRuntime:
        journal = None
        if self.run_dir is not None:
            journal = SweepJournal(
                Path(self.run_dir) / f"{primitive.name}.jsonl",
                resume=self.resume,
            )
        return ParallelEvalRuntime(
            policy=self.policy,
            journal=journal,
            cache=self.cache,
            jobs=self.jobs,
            batch=self.batch,
        )

    def optimize(
        self,
        primitive,
        variants: list[MosGeometry] | None = None,
        patterns: list[str] | None = None,
        routes: list[GlobalRouteInfo] | None = None,
        tune: bool = True,
        runtime: EvalRuntime | None = None,
    ) -> OptimizationReport:
        """Run Algorithm 1 (and Algorithm 2 step 1 when routes given).

        Simulation failures never abort the run directly: they are
        retried, then absorbed (failed options dropped, failed tuning
        points scored ``inf``, fully-failed ports unconstrained) and
        recorded on ``report.failures``.  The only raise is
        :class:`~repro.errors.OptimizationError` when zero selection
        options survive.
        """
        owns_runtime = runtime is None
        if owns_runtime:
            runtime = self._runtime_for(primitive)
        try:
            return self._optimize(
                primitive, runtime, variants, patterns, routes, tune
            )
        finally:
            if self.guide is not None:
                # Run-boundary corpus flush (never from signal
                # handlers): a killed run leaves the corpus untouched,
                # so a resumed run trains on what the original saw.
                self.guide.flush()
            if owns_runtime and runtime.journal is not None:
                runtime.journal.close()

    def _optimize(
        self,
        primitive,
        runtime: EvalRuntime,
        variants,
        patterns,
        routes,
        tune: bool,
    ) -> OptimizationReport:
        report = OptimizationReport(
            primitive_name=primitive.name, failures=runtime.failures
        )

        # Cheap front gate: lint the schematic before spending any SPICE
        # budget.  A floating gate or rail short would not crash the
        # simulator -- it would silently corrupt every score downstream.
        if self.erc:
            self._erc_gate(primitive)

        # Stage 0: the schematic reference everything is scored against.
        # Journaled so a resumed run does not re-simulate it, and granted
        # extra retries — without it no option can be costed at all.
        self._schematic_reference(primitive, runtime)

        # Stage 1: primitive selection.
        report.options = evaluate_options(
            primitive,
            variants=variants,
            patterns=patterns,
            weight_override=self.weight_override,
            runtime=runtime,
            guide=self.guide,
            n_bins=self.n_bins,
        )
        selection_sims = sum(o.simulations for o in report.options)
        report.selected = select_best_per_bin(
            report.options, self.n_bins, quality_abs=self.quality_abs
        )
        report.stages.append(StageCount("selection", selection_sims))

        # Stage 2: primitive tuning.
        if tune:
            tuning_sims = 0
            for option in report.selected:
                result = tune_option(
                    primitive,
                    option,
                    max_wires=self.max_wires,
                    weight_override=self.weight_override,
                    runtime=runtime,
                    guide=self.guide,
                )
                tuning_sims += result.simulations
                report.tuned.append(result)
            report.stages.append(StageCount("tuning", tuning_sims))

        # Stage 3: port constraints (Algorithm 2 step 1).
        if routes:
            dut = self._best_circuit(primitive, report)
            port_sims = 0
            for route in routes:
                constraint, sims = derive_port_constraint(
                    primitive,
                    dut,
                    route,
                    max_wires=self.max_wires,
                    weight_override=self.weight_override,
                    runtime=runtime,
                )
                port_sims += sims
                report.port_constraints[route.net] = constraint
            report.stages.append(StageCount("port_constraints", port_sims))

        report.cached_evaluations = runtime.cache_hits
        if runtime.cache is not None:
            # Only the order-independent fields: misses diverge between
            # worker counts when failed evaluations probe the cache.
            report.cache_stats = {
                "hits": runtime.cache.stats.hits,
                "stored": runtime.cache.stats.stored,
            }
            # Surface a disk-tier downgrade (ENOSPC, permissions,
            # corruption of the directory itself) on the report's
            # failure ledger — once, with the first cause.
            if runtime.cache.downgrade_reason is not None:
                report.failures.mark_downgrade(runtime.cache.downgrade_reason)
        if runtime.solver_stats:
            report.solver_profile = runtime.solver_stats.as_dict()
        if self.guide is not None:
            report.surrogate_stats = self.guide.stats.as_dict()
        return report

    def _erc_gate(self, primitive) -> None:
        """Fail fast on electrical-rule errors in the schematic reference."""
        erc_report = verify_circuit(primitive.schematic_circuit())
        if erc_report.errors:
            details = "; ".join(v.render() for v in erc_report.errors)
            raise OptimizationError(
                f"{primitive.name}: schematic failed ERC before "
                f"optimization: {details}"
            )

    def _schematic_reference(self, primitive, runtime: EvalRuntime) -> None:
        """Evaluate (or restore) the primitive's schematic reference."""
        policy = runtime.policy
        ref = runtime.evaluate(
            f"ref:{primitive.name}",
            lambda: primitive.schematic_reference(),
            stage="reference",
            to_payload=lambda values: {
                "values": dict(values),
                "simulations": primitive._reference_sims,
            },
            from_payload=lambda payload: payload,
            retries=max(policy.max_retries, 3),
        )
        if ref is None:
            raise OptimizationError(
                f"{primitive.name}: schematic reference evaluation failed "
                f"({runtime.failures.summary()})",
                failures=runtime.failures,
            )
        if isinstance(ref, dict) and "values" in ref:
            primitive.set_schematic_reference(
                ref["values"], int(ref.get("simulations", 0))
            )

    def _best_circuit(self, primitive, report: OptimizationReport):
        best = report.best
        layout = primitive.generate(
            best.base, best.pattern, best.wires, verify=False
        )
        return primitive.extract(layout, best.base).build_circuit()
