"""Primitive port constraints — Algorithm 2, step 1.

After placement and global routing, each primitive knows the distance,
layer and via usage of the global route at each of its ports.  The
primitive attaches the route's RC (scaled by the number of parallel
routes) to its extracted netlist, re-runs its metric testbenches over a
range of parallel-route counts, and derives the interval
``[w_min, w_max]``: ``w_min`` is the point of maximum curvature of the
cost curve and ``w_max`` the point where cost starts increasing (or
unbounded if it never does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from repro.core.cost import layout_cost
from repro.core.tuning import SweepPoint
from repro.errors import OptimizationError
from repro.runtime import BatchTask, EvalRuntime
from repro.runtime.evalcache import EvalCache, evaluate_circuit_cached
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology


@dataclass(frozen=True)
class GlobalRouteInfo:
    """Global-route parasitics at one primitive port.

    Attributes:
        net: The net name at the primitive port.
        layer: Metal layer of the global route (e.g. ``"M3"``).
        length_nm: Route length in nm.
        via_cuts: Via cuts per parallel route (stack from the port layer).
        via_resistance: Resistance of one via stack (ohm).
        symmetric_with: Port nets that receive an identical route copy
            (the detailed router keeps matched nets symmetric, so a DP's
            two drain routes are always sized and loaded together).
    """

    net: str
    layer: str
    length_nm: float
    via_cuts: int = 1
    via_resistance: float = 0.0
    symmetric_with: tuple[str, ...] = ()


def route_rc(
    route: GlobalRouteInfo, tech: Technology, n_wires: int
) -> tuple[float, float]:
    """(R, C) of ``n_wires`` parallel copies of the global route.

    Global routes use double-width wires (analog routers widen long
    inter-block nets; the *number* of parallel copies stays the tuning
    variable, per the paper's gridded-rule argument).
    """
    if n_wires < 1:
        raise OptimizationError("n_wires must be >= 1")
    layer = tech.stack.metal(route.layer)
    width = 2 * layer.min_width
    r_single = layer.wire_resistance(route.length_nm, width) + (
        route.via_resistance / max(1, route.via_cuts)
    )
    c_single = layer.wire_capacitance(route.length_nm, width)
    return r_single / n_wires, c_single * n_wires


def attach_route(
    dut: Circuit,
    route: GlobalRouteInfo,
    tech: Technology,
    n_wires: int,
) -> Circuit:
    """Wrap a DUT netlist with the external route RC on one port.

    The DUT's port net (and any symmetric partners) is renamed
    internally; the wrapped circuit exposes the same port names, so every
    metric testbench applies unchanged.
    """
    nets = (route.net,) + route.symmetric_with
    for net in nets:
        if net not in dut.ports:
            raise OptimizationError(f"net {net!r} is not a port of {dut.name!r}")
    r, c = route_rc(route, tech, n_wires)
    wrapped = Circuit(f"{dut.name}_route_{route.net}_{n_wires}")
    wrapped.ports = list(dut.ports)
    port_map = {
        p: (f"{p}__cell" if p in nets else p) for p in dut.ports
    }
    wrapped.instantiate(dut, "cell", port_map)
    for net in nets:
        inner = f"{net}__cell"
        wrapped.add_resistor(f"r_route_{net}", net, inner, max(r, 1e-3))
        # Route capacitance split between the two ends (pi model).
        if c > 0:
            wrapped.add_capacitor(f"c_route_{net}_a", net, "0", c / 2.0)
            wrapped.add_capacitor(f"c_route_{net}_b", inner, "0", c / 2.0)
    return wrapped


@dataclass
class PortConstraint:
    """The wire-count interval a primitive derives for one net.

    Attributes:
        primitive_name: Owning primitive.
        net: Net name (top-level).
        w_min: Lower bound (point of maximum curvature).
        w_max: Upper bound (cost starts increasing), or None if unbounded
            over the explored range.
        sweep: Cost at each explored wire count.
    """

    primitive_name: str
    net: str
    w_min: int
    w_max: int | None
    sweep: list[SweepPoint] = field(default_factory=list)

    def cost_at(self, wires: int) -> float:
        """Cost at a wire count (must be inside the explored sweep)."""
        for point in self.sweep:
            if point.wires == wires:
                return point.cost
        raise OptimizationError(
            f"{self.primitive_name}/{self.net}: wire count {wires} not explored"
        )

    @property
    def explored_max(self) -> int:
        return self.sweep[-1].wires if self.sweep else 0


def _point_from_payload(payload: dict) -> dict:
    point = {
        "values": {k: float(v) for k, v in payload["values"].items()},
        "cost": float(payload["cost"]),
        "simulations": int(payload.get("simulations", 0)),
    }
    if payload.get("cache_key") is not None:
        point["cache_key"] = payload["cache_key"]
    return point


def _point_error(point: dict) -> str | None:
    finite = all(math.isfinite(v) for v in point["values"].values())
    if finite and math.isfinite(point["cost"]):
        return None
    return "non-finite port-sweep metrics"


def route_point_task(
    primitive,
    dut: Circuit,
    route: GlobalRouteInfo,
    n: int,
    weight_override: dict[str, float] | None = None,
    cache: EvalCache | None = None,
    key_prefix: str = "port",
) -> BatchTask:
    """The :class:`~repro.runtime.BatchTask` costing one (port, wire
    count) point.

    Used by the port sweep (``key_prefix="port"``) and by the flow's
    reconcile gap re-simulations (``key_prefix="recon"``), so both fan
    out identically and share content-cache entries for identical
    wrapped netlists.
    """

    def thunk() -> dict:
        wrapped = attach_route(dut, route, primitive.tech, n)
        values, sims, cache_key = evaluate_circuit_cached(
            primitive, wrapped, cache, weight_override
        )
        breakdown = layout_cost(
            primitive, values, weight_override=weight_override
        )
        payload = {
            "values": dict(values),
            "cost": breakdown.cost,
            "simulations": sims,
        }
        if cache_key is not None:
            payload["cache_key"] = cache_key
        return payload

    return BatchTask(
        key=f"{key_prefix}:{primitive.name}:{route.net}:{n}",
        thunk=thunk,
        validate=_point_error,
        to_payload=lambda point: point,
        from_payload=_point_from_payload,
    )


def derive_port_constraint(
    primitive,
    dut: Circuit,
    route: GlobalRouteInfo,
    max_wires: int = 8,
    weight_override: dict[str, float] | None = None,
    runtime: EvalRuntime | None = None,
) -> tuple[PortConstraint, int]:
    """Sweep parallel routes at one port and derive ``[w_min, w_max]``.

    Returns the constraint and the number of simulations used.

    Failed sweep points are absorbed (recorded on ``runtime.failures``)
    and excluded from the curve; when *every* point fails, the port
    degrades to the unconstrained default ``[1, inf)`` so the flow can
    proceed with a single route.
    """
    runtime = runtime if runtime is not None else EvalRuntime()
    sweep: list[SweepPoint] = []
    simulations = 0

    tasks = [
        route_point_task(
            primitive, dut, route, n, weight_override, cache=runtime.cache
        )
        for n in range(1, max_wires + 1)
    ]
    batch = runtime.evaluate_batch(tasks, stage="port_constraints")
    for index, n in enumerate(range(1, max_wires + 1)):
        point = batch.consume(index)
        if point is None:
            continue
        simulations += point["simulations"]
        sweep.append(SweepPoint(n, point["cost"], point["values"]))

    if not sweep:
        # Every point failed: degrade to the unconstrained default so the
        # flow can still route the net with one wire.
        return (
            PortConstraint(
                primitive_name=primitive.name,
                net=route.net,
                w_min=1,
                w_max=None,
                sweep=[],
            ),
            simulations,
        )

    costs = [p.cost for p in sweep]
    w_max: int | None = None
    best = min(range(len(costs)), key=lambda i: costs[i])
    if best != len(costs) - 1:
        w_max = sweep[best].wires

    # w_min: point of maximum curvature of the (initially decreasing)
    # curve; fall back to the minimum for short sweeps.
    if len(costs) >= 3:
        curvature = [
            costs[i - 1] - 2.0 * costs[i] + costs[i + 1]
            for i in range(1, len(costs) - 1)
        ]
        k = max(range(len(curvature)), key=lambda i: curvature[i])
        w_min = sweep[k + 1].wires
    else:
        w_min = sweep[best].wires
    if w_max is not None and w_min > w_max:
        w_min = w_max

    return (
        PortConstraint(
            primitive_name=primitive.name,
            net=route.net,
            w_min=w_min,
            w_max=w_max,
            sweep=sweep,
        ),
        simulations,
    )
