"""Port-constraint reconciliation — Algorithm 2, step 2.

Several primitives may constrain the same net.  When the interval
constraints overlap, the smallest wire count inside the overlap —
``max(w_min_i)`` — is chosen for low routing congestion.  When they do
not overlap, the gap range ``[min(w_max_i), max(w_min_i)]`` is
re-simulated for all constraining primitives and the count minimizing the
summed cost wins.  When *every* gap point fails (all costs ``inf``), the
reconciliation falls back to ``max(w_min_i)`` — the congestion-friendly
choice the overlap path would have made — and records the degradation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.port_constraints import PortConstraint
from repro.errors import OptimizationError
from repro.runtime.failures import BAD_METRIC, EvalFailure, FailureLog


@dataclass
class ReconciledNet:
    """Outcome of reconciling one net's constraints.

    Attributes:
        net: Net name.
        wires: Chosen number of parallel routes.
        overlapped: Whether the constraint intervals overlapped.
        constraints: The input constraints.
        extra_simulations: Simulations spent resolving a non-overlap.
        gap_costs: Total cost per candidate wire count (non-overlap case).
        reason: How ``wires`` was chosen — ``"overlap"`` (intersection of
            the intervals), ``"gap-min"`` (minimum summed cost over the
            gap range) or ``"gap-failed"`` (every gap point failed; fell
            back to ``max(w_min)``).
    """

    net: str
    wires: int
    overlapped: bool
    constraints: list[PortConstraint]
    extra_simulations: int = 0
    gap_costs: dict[int, float] = field(default_factory=dict)
    reason: str = "overlap"


def intervals_overlap(constraints: list[PortConstraint]) -> bool:
    """True if all ``[w_min, w_max]`` intervals share a common point."""
    lo = max(c.w_min for c in constraints)
    hi = min(
        (c.w_max for c in constraints if c.w_max is not None),
        default=None,
    )
    return hi is None or lo <= hi


def gap_range(constraints: list[PortConstraint]) -> tuple[int, int]:
    """The inclusive wire-count range searched in the non-overlap case."""
    bounded_maxima = [c.w_max for c in constraints if c.w_max is not None]
    lo = min(bounded_maxima)
    hi = max(c.w_min for c in constraints)
    if lo > hi:
        lo, hi = hi, lo
    return lo, hi


def reconcile_net(
    net: str,
    constraints: list[PortConstraint],
    cost_at: Callable[[PortConstraint, int], float] | None = None,
    failures: FailureLog | None = None,
) -> ReconciledNet:
    """Combine the interval constraints of all primitives on one net.

    Args:
        net: Net name (for reporting).
        constraints: One constraint per primitive touching the net.
        cost_at: Optional ``(constraint, wires) -> cost`` evaluator for
            the non-overlap case; defaults to reading the constraint's
            recorded sweep (counts as "further simulations" — the caller
            may substitute fresh simulations for wire counts outside the
            explored range).
        failures: Optional :class:`~repro.runtime.failures.FailureLog`;
            a fully-failed gap search records its degradation here.

    Returns:
        The chosen wire count with bookkeeping.
    """
    if not constraints:
        raise OptimizationError(f"net {net!r}: no constraints to reconcile")

    if intervals_overlap(constraints):
        return ReconciledNet(
            net=net,
            wires=max(c.w_min for c in constraints),
            overlapped=True,
            constraints=list(constraints),
            reason="overlap",
        )

    # Non-overlap: search the gap between the most constrained bounds.
    lo, hi = gap_range(constraints)

    def journaled_cost(c: PortConstraint, w: int) -> float:
        # A failed sweep point leaves a gap in the explored range; score
        # it inf so the gap search simply avoids it instead of aborting
        # the whole reconciliation.
        try:
            return c.cost_at(w)
        except OptimizationError:
            return float("inf")

    evaluator = cost_at or journaled_cost
    gap_costs: dict[int, float] = {}
    extra = 0
    for wires in range(lo, hi + 1):
        total = 0.0
        for constraint in constraints:
            total += evaluator(constraint, wires)
            extra += 1
        gap_costs[wires] = total

    if all(not math.isfinite(cost) for cost in gap_costs.values()):
        # Every gap point failed: min() would silently pick an arbitrary
        # failed count (the first key).  Fall back to max(w_min) — the
        # choice the overlap path would make — and record why.
        fallback = max(c.w_min for c in constraints)
        if failures is not None:
            failures.record(
                EvalFailure(
                    code=BAD_METRIC,
                    stage="reconcile",
                    key=f"reconcile:{net}",
                    message=(
                        f"net {net!r}: every gap point in [{lo}, {hi}] "
                        f"scored non-finite; fell back to max(w_min)="
                        f"{fallback}"
                    ),
                )
            )
        return ReconciledNet(
            net=net,
            wires=fallback,
            overlapped=False,
            constraints=list(constraints),
            extra_simulations=extra,
            gap_costs=gap_costs,
            reason="gap-failed",
        )

    chosen = min(gap_costs, key=gap_costs.get)
    return ReconciledNet(
        net=net,
        wires=chosen,
        overlapped=False,
        constraints=list(constraints),
        extra_simulations=extra,
        gap_costs=gap_costs,
        reason="gap-min",
    )
