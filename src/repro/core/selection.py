"""Primitive selection — Algorithm 1, step 1.

For every (nfin, nf, m) factorization and placement pattern, generate the
layout, extract it (wire parasitics + LDEs + diffusion sharing), run the
primitive's metric testbenches on the extracted netlist, and score the
weighted deviation cost.  Options are then binned by bounding-box aspect
ratio and the cheapest option per bin is handed to the placer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cellgen.generator import WireConfig
from repro.cellgen.patterns import available_patterns
from repro.core.binning import bin_by_aspect_ratio
from repro.core.cost import CostBreakdown, layout_cost
from repro.devices.mosfet import MosGeometry
from repro.errors import LayoutError, OptimizationError
from repro.geometry.layout import Layout
from repro.runtime import BatchSpec, BatchTask, EvalRuntime
from repro.runtime.evalcache import EvalCache, evaluate_circuit_cached
from repro.surrogate import SelectionCandidate, SurrogateGuide, option_features


@dataclass
class LayoutOption:
    """One evaluated primitive layout candidate.

    Attributes:
        base: The unit-device sizing (nfin, nf, m).
        pattern: Placement pattern name.
        layout: The generated layout.
        values: Measured metric values on the extracted netlist.
        breakdown: Weighted cost breakdown.
        simulations: Number of simulations spent evaluating this option
            (0 when the content cache answered the evaluation).
        wires: The wire configuration used (tuning updates this).
        cache_key: Content key of the evaluation in the
            :class:`~repro.runtime.evalcache.EvalCache` (None when no
            cache was in play).
    """

    base: MosGeometry
    pattern: str
    layout: Layout
    values: dict[str, float]
    breakdown: CostBreakdown
    simulations: int
    wires: WireConfig = field(default_factory=WireConfig)
    cache_key: str | None = None

    @property
    def cost(self) -> float:
        return self.breakdown.cost

    @property
    def aspect_ratio(self) -> float:
        return self.layout.aspect_ratio

    def describe(self) -> str:
        g = self.base
        return (
            f"nfin={g.nfin} nf={g.nf} m={g.m} {self.pattern} "
            f"AR={self.aspect_ratio:.2f} cost={self.cost:.2f}"
        )


def wires_tag(wires: WireConfig | None) -> str:
    """Stable serialization of a wire configuration for evaluation keys."""
    if wires is None or (not wires.parallel and not wires.dummies):
        return "-"
    parts = ",".join(f"{net}={n}" for net, n in sorted(wires.parallel.items()))
    return (parts or "-") + ("+dummies" if wires.dummies else "")


def option_key(
    stage_tag: str, base: MosGeometry, pattern: str, wires: WireConfig | None
) -> str:
    """Stable journal/injection key for one (sizing, pattern, wires) option."""
    return (
        f"{stage_tag}:{base.nfin}x{base.nf}x{base.m}:{pattern}:{wires_tag(wires)}"
    )


def option_error(option: LayoutOption) -> str | None:
    """BAD-METRIC validator: non-None when an option's numbers are poisoned."""
    bad = sorted(
        name
        for name, value in option.values.items()
        if not math.isfinite(value)
    )
    if bad:
        return f"non-finite metric values: {', '.join(bad)}"
    if not math.isfinite(option.cost):
        return f"non-finite cost {option.cost!r}"
    return None


def option_payload(option: LayoutOption) -> dict:
    """Journal payload of a completed option evaluation (values only —
    the layout regenerates deterministically without simulation)."""
    payload = {"values": dict(option.values), "simulations": option.simulations}
    if option.cache_key is not None:
        payload["cache_key"] = option.cache_key
    return payload


def restore_option(
    primitive,
    payload: dict,
    base: MosGeometry,
    pattern: str,
    wires: WireConfig,
    weight_override: dict[str, float] | None,
) -> LayoutOption:
    """Rebuild a journaled option without re-running its testbenches."""
    layout = primitive.generate(base, pattern, wires, verify=False)
    values = {name: float(v) for name, v in payload["values"].items()}
    breakdown = layout_cost(primitive, values, weight_override=weight_override)
    return LayoutOption(
        base=base,
        pattern=pattern,
        layout=layout,
        values=values,
        breakdown=breakdown,
        simulations=int(payload.get("simulations", 0)),
        wires=wires,
        cache_key=payload.get("cache_key"),
    )


def evaluate_option(
    primitive,
    base: MosGeometry,
    pattern: str,
    wires: WireConfig | None = None,
    weight_override: dict[str, float] | None = None,
    cache: "EvalCache | None" = None,
) -> LayoutOption:
    """Generate, extract and score a single layout option."""
    wires = wires or WireConfig()
    # Sweep evaluations skip per-variant verification (the optimizer
    # verifies the options it emits, not every scored candidate).
    layout = primitive.generate(base, pattern, wires, verify=False)
    circuit = primitive.extract(layout, base).build_circuit()
    values, sims, cache_key = evaluate_circuit_cached(
        primitive, circuit, cache, weight_override
    )
    breakdown = layout_cost(primitive, values, weight_override=weight_override)
    return LayoutOption(
        base=base,
        pattern=pattern,
        layout=layout,
        values=values,
        breakdown=breakdown,
        simulations=sims,
        wires=wires,
        cache_key=cache_key,
    )


def option_task(
    stage_tag: str,
    primitive,
    base: MosGeometry,
    pattern: str,
    wires: WireConfig,
    weight_override: dict[str, float] | None,
    cache: EvalCache | None = None,
    absorb: tuple[type, ...] = (),
) -> BatchTask:
    """The :class:`~repro.runtime.BatchTask` evaluating one layout option.

    Shared by the selection sweep and the tuning sweeps so both fan out
    through the same batch machinery with identical keys and payloads.
    The attached :class:`~repro.runtime.BatchSpec` decomposes the
    evaluation for the ``--batch`` fast path: ``build`` is the layout →
    extract → netlist pipeline, ``finish`` reassembles the
    :class:`LayoutOption` from measured values exactly as
    :func:`evaluate_option` would.
    """

    def build():
        layout = primitive.generate(base, pattern, wires, verify=False)
        circuit = primitive.extract(layout, base).build_circuit()
        return circuit, layout

    def finish(layout, values, simulations, cache_key):
        breakdown = layout_cost(
            primitive, values, weight_override=weight_override
        )
        return LayoutOption(
            base=base,
            pattern=pattern,
            layout=layout,
            values=values,
            breakdown=breakdown,
            simulations=simulations,
            wires=wires,
            cache_key=cache_key,
        )

    return BatchTask(
        key=option_key(stage_tag, base, pattern, wires),
        thunk=lambda: evaluate_option(
            primitive, base, pattern, wires, weight_override, cache=cache
        ),
        validate=option_error,
        to_payload=option_payload,
        from_payload=lambda payload: restore_option(
            primitive, payload, base, pattern, wires, weight_override
        ),
        absorb=absorb,
        batch_spec=BatchSpec(
            primitive=primitive,
            build=build,
            finish=finish,
            weight_override=weight_override,
        ),
    )


def _plan_selection(
    primitive,
    tasks: list[BatchTask],
    metas: list[tuple[MosGeometry, str]],
    wires: WireConfig,
    weight_override: dict[str, float] | None,
    guide: SurrogateGuide,
    family: str,
    runtime: EvalRuntime,
    n_bins: int,
) -> list[int]:
    """Surrogate pruning plan for a selection sweep: kept task indices.

    Builds simulation-free feature vectors (one cheap layout generation
    per candidate, no extraction/SPICE), bins candidates by aspect ratio
    over the *full* sweep, and asks the guide which to keep.  Pruned
    candidates are journaled as ``pruned`` before anything dispatches,
    so a crash mid-sweep resumes to the identical plan.
    """
    journal = runtime.journal
    candidates: list[SelectionCandidate] = []
    aspects: dict[int, float] = {}
    for index, (task, (base, pattern)) in enumerate(zip(tasks, metas)):
        journaled = None
        if journal is not None:
            if journal.lookup(task.key) is not None:
                journaled = "done"
            elif journal.is_pruned(task.key):
                journaled = "pruned"
        try:
            layout = primitive.generate(base, pattern, wires, verify=False)
            features = option_features(
                primitive, base, pattern, wires, layout=layout
            )
            aspects[index] = layout.aspect_ratio
        except LayoutError:
            features = None
        candidates.append(
            SelectionCandidate(
                index=index,
                key=task.key,
                features=features,
                journaled=journaled,
            )
        )
    if aspects:
        groups = bin_by_aspect_ratio(
            sorted(aspects), n_bins, lambda i: aspects[i]
        )
        for bin_index, group in enumerate(groups):
            for index in group:
                candidates[index].bin_index = bin_index
    keep, pruned = guide.prune_selection(family, candidates)
    if journal is not None:
        for index in sorted(pruned):
            journal.record_pruned(tasks[index].key)
    return sorted(keep)


def evaluate_options(
    primitive,
    variants: list[MosGeometry] | None = None,
    patterns: list[str] | None = None,
    wires: WireConfig | None = None,
    weight_override: dict[str, float] | None = None,
    runtime: EvalRuntime | None = None,
    guide: SurrogateGuide | None = None,
    n_bins: int = 3,
) -> list[LayoutOption]:
    """Evaluate all requested (sizing x pattern) layout options.

    ``variants`` defaults to every (nfin, nf, m) factorization of the
    primitive's fin budget; ``patterns`` defaults to every pattern
    feasible for the matched group at each multiplicity.  Infeasible
    combinations are skipped silently (e.g. ABBA at odd ratioed counts).

    Simulation failures (non-convergence, singular systems, NaN metrics,
    deadline overruns) are absorbed by the ``runtime``: the failed option
    is dropped from the sweep and recorded on ``runtime.failures``.  The
    sweep raises only when *zero* options survive.

    With a :class:`~repro.surrogate.SurrogateGuide` (``guide``), the
    sweep is pruned to the predicted top-k plus the predicted-best of
    each of the ``n_bins`` aspect bins plus an exploration draw; pruned
    candidates are journaled as ``pruned`` and never simulated.  Every
    surviving evaluation is recorded to the guide's corpus with its
    *measured* cost.
    """
    runtime = runtime if runtime is not None else EvalRuntime()
    variants = variants if variants is not None else primitive.variants()
    options: list[LayoutOption] = []
    matched = list(primitive.matched_group())
    tasks: list[BatchTask] = []
    metas: list[tuple[MosGeometry, str]] = []
    sweep_wires = wires or WireConfig()
    for base in variants:
        if patterns is None:
            counts = {
                t.name: base.m * t.m_ratio
                for t in primitive.templates()
                if t.name in matched
            }
            todo = available_patterns(matched, counts)
        else:
            todo = patterns
        for pattern in todo:
            metas.append((base, pattern))
            tasks.append(
                option_task(
                    "sel",
                    primitive,
                    base,
                    pattern,
                    sweep_wires,
                    weight_override,
                    cache=runtime.cache,
                    absorb=(LayoutError,),
                )
            )
    family = None
    if guide is not None:
        family = guide.family(primitive, weight_override)
        journal = runtime.journal
        has_pruned = journal is not None and any(
            journal.is_pruned(t.key) for t in tasks
        )
        if guide.ready(family, "sel") or has_pruned:
            keep = _plan_selection(
                primitive, tasks, metas, sweep_wires, weight_override,
                guide, family, runtime, n_bins,
            )
            tasks = [tasks[i] for i in keep]
            metas = [metas[i] for i in keep]
        else:
            guide.stats.fallback("corpus-too-small")
    batch = runtime.evaluate_batch(tasks, stage="selection")
    for index in range(len(tasks)):
        try:
            option = batch.consume(index)
        except LayoutError:
            continue
        if option is not None:
            options.append(option)
            if guide is not None and family is not None:
                guide.record(
                    family,
                    "sel",
                    tasks[index].key,
                    option_features(
                        primitive,
                        option.base,
                        option.pattern,
                        option.wires,
                        layout=option.layout,
                    ),
                    option.cost,
                )
    if not options:
        raise OptimizationError(
            f"{primitive.name}: no feasible layout options "
            f"({runtime.failures.summary()})",
            failures=runtime.failures,
        )
    return options


def select_best_per_bin(
    options: list[LayoutOption],
    n_bins: int = 3,
    quality_factor: float = 1.5,
    quality_abs: float = 5.0,
) -> list[LayoutOption]:
    """Bin options by aspect ratio and keep the cheapest of each bin.

    Every option handed to the placer must be *usable*: a bin whose best
    still costs more than ``quality_factor`` times the global best plus
    the ``quality_abs`` absolute allowance is dropped — the placer
    optimizes area and wirelength and must be free to pick any offered
    option without wrecking performance.  The global best always
    survives.  Benchmarks tighten ``quality_abs`` to compare selection
    strategies at a fixed quality bar; the default keeps the historical
    allowance.
    """
    bins = bin_by_aspect_ratio(options, n_bins, lambda o: o.aspect_ratio)
    winners = [min(group, key=lambda o: o.cost) for group in bins]
    best_cost = min(o.cost for o in winners)
    threshold = quality_factor * best_cost + quality_abs
    kept = [o for o in winners if o.cost <= threshold]
    return kept
