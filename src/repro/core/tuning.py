"""Primitive tuning — Algorithm 1, step 2.

For each selected layout, parallel wires are added at the tuning
terminals (Table II) and the cost re-measured: "We start with adding a
single wire, and continue until the performance is closest to the
schematic (minimum cost), or at the point of maximum curvature for a
monotonically decreasing cost curve."

Uncorrelated terminals are optimized separately; correlated terminals are
enumerated jointly (the paper notes more than two correlated terminals is
uncommon, so the joint grid stays small).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product

from repro.cellgen.generator import WireConfig
from repro.core.selection import LayoutOption, option_key, option_task
from repro.errors import LayoutError, OptimizationError
from repro.runtime import EvalRuntime
from repro.surrogate import SurrogateGuide, option_features

#: Wire-range points dispatched per batch: the early-stop break usually
#: fires within three points, so dispatching the whole range up front
#: would make eager runtimes (``--batch``, worker pools) simulate past
#: the stop.  Chunked dispatch keeps journal keys, consume order and
#: chosen wires identical while never evaluating unconsumed points.
TUNE_CHUNK = 3


@dataclass
class SweepPoint:
    """Cost at one wire count during a terminal sweep."""

    wires: int
    cost: float
    values: dict[str, float]


@dataclass
class TerminalSweep:
    """Sweep record for one tuning terminal (or correlated group)."""

    terminal: str
    points: list[SweepPoint] = field(default_factory=list)
    chosen: int = 1
    stopped_by: str = "exhausted"

    @property
    def costs(self) -> list[float]:
        return [p.cost for p in self.points]


@dataclass
class TuningResult:
    """Outcome of tuning one layout option.

    Attributes:
        option: The final (tuned) layout option.
        sweeps: Per-terminal sweep records.
        simulations: Simulations spent during tuning.
    """

    option: LayoutOption
    sweeps: list[TerminalSweep]
    simulations: int


def choose_stop_point(costs: list[float]) -> tuple[int, str]:
    """Pick the index of the chosen wire count from a cost curve.

    Returns (index, reason); reason is ``"minimum"`` when the curve turns
    upward, ``"curvature"`` when it decreases monotonically and the point
    of maximum (most positive) discrete curvature is used, or
    ``"exhausted"`` for short curves.
    """
    if not costs:
        raise OptimizationError("empty cost curve")
    finite = [i for i in range(len(costs)) if math.isfinite(costs[i])]
    if not finite:
        raise OptimizationError("every point of the cost curve failed")
    if len(finite) < len(costs):
        # Failed (inf-scored) points break the curve shape; settle for
        # the cheapest surviving point rather than reading curvature
        # through the gaps.
        return (min(finite, key=lambda i: costs[i]), "failed-points")
    if len(costs) < 3:
        return (min(range(len(costs)), key=lambda i: costs[i]), "exhausted")
    best = min(range(len(costs)), key=lambda i: costs[i])
    if best != len(costs) - 1:
        return best, "minimum"
    # Monotone decreasing: maximum curvature (second difference).
    curvature = [
        costs[i - 1] - 2.0 * costs[i] + costs[i + 1]
        for i in range(1, len(costs) - 1)
    ]
    k = max(range(len(curvature)), key=lambda i: curvature[i])
    return k + 1, "curvature"


def _terminal_groups(primitive) -> list[list]:
    """Group tuning terminals: singletons plus correlated clusters."""
    terminals = primitive.tuning_terminals()
    by_name = {t.name: t for t in terminals}
    seen: set[str] = set()
    groups: list[list] = []
    for terminal in terminals:
        if terminal.name in seen:
            continue
        cluster = [terminal]
        seen.add(terminal.name)
        stack = list(terminal.correlated_with)
        while stack:
            other_name = stack.pop()
            if other_name in seen or other_name not in by_name:
                continue
            other = by_name[other_name]
            cluster.append(other)
            seen.add(other_name)
            stack.extend(other.correlated_with)
        groups.append(cluster)
    return groups


def _untuned_straps(wires: WireConfig, group) -> int:
    """The wire count a failed sweep falls back to: the untuned strap
    count of the group's first connected net (1 for a terminal that
    touches no nets at all, e.g. a placeholder terminal)."""
    for terminal in group:
        if terminal.nets:
            return wires.straps(terminal.nets[0])
    return 1


def _with_counts(wires: WireConfig, terminals, counts) -> WireConfig:
    updated = wires
    for terminal, count in zip(terminals, counts):
        for net in terminal.nets:
            updated = updated.with_straps(net, count)
    return updated


def _sweep_prefix(
    primitive,
    option: LayoutOption,
    wires: WireConfig,
    group,
    limit: int,
    weight_override: dict[str, float] | None,
    runtime: EvalRuntime,
    guide: SurrogateGuide | None,
) -> int:
    """How many leading wire counts of a singleton sweep to evaluate.

    Journal decisions win: a journaled pruned tail pins the prefix a
    previous run chose (so resume repeats it even after the corpus
    grew).  Otherwise the surrogate predicts the sweep's cost curve and
    truncates at the predicted minimum plus the exploration margin; the
    pruned tail is journaled as ``pruned`` before anything dispatches.
    Without a usable model the full ``limit`` is kept.
    """
    if guide is None:
        # Surrogate off: the full sweep runs even over a journal holding
        # pruning decisions from an earlier surrogate run (pruned
        # entries read as not-completed and are simply re-evaluated).
        return limit
    journal = runtime.journal
    keys = [
        option_key(
            "tune", option.base, option.pattern,
            _with_counts(wires, group, (count,)),
        )
        for count in range(1, limit + 1)
    ]
    if journal is not None:
        pruned_counts = [
            count
            for count, key in zip(range(1, limit + 1), keys)
            if journal.is_pruned(key)
        ]
        if pruned_counts:
            return min(pruned_counts) - 1
    family = guide.family(primitive, weight_override)
    if not guide.ready(family, "tune"):
        guide.stats.fallback("corpus-too-small")
        return limit
    features: list[list[float] | None] = []
    for count in range(1, limit + 1):
        candidate = _with_counts(wires, group, (count,))
        try:
            features.append(
                option_features(
                    primitive, option.base, option.pattern, candidate
                )
            )
        except LayoutError:
            features.append(None)
    keep = guide.plan_prefix(family, features, limit)
    if journal is not None:
        for key in keys[keep:]:
            journal.record_pruned(key)
    return keep


def tune_option(
    primitive,
    option: LayoutOption,
    max_wires: int = 8,
    weight_override: dict[str, float] | None = None,
    runtime: EvalRuntime | None = None,
    guide: SurrogateGuide | None = None,
) -> TuningResult:
    """Tune one selected layout option (Algorithm 1, lines 8-15).

    Failing sweep points are scored ``inf`` (recorded on
    ``runtime.failures``) so they can never be chosen; a terminal whose
    sweep fails entirely keeps its untuned wire count, so tuning always
    returns a usable result for a selectable option.

    With a :class:`~repro.surrogate.SurrogateGuide` (``guide``),
    singleton terminal sweeps are truncated to a predicted prefix (see
    :func:`_sweep_prefix`); every evaluated point is recorded to the
    guide's corpus with its measured cost.
    """
    runtime = runtime if runtime is not None else EvalRuntime()
    sweeps: list[TerminalSweep] = []
    simulations = 0
    wires = option.wires
    best_option = option
    family = (
        guide.family(primitive, weight_override) if guide is not None else None
    )

    def record_point(key: str, candidate: LayoutOption) -> None:
        if guide is None or family is None:
            return
        guide.record(
            family,
            "tune",
            key,
            option_features(
                primitive,
                candidate.base,
                candidate.pattern,
                candidate.wires,
                layout=candidate.layout,
            ),
            candidate.cost,
        )

    def sweep_batch(candidates: list[WireConfig]):
        tasks = [
            option_task(
                "tune",
                primitive,
                option.base,
                option.pattern,
                candidate,
                weight_override,
                cache=runtime.cache,
            )
            for candidate in candidates
        ]
        return runtime.evaluate_batch(tasks, stage="tuning")

    for group in _terminal_groups(primitive):
        limit = min(max_wires, min(t.max_wires for t in group))
        if len(group) > 1:
            # Joint grids grow as limit**k; the paper notes correlated
            # groups are small, and so must the per-terminal range be.
            limit = min(limit, 4)
        if len(group) == 1:
            terminal = group[0]
            sweep = TerminalSweep(terminal=terminal.name)
            options_at = {}
            prefix = _sweep_prefix(
                primitive, option, wires, group, limit,
                weight_override, runtime, guide,
            )
            counts = list(range(1, prefix + 1))
            # The range dispatches in chunks of TUNE_CHUNK: the
            # early-stop break below usually fires within three points,
            # and chunking keeps eager runtimes (``--batch``, worker
            # pools) from simulating points the loop never consumes.
            # Journal keys, consume order and chosen wires are identical
            # to a single-batch dispatch.
            stopped_early = False
            for start in range(0, len(counts), TUNE_CHUNK):
                chunk = counts[start:start + TUNE_CHUNK]
                batch = sweep_batch(
                    [_with_counts(wires, group, (c,)) for c in chunk]
                )
                for index, count in enumerate(chunk):
                    candidate = batch.consume(index)
                    if candidate is None:
                        sweep.points.append(
                            SweepPoint(count, float("inf"), {})
                        )
                        continue
                    simulations += candidate.simulations
                    sweep.points.append(
                        SweepPoint(count, candidate.cost, candidate.values)
                    )
                    options_at[count] = candidate
                    record_point(
                        option_key(
                            "tune", option.base, option.pattern,
                            candidate.wires,
                        ),
                        candidate,
                    )
                    if len(sweep.points) >= 3 and (
                        sweep.points[-1].cost > sweep.points[-2].cost
                        and sweep.points[-2].cost > sweep.points[-3].cost
                    ):
                        stopped_early = True
                        break  # clearly past the minimum
                if stopped_early:
                    break
            if not options_at:
                # Whole terminal sweep failed: keep the untuned wires.
                sweep.chosen = _untuned_straps(wires, group)
                sweep.stopped_by = "failed"
                sweeps.append(sweep)
                continue
            idx, reason = choose_stop_point(sweep.costs)
            sweep.chosen = sweep.points[idx].wires
            sweep.stopped_by = reason
            sweeps.append(sweep)
            wires = _with_counts(wires, group, (sweep.chosen,))
            best_option = options_at[sweep.chosen]
        else:
            # Correlated terminals: joint enumeration.
            sweep = TerminalSweep(
                terminal="+".join(t.name for t in group), stopped_by="joint"
            )
            best_cost = float("inf")
            best_counts: tuple[int, ...] | None = None
            grid = list(product(range(1, limit + 1), repeat=len(group)))
            batch = sweep_batch([_with_counts(wires, group, c) for c in grid])
            for index, counts in enumerate(grid):
                candidate = batch.consume(index)
                if candidate is None:
                    sweep.points.append(
                        SweepPoint(sum(counts), float("inf"), {})
                    )
                    continue
                simulations += candidate.simulations
                sweep.points.append(
                    SweepPoint(sum(counts), candidate.cost, candidate.values)
                )
                record_point(
                    option_key(
                        "tune", option.base, option.pattern, candidate.wires
                    ),
                    candidate,
                )
                if candidate.cost < best_cost:
                    best_cost = candidate.cost
                    best_counts = counts
                    best_option = candidate
            if best_counts is None:
                # Whole joint sweep failed: keep the untuned wires (the
                # dataclass default of 1 would misreport a pre-tuned
                # strap count).
                sweep.chosen = _untuned_straps(wires, group)
                sweep.stopped_by = "failed"
                sweeps.append(sweep)
                continue
            sweep.chosen = sum(best_counts)
            sweeps.append(sweep)
            wires = _with_counts(wires, group, best_counts)

    return TuningResult(option=best_option, sweeps=sweeps, simulations=simulations)
