"""Device models.

* :mod:`repro.devices.mosfet` — smooth EKV-style FinFET DC model with
  channel-length modulation and velocity saturation, plus Meyer-style
  capacitances; fully vectorized over device arrays for the MNA engine.
* :mod:`repro.devices.lde` — per-device layout-dependent-effect context
  (threshold shift, mobility factor) produced by extraction.
* :mod:`repro.devices.passives` — models for precision resistors, MOM
  capacitors and spiral inductors.
"""

from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry, MosEval, evaluate_mosfets, mos_small_signal
from repro.devices.passives import MomCapacitor, PolyResistor, SpiralInductor

__all__ = [
    "LdeContext",
    "MosGeometry",
    "MosEval",
    "evaluate_mosfets",
    "mos_small_signal",
    "MomCapacitor",
    "PolyResistor",
    "SpiralInductor",
]
