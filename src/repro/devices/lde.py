"""Per-device layout-dependent-effect context.

Extraction (see :mod:`repro.extraction.lde_extract`) analyses the generated
layout geometry and reduces the LOD and WPE effects of every finger to a
single per-device :class:`LdeContext` — a threshold shift and a mobility
factor — which the compact model then applies.  A schematic (pre-layout)
device uses :meth:`LdeContext.ideal`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LdeContext:
    """Layout-induced deviations applied to one device.

    Attributes:
        vth_shift: Additive threshold shift in volts (positive raises the
            threshold magnitude for either polarity).
        mobility_factor: Multiplicative factor on the transconductance
            parameter (1.0 means unshifted).
        sa: Average gate-to-diffusion-edge distance on the source side
            (nm), recorded for reporting.
        sb: Average gate-to-diffusion-edge distance on the drain side (nm).
        sc: Distance to the nearest well edge (nm).
    """

    vth_shift: float = 0.0
    mobility_factor: float = 1.0
    sa: float = float("inf")
    sb: float = float("inf")
    sc: float = float("inf")

    @classmethod
    def ideal(cls) -> "LdeContext":
        """The no-shift context used for schematic devices."""
        return cls()

    def combined_with(self, other: "LdeContext") -> "LdeContext":
        """Compose two contexts (shifts add, mobility factors multiply)."""
        return LdeContext(
            vth_shift=self.vth_shift + other.vth_shift,
            mobility_factor=self.mobility_factor * other.mobility_factor,
            sa=min(self.sa, other.sa),
            sb=min(self.sb, other.sb),
            sc=min(self.sc, other.sc),
        )
