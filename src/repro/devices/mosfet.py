"""Smooth EKV-style FinFET compact model.

The DC model is the symmetric EKV formulation

``Id = Ispec * (F(uf) - F(ur)) / (1 + theta*vov) * (1 + lambda*vds)``

with ``F(u) = ln(1 + exp(u/2))^2`` interpolating smoothly from weak to
strong inversion, velocity saturation modelled as mobility degradation in
the overdrive, and channel-length modulation as a linear ``vds`` term.
FinFETs are fully depleted, so no body effect is modelled (``gmb = 0``).

The model is evaluated *vectorized over devices*: the MNA engine gathers
terminal voltages for all MOSFETs into arrays and gets currents,
conductances and capacitances back in one call.  Derivatives are analytic;
``tests/devices/test_mosfet.py`` checks them against finite differences.

Capacitances follow a Meyer-style smooth partition of the intrinsic gate
capacitance, blended by inversion level and by the triode/saturation ratio
``ir/if``, plus constant overlap and junction terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.lde import LdeContext
from repro.errors import NetlistError
from repro.tech.finfet import MosModelCard
from repro.tech.rules import DesignRules
from repro.units import THERMAL_VOLTAGE, meters


@dataclass(frozen=True)
class MosGeometry:
    """FinFET sizing as drawn: fins per finger, fingers, multiplicity."""

    nfin: int
    nf: int = 1
    m: int = 1

    def __post_init__(self) -> None:
        if self.nfin < 1 or self.nf < 1 or self.m < 1:
            raise NetlistError("nfin, nf and m must all be >= 1")

    @property
    def nfins_total(self) -> int:
        """Total number of fins in the device."""
        return self.nfin * self.nf * self.m

    def scaled(self, factor: int) -> "MosGeometry":
        """Return a geometry with ``m`` multiplied by ``factor``."""
        if factor < 1:
            raise NetlistError("scale factor must be >= 1")
        return MosGeometry(self.nfin, self.nf, self.m * factor)


@dataclass(frozen=True)
class MosParams:
    """Numeric model parameters for one device instance (SI units)."""

    polarity: int
    vth: float
    slope_factor: float
    ispec: float
    lambda_clm: float
    theta: float
    cox_wl: float
    cov: float
    cdb: float
    csb: float
    sigma_vth: float


def resolve_params(
    card: MosModelCard,
    rules: DesignRules,
    geometry: MosGeometry,
    lde: LdeContext | None = None,
    cdb_override: float | None = None,
    csb_override: float | None = None,
) -> MosParams:
    """Combine a model card, geometry and LDE context into numeric params.

    ``cdb_override``/``csb_override`` let extraction substitute junction
    capacitances that account for diffusion sharing; without them the
    unshared (schematic) values are used.
    """
    ctx = lde or LdeContext.ideal()
    nfins = geometry.nfins_total
    w_eff = nfins * meters(rules.fin_width_effective)
    length = meters(rules.gate_length)
    beta = card.kp * ctx.mobility_factor * w_eff / length
    ispec = 2.0 * card.slope_factor * beta * THERMAL_VOLTAGE**2
    cdb = card.cj_per_fin * nfins if cdb_override is None else cdb_override
    csb = card.cj_per_fin * nfins if csb_override is None else csb_override
    return MosParams(
        polarity=card.polarity,
        vth=card.vth0 + ctx.vth_shift,
        slope_factor=card.slope_factor,
        ispec=ispec,
        lambda_clm=card.lambda_clm,
        theta=1.0 / card.vsat_field,
        cox_wl=card.cox_area * w_eff * length,
        cov=card.cov_per_fin * nfins,
        cdb=cdb,
        csb=csb,
        sigma_vth=card.sigma_vth_fin / np.sqrt(nfins),
    )


@dataclass
class MosEval:
    """Vectorized model outputs for a set of devices.

    ``ids`` is the current flowing *into the drain terminal* (out of the
    source); conductances are the partial derivatives of that current.
    ``gms = dId/dVs`` equals ``-(gm + gds)`` because the model has no body
    effect.  Capacitances are in farads.
    """

    ids: np.ndarray
    gm: np.ndarray
    gds: np.ndarray
    cgs: np.ndarray
    cgd: np.ndarray
    cgb: np.ndarray
    cdb: np.ndarray
    csb: np.ndarray

    @property
    def gms(self) -> np.ndarray:
        """Derivative of the drain current w.r.t. the source voltage."""
        return -(self.gm + self.gds)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def _f_interp(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """EKV interpolation function ``F(u) = ln(1+e^{u/2})^2`` and dF/du."""
    half = np.logaddexp(0.0, 0.5 * u)
    return half * half, half * _sigmoid(0.5 * u)


def evaluate_mosfets(
    polarity: np.ndarray,
    vth: np.ndarray,
    slope_factor: np.ndarray,
    ispec: np.ndarray,
    lambda_clm: np.ndarray,
    theta: np.ndarray,
    cox_wl: np.ndarray,
    cov: np.ndarray,
    cdb: np.ndarray,
    csb: np.ndarray,
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
) -> MosEval:
    """Evaluate the model for arrays of devices at given terminal voltages.

    All parameter arrays must be broadcastable to a common shape.  PMOS
    devices (``polarity == -1``) are mapped onto the n-model; drain/source
    are swapped internally when ``vds < 0`` so the model is valid in all
    quadrants and all returned derivatives are smooth.
    """
    ut = THERMAL_VOLTAGE
    pol = polarity.astype(float)
    vgs_n = pol * (vg - vs)
    vds_n = pol * (vd - vs)

    swap = vds_n < 0.0
    vds_e = np.abs(vds_n)
    vgs_e = np.where(swap, vgs_n - vds_n, vgs_n)

    n = slope_factor
    vp = (vgs_e - vth) / n
    f_fwd, df_fwd = _f_interp(vp / ut)
    f_rev, df_rev = _f_interp((vp - vds_e) / ut)

    # Velocity saturation: mobility degradation in the (smoothed) overdrive.
    ut2 = 2.0 * n * ut
    ov = ut2 * np.logaddexp(0.0, (vgs_e - vth) / ut2)
    dov = _sigmoid((vgs_e - vth) / ut2)
    den = 1.0 + theta * ov
    dden = theta * dov

    delta_f = f_fwd - f_rev
    i0 = ispec * delta_f / den
    clm = 1.0 + lambda_clm * vds_e
    id_e = i0 * clm

    dif_dvgs = df_fwd / (n * ut)
    dir_dvgs = df_rev / (n * ut)
    dir_dvds = -df_rev / ut

    di0_dvgs = ispec * ((dif_dvgs - dir_dvgs) / den - delta_f * dden / den**2)
    di0_dvds = ispec * (-dir_dvds) / den
    gid_gs = di0_dvgs * clm
    gid_ds = di0_dvds * clm + i0 * lambda_clm

    id_n = np.where(swap, -id_e, id_e)
    gm_n = np.where(swap, -gid_gs, gid_gs)
    gds_n = np.where(swap, gid_gs + gid_ds, gid_ds)

    # Meyer-style capacitance partition (in the effective orientation).
    inv = f_fwd / (1.0 + f_fwd)
    ratio = np.sqrt((f_rev + 1e-15) / (f_fwd + 1e-15))
    ratio = np.clip(ratio, 0.0, 1.0)
    cgs_i = cox_wl * inv * (2.0 / 3.0 * (1.0 - ratio) + 0.5 * ratio)
    cgd_i = cox_wl * inv * 0.5 * ratio
    cgb = cox_wl * (1.0 - inv) * 0.3

    cgs = np.where(swap, cgd_i, cgs_i) + cov
    cgd = np.where(swap, cgs_i, cgd_i) + cov

    return MosEval(
        ids=pol * id_n,
        gm=gm_n,
        gds=gds_n,
        cgs=cgs,
        cgd=cgd,
        cgb=cgb,
        cdb=np.broadcast_to(cdb, id_n.shape).copy(),
        csb=np.broadcast_to(csb, id_n.shape).copy(),
    )


def mos_small_signal(
    params: MosParams, vg: float, vd: float, vs: float
) -> dict[str, float]:
    """Scalar convenience wrapper: evaluate one device at one bias point.

    Returns a dict with ``id``, ``gm``, ``gds``, ``gms`` and the five
    capacitances — handy in tests, docs and quick calculations.
    """
    arr = lambda x: np.asarray([float(x)])  # noqa: E731 - tiny local adapter
    out = evaluate_mosfets(
        np.asarray([params.polarity]),
        arr(params.vth),
        arr(params.slope_factor),
        arr(params.ispec),
        arr(params.lambda_clm),
        arr(params.theta),
        arr(params.cox_wl),
        arr(params.cov),
        arr(params.cdb),
        arr(params.csb),
        arr(vg),
        arr(vd),
        arr(vs),
    )
    return {
        "id": float(out.ids[0]),
        "gm": float(out.gm[0]),
        "gds": float(out.gds[0]),
        "gms": float(out.gms[0]),
        "cgs": float(out.cgs[0]),
        "cgd": float(out.cgd[0]),
        "cgb": float(out.cgb[0]),
        "cdb": float(out.cdb[0]),
        "csb": float(out.csb[0]),
    }
