"""Passive device models: poly resistors, MOM capacitors, spiral inductors.

These primitives are simple enough to be described by a nominal value plus
layout-induced parasitics; they exist so the primitive library covers the
paper's full primitive taxonomy (Section II-A lists *Passives* as a
primitive class with RC trade-offs at their terminals).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistError


@dataclass(frozen=True)
class PolyResistor:
    """Precision polysilicon resistor.

    Attributes:
        value: Nominal resistance (ohm).
        segments: Number of series segments the layout folds the resistor
            into; more segments make the layout squarer but add contact
            resistance and parasitic capacitance.
        contact_resistance: Resistance per segment end contact (ohm).
        cap_per_segment: Parasitic capacitance to substrate per segment (F).
    """

    value: float
    segments: int = 1
    contact_resistance: float = 5.0
    cap_per_segment: float = 2.0e-16

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise NetlistError("resistor value must be > 0")
        if self.segments < 1:
            raise NetlistError("resistor needs at least one segment")

    @property
    def effective_resistance(self) -> float:
        """Nominal value plus layout contact resistance."""
        return self.value + 2.0 * self.segments * self.contact_resistance

    @property
    def parasitic_capacitance(self) -> float:
        """Total parasitic capacitance to substrate."""
        return self.segments * self.cap_per_segment


@dataclass(frozen=True)
class MomCapacitor:
    """Metal-oxide-metal finger capacitor.

    Attributes:
        value: Nominal capacitance (F).
        q_factor: Quality factor at ``f_ref``; sets the series resistance.
        f_ref: Reference frequency for the quality factor (Hz).
        bottom_plate_ratio: Parasitic bottom-plate capacitance as a
            fraction of the nominal value.
    """

    value: float
    q_factor: float = 50.0
    f_ref: float = 1.0e9
    bottom_plate_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise NetlistError("capacitor value must be > 0")
        if self.q_factor <= 0:
            raise NetlistError("capacitor q_factor must be > 0")

    @property
    def series_resistance(self) -> float:
        """Equivalent series resistance from the quality factor (ohm)."""
        import math

        return 1.0 / (2.0 * math.pi * self.f_ref * self.value * self.q_factor)

    @property
    def bottom_plate_capacitance(self) -> float:
        """Parasitic bottom-plate capacitance to substrate (F)."""
        return self.value * self.bottom_plate_ratio


@dataclass(frozen=True)
class SpiralInductor:
    """Planar spiral inductor with a series-R / shunt-C parasitic model.

    Attributes:
        value: Nominal inductance (H).
        q_factor: Quality factor at ``f_ref``.
        f_ref: Reference frequency (Hz).
        shunt_capacitance: Port-to-substrate capacitance (F).
    """

    value: float
    q_factor: float = 12.0
    f_ref: float = 5.0e9
    shunt_capacitance: float = 2.0e-14

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise NetlistError("inductor value must be > 0")
        if self.q_factor <= 0:
            raise NetlistError("inductor q_factor must be > 0")

    @property
    def series_resistance(self) -> float:
        """Equivalent series resistance from the quality factor (ohm)."""
        import math

        return 2.0 * math.pi * self.f_ref * self.value / self.q_factor
