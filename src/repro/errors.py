"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at flow boundaries while still being able
to discriminate simulator convergence problems from layout rule problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TechnologyError(ReproError):
    """Raised for inconsistent or missing technology data (layers, rules)."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists (unknown nodes, bad values)."""


class SimulationError(ReproError):
    """Raised when an analysis cannot be completed."""


class ConvergenceError(SimulationError):
    """Raised when Newton iteration fails to converge after all homotopies."""


class LayoutError(ReproError):
    """Raised when a layout cannot be generated (infeasible parameters)."""


class DesignRuleError(LayoutError):
    """Raised when a requested geometry violates the technology rules."""


class VerificationError(LayoutError):
    """Raised when static verification (DRC / connectivity) finds errors.

    Carries the offending :class:`~repro.verify.diagnostics.Report` on
    ``self.report`` when one is available, so callers can inspect the
    individual violations programmatically.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ExtractionError(ReproError):
    """Raised when parasitic extraction encounters inconsistent geometry."""


class OptimizationError(ReproError):
    """Raised when the primitive optimizer cannot produce a valid result."""


class PlacementError(ReproError):
    """Raised when the placer cannot satisfy the geometric constraints."""


class RoutingError(ReproError):
    """Raised when global or detailed routing fails."""


class MeasureError(SimulationError):
    """Raised when a measurement cannot be evaluated from waveform data."""
