"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at flow boundaries while still being able
to discriminate simulator convergence problems from layout rule problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TechnologyError(ReproError):
    """Raised for inconsistent or missing technology data (layers, rules)."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists (unknown nodes, bad values)."""


class SimulationError(ReproError):
    """Raised when an analysis cannot be completed."""

    #: Stable failure code used by the fault-tolerant evaluation runtime
    #: (:mod:`repro.runtime`) to classify this error in a
    #: :class:`~repro.runtime.failures.FailureLog`.
    failure_code: str = "SIM"


class ConvergenceError(SimulationError):
    """Raised when Newton iteration fails to converge after all homotopies.

    ``code`` discriminates the analysis that failed: ``"CONV-DC"`` for
    operating-point solves (the default) and ``"CONV-TRAN"`` for transient
    time steps.
    """

    failure_code = "CONV-DC"

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.failure_code = code


class SingularMatrixError(SimulationError):
    """Raised when an MNA system stays singular even after the
    Tikhonov-regularized least-squares fallback."""

    failure_code = "SINGULAR-MNA"


class EvalTimeoutError(SimulationError):
    """Raised when one evaluation exceeds its wall-clock deadline."""

    failure_code = "EVAL-TIMEOUT"


class WorkerLostError(SimulationError):
    """Raised when an evaluation worker process died (SIGKILL, OOM,
    segfault) and the task was quarantined after killing a replacement
    worker too.

    The supervised pool normally *synthesizes* the ``WORKER-LOST``
    failure record instead of raising; this type exists so callers that
    re-run a quarantined task serially get a classifiable, absorbable
    error if the evaluation also dies in-process.
    """

    failure_code = "WORKER-LOST"


class LayoutError(ReproError):
    """Raised when a layout cannot be generated (infeasible parameters)."""


class DesignRuleError(LayoutError):
    """Raised when a requested geometry violates the technology rules."""


class VerificationError(LayoutError):
    """Raised when static verification (DRC / connectivity) finds errors.

    Carries the offending :class:`~repro.verify.diagnostics.Report` on
    ``self.report`` when one is available, so callers can inspect the
    individual violations programmatically.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ExtractionError(ReproError):
    """Raised when parasitic extraction encounters inconsistent geometry."""


class OptimizationError(ReproError):
    """Raised when the primitive optimizer cannot produce a valid result.

    Carries the run's :class:`~repro.runtime.failures.FailureLog` on
    ``self.failures`` when one is available, so callers can see *why* a
    sweep produced nothing instead of a bare "no options" message.
    """

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = failures


class CheckpointError(ReproError):
    """Raised for unreadable or inconsistent sweep-checkpoint journals."""


class PlacementError(ReproError):
    """Raised when the placer cannot satisfy the geometric constraints."""


class RoutingError(ReproError):
    """Raised when global or detailed routing fails."""


class MeasureError(SimulationError):
    """Raised when a measurement cannot be evaluated from waveform data.

    Includes non-finite (NaN/inf) measurement results: those are reported
    as ``BAD-METRIC`` failures rather than silently poisoning cost sums.
    """

    failure_code = "BAD-METRIC"
