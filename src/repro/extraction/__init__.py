"""Parasitic and layout-dependent-effect extraction.

Replaces the commercial extractor in the paper's flow.  Given a generated
:class:`~repro.geometry.layout.Layout` and the :class:`~repro.cellgen.CellSpec`
that produced it, extraction yields:

* per-net wire parasitics (:mod:`repro.extraction.rc`) — series resistance
  from the device mesh to the net's star point and onward to the port,
  plus the total wire capacitance; parallel straps divide R and multiply C,
* per-device LDE contexts (:mod:`repro.extraction.lde_extract`) — LOD and
  WPE threshold/mobility shifts plus the systematic process gradient,
* diffusion-sharing-aware junction capacitances,
* and an extracted SPICE netlist builder
  (:mod:`repro.extraction.netlist_builder`) that assembles everything into
  a :class:`~repro.spice.netlist.Circuit` ready for testbench simulation.
"""

from repro.extraction.rc import NetParasitics, extract_net_parasitics
from repro.extraction.lde_extract import extract_lde, junction_capacitances
from repro.extraction.netlist_builder import ExtractedPrimitive, extract_primitive

__all__ = [
    "NetParasitics",
    "extract_net_parasitics",
    "extract_lde",
    "junction_capacitances",
    "ExtractedPrimitive",
    "extract_primitive",
]
