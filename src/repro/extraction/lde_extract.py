"""Layout-dependent-effect extraction.

Walks the device unit placements of a layout and computes, per schematic
device:

* **LOD** — each finger's distance to its unit's diffusion edges
  (``SA``/``SB``); dummies extend the diffusion and relax the effect.
  The per-finger ``1/SA + 1/SB`` stress terms are averaged over all
  fingers of all units.
* **WPE** — each unit's distance to the left/right well edges, combined
  harmonically (both edges inject dopants).
* **Systematic gradient** — an across-die linear threshold gradient
  evaluated at the device's unit centroid relative to the cell centre.
  Mirror-symmetric patterns (ABBA, CC2D) cancel it between matched
  devices; clustered patterns (AABB) do not — this is the mechanism
  behind the catastrophic offset entries in the paper's Table III.

The result is one :class:`~repro.devices.lde.LdeContext` per device, plus
diffusion-sharing-aware junction capacitances.
"""

from __future__ import annotations

from repro.devices.lde import LdeContext
from repro.errors import ExtractionError
from repro.geometry.layout import DevicePlacement, Layout
from repro.tech.finfet import MosModelCard
from repro.tech.pdk import Technology


def _lod_stress(placement: DevicePlacement, poly_pitch: int) -> float:
    """Average ``1/SA + 1/SB`` over the unit's fingers (1/nm)."""
    nf = placement.nf
    dummy_ext = placement.dummy_fingers * poly_pitch
    total = 0.0
    for finger in range(nf):
        sa = (finger + 0.5) * poly_pitch + dummy_ext
        sb = (nf - finger - 0.5) * poly_pitch + dummy_ext
        total += 1.0 / sa + 1.0 / sb
    return total / nf


def _wpe_distance(placement: DevicePlacement, layout: Layout) -> float:
    """Effective distance to the well edges (nm), harmonically combined."""
    well = layout.well_rect
    if well is None:
        raise ExtractionError(f"layout {layout.name!r} has no well rectangle")
    center = placement.rect.center
    d_left = max(1.0, center.x - well.x0)
    d_right = max(1.0, well.x1 - center.x)
    return 2.0 / (1.0 / d_left + 1.0 / d_right)


def extract_lde(
    layout: Layout,
    device: str,
    card: MosModelCard,
    tech: Technology,
) -> LdeContext:
    """Extract the combined LDE context for one schematic device."""
    placements = [p for p in layout.devices if p.device == device]
    if not placements:
        raise ExtractionError(
            f"device {device!r} has no placements in layout {layout.name!r}"
        )
    poly_pitch = tech.rules.poly_pitch
    lde = card.lde

    stress = sum(_lod_stress(p, poly_pitch) for p in placements) / len(placements)
    vth_lod = lde.kvth_lod * (stress - 2.0 / lde.sa_ref)
    mu_factor = max(0.5, 1.0 - lde.kmu_lod * (stress - 2.0 / lde.sa_ref))

    sc_values = [_wpe_distance(p, layout) for p in placements]
    sc_mean_inv = sum(1.0 / sc for sc in sc_values) / len(sc_values)
    vth_wpe = lde.kvth_wpe * (sc_mean_inv - 1.0 / lde.sc_ref)

    # Systematic across-die gradient at the unit centroid, relative to the
    # cell centre so that symmetric patterns cancel exactly.
    bbox = layout.bbox()
    cx = sum(p.rect.center.x for p in placements) / len(placements)
    cy = sum(p.rect.center.y for p in placements) / len(placements)
    vth_gradient = tech.vth_gradient_x * (cx - bbox.center.x) + tech.vth_gradient_y * (
        cy - bbox.center.y
    )

    sa_avg = sum(
        (0.5 + p.dummy_fingers) * poly_pitch for p in placements
    ) / len(placements)
    return LdeContext(
        vth_shift=vth_lod + vth_wpe + vth_gradient,
        mobility_factor=mu_factor,
        sa=sa_avg,
        sb=sa_avg,
        sc=min(sc_values),
    )


def junction_capacitances(
    layout: Layout, device: str, card: MosModelCard
) -> tuple[float, float]:
    """Diffusion-sharing-aware (cdb, csb) for one device.

    Within a unit of ``nf`` fingers the diffusions alternate
    ``S D S D ... S`` (even ``nf`` keeps sources on both ends).  Internal
    diffusions are shared between two fingers and carry
    ``cj_shared_factor`` of the unshared capacitance; end diffusions are
    full size unless dummies abut them (then they are shared with the
    dummy).
    """
    placements = [p for p in layout.devices if p.device == device]
    if not placements:
        raise ExtractionError(
            f"device {device!r} has no placements in layout {layout.name!r}"
        )
    cdb = 0.0
    csb = 0.0
    for p in placements:
        per_region = card.cj_per_fin * p.nfin
        n_regions = p.nf + 1
        n_drain = p.nf // 2
        n_source = n_regions - n_drain
        # Drain regions are always internal for even nf.
        cdb += n_drain * per_region * card.cj_shared_factor
        internal_sources = max(0, n_source - 2)
        csb += internal_sources * per_region * card.cj_shared_factor
        end_factor = card.cj_shared_factor if p.dummy_fingers > 0 else 1.0
        csb += 2 * per_region * end_factor
    return cdb, csb
