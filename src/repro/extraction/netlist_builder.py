"""Extracted-netlist construction.

:func:`extract_primitive` bundles RC and LDE extraction of one generated
layout into an :class:`ExtractedPrimitive`, whose
:meth:`~ExtractedPrimitive.build_circuit` produces the post-layout SPICE
netlist: every net becomes the three-node ladder of
:mod:`repro.extraction.rc` and every device carries its extracted
:class:`~repro.devices.lde.LdeContext` and diffusion-sharing-aware
junction capacitances.

Node naming: the port-side node keeps the net name (so testbenches attach
sources exactly as they would to the schematic), ``<net>__w`` is the star
point carrying the wire capacitance, and ``<net>__d`` is the device mesh
node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellgen.generator import CellSpec
from repro.devices.lde import LdeContext
from repro.extraction.lde_extract import extract_lde, junction_capacitances
from repro.extraction.rc import NetParasitics, extract_net_parasitics
from repro.geometry.layout import Layout
from repro.spice.netlist import Circuit, is_ground
from repro.tech.pdk import Technology


@dataclass
class ExtractedPrimitive:
    """Extraction results for one primitive layout.

    Attributes:
        layout: The layout that was extracted.
        spec: The cell specification used to generate it.
        tech: Technology node.
        net_parasitics: Per-net reduced RC.
        device_lde: Per-device LDE contexts.
        device_junctions: Per-device (cdb, csb) with diffusion sharing.
    """

    layout: Layout
    spec: CellSpec
    tech: Technology
    net_parasitics: dict[str, NetParasitics] = field(default_factory=dict)
    device_lde: dict[str, LdeContext] = field(default_factory=dict)
    device_junctions: dict[str, tuple[float, float]] = field(default_factory=dict)

    def build_circuit(self, name: str | None = None) -> Circuit:
        """Assemble the post-layout netlist of the primitive.

        Every extracted net becomes ``port --R_trunk-- star`` with the
        wire capacitance at the star, and each device terminal hangs off
        the star through its own branch resistance, so per-device
        degeneration and matching are modelled faithfully.
        """
        circuit = Circuit(name or f"{self.layout.name}_extracted")
        circuit.ports = [n for n in self.spec.port_nets if not is_ground(n)]

        for net, par in self.net_parasitics.items():
            star = f"{net}__w"
            circuit.add_resistor(f"rt_{net}", net, star, par.r_trunk)
            if par.c_wire > 0:
                circuit.add_capacitor(f"cw_{net}", star, "0", par.c_wire)
            for key, resistance in par.r_branches.items():
                circuit.add_resistor(
                    f"rb_{net}_{key}", star, f"{net}__{key}", resistance
                )

        for dev in self.spec.devices:
            card = self.tech.card(dev.polarity)
            cdb, csb = self.device_junctions[dev.name]

            def node(terminal: str) -> str:
                net = dev.terminals.get(terminal, "0")
                par = self.net_parasitics.get(net)
                key = f"{dev.name}.{terminal}"
                if par is not None and key in par.r_branches:
                    return f"{net}__{key}"
                return net

            circuit.add_mosfet(
                dev.name,
                d=node("d"),
                g=node("g"),
                s=node("s"),
                b=dev.terminals.get("b", "0"),
                card=card,
                geometry=dev.geometry,
                lde=self.device_lde[dev.name],
                cdb_override=cdb,
                csb_override=csb,
            )
        return circuit

    def summary(self) -> dict:
        """Human-readable extraction report (for docs and debugging)."""
        return {
            "layout": self.layout.name,
            "pattern": self.layout.metadata.get("pattern"),
            "bbox_um": (self.layout.width / 1000.0, self.layout.height / 1000.0),
            "aspect_ratio": self.layout.aspect_ratio,
            "nets": {
                net: {
                    "r_trunk": par.r_trunk,
                    "r_branches": dict(par.r_branches),
                    "c_wire": par.c_wire,
                    "straps": par.n_straps,
                }
                for net, par in self.net_parasitics.items()
            },
            "devices": {
                name: {
                    "vth_shift_mV": ctx.vth_shift * 1e3,
                    "mobility_factor": ctx.mobility_factor,
                }
                for name, ctx in self.device_lde.items()
            },
        }


def extract_primitive(
    layout: Layout, spec: CellSpec, tech: Technology
) -> ExtractedPrimitive:
    """Run full extraction (RC + LDE + junctions) on a primitive layout."""
    extracted = ExtractedPrimitive(layout=layout, spec=spec, tech=tech)
    for net in layout.nets():
        if layout.wires_on_net(net):
            extracted.net_parasitics[net] = extract_net_parasitics(layout, net, tech)
    for dev in spec.devices:
        card = tech.card(dev.polarity)
        extracted.device_lde[dev.name] = extract_lde(layout, dev.name, card, tech)
        extracted.device_junctions[dev.name] = junction_capacitances(
            layout, dev.name, card
        )
    return extracted
