"""Wire RC extraction over generated layouts.

For each net the extractor reduces the cell's mesh (per-row straps
collected by vertical rails) to a star network with *per-device-terminal
branches*::

    port ──R_trunk──  star  ──R_branch(M1.s)──  M1 source mesh
                       │   └─R_branch(M2.s)──  M2 source mesh
                     C_wire

* ``R_branch`` — contact resistance (per fin, divided over the terminal's
  stubs), the M1 stub metal, the via array, and the device's share of the
  row straps.  This is the resistance that degenerates an individual
  transistor, so differential structures see the correct per-side path.
* ``R_trunk`` — the vertical rails from the strap mesh down to the port,
  with distributed taps (``R_rail / 2`` for an end-connected port).
* ``C_wire`` — the summed capacitance of every wire shape plus vias.

Every lever the optimizer pulls is visible here: extra parallel straps
divide the strap share of ``R_branch`` and add strap capacitance (and
grow the cell, lengthening stubs); more rows parallelize branches; longer
rows lengthen straps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExtractionError
from repro.geometry.layout import Layout
from repro.tech.pdk import Technology

#: Floor applied to extracted resistances to keep netlists well-posed.
MIN_RESISTANCE = 1.0e-3


@dataclass(frozen=True)
class NetParasitics:
    """Reduced wire parasitics of one net.

    Attributes:
        net: Net name.
        r_branches: Series resistance from the star point to each
            device-terminal mesh, keyed by ``"<device>.<terminal>"``.
        r_trunk: Series resistance from the net's port to the star (ohm).
        c_wire: Total wire + via capacitance (F).
        n_straps: Total strap shapes on the net.
        n_rails: Vertical rail shapes on the net.
        strap_length: Representative strap length (nm).
    """

    net: str
    r_branches: dict[str, float] = field(default_factory=dict)
    r_trunk: float = MIN_RESISTANCE
    c_wire: float = 0.0
    n_straps: int = 0
    n_rails: int = 0
    strap_length: int = 0

    def branch(self, device: str, terminal: str) -> float:
        """Branch resistance for one device terminal (ohm)."""
        key = f"{device}.{terminal}"
        try:
            return self.r_branches[key]
        except KeyError:
            raise ExtractionError(
                f"net {self.net!r}: no branch for {key!r}"
            ) from None


def extract_net_parasitics(
    layout: Layout, net: str, tech: Technology
) -> NetParasitics:
    """Extract the reduced RC of one net from the layout geometry."""
    wires = layout.wires_on_net(net)
    if not wires:
        raise ExtractionError(
            f"net {net!r} has no wires in layout {layout.name!r}"
        )
    stubs = [w for w in wires if w.role == "finger_stub"]
    straps = [w for w in wires if w.role in ("strap", "strap_jumper")]
    rails = [w for w in wires if w.role == "rail"]
    vias = layout.vias_on_net(net)
    stack = tech.stack

    # Total wire + via capacitance.
    c_wire = 0.0
    for wire in wires:
        layer = stack.metal(wire.layer)
        c_wire += layer.wire_capacitance(wire.length, wire.width)
    for via in vias:
        c_wire += stack.via_between(via.lower_layer, via.upper_layer).capacitance

    nfin_by_device = {p.device: p.nfin for p in layout.devices}
    rows = max(1, layout.metadata.get("rows", 1))
    straps_per_row = max(1, len([s for s in straps if s.role == "strap"]) // rows)

    # Representative strap resistance (full row length, min width).
    r_strap = 0.0
    strap_length = 0
    if straps:
        strap_layer = stack.metal(straps[0].layer)
        strap_length = max(s.length for s in straps)
        r_strap = strap_layer.wire_resistance(strap_length, straps[0].width)

    # Per-device-terminal branches.
    r_branches: dict[str, float] = {}
    owners = sorted({s.owner for s in stubs if s.owner})
    for owner in owners:
        own_stubs = [s for s in stubs if s.owner == owner]
        device = owner.split(".")[0]
        nfin = nfin_by_device.get(device, 1)
        stub_layer = stack.metal(own_stubs[0].layer)
        avg_len = sum(s.length for s in own_stubs) / len(own_stubs)
        r_contact = tech.contact_resistance / max(1, nfin)
        r_stub = stub_layer.wire_resistance(avg_len, own_stubs[0].width)
        r = (r_contact + r_stub) / len(own_stubs)
        # The device's share of the row straps: on average the current
        # traverses half a strap to reach the rails, over all straps the
        # device's rows provide.
        rows_of_device = max(
            1, len({s.rect.y0 for s in own_stubs})
        )
        if r_strap:
            # Distributed taps along the strap: effective share R/3.
            r += r_strap / (3.0 * straps_per_row * rows_of_device)
        if vias:
            via_layer = stack.via_between("M1", "M2")
            stub_vias = [v for v in vias if v.lower_layer == "M1"]
            per_stub_cuts = max(1, len(stub_vias) // max(1, len(stubs)))
            r += via_layer.resistance / (per_stub_cuts * len(own_stubs))
        r_branches[owner] = max(MIN_RESISTANCE, r)

    # Trunk: vertical rails with distributed taps, port at the end.
    # Power nets keep only their local branch resistance: the manually
    # routed power grid (outside the methodology, as in the paper) taps
    # the cell's power straps from above everywhere.
    from repro.cellgen.generator import _is_power

    r_trunk = MIN_RESISTANCE
    if rails and not _is_power(net):
        rail_layer = stack.metal(rails[0].layer)
        rail_len = max(r.length for r in rails)
        r_rail = rail_layer.wire_resistance(rail_len, rails[0].width)
        r_trunk = r_rail / (2.0 * len(rails))
        rail_vias = [v for v in vias if v.upper_layer == "M3"]
        if rail_vias:
            via_layer = stack.via_between("M2", "M3")
            r_trunk += via_layer.resistance / len(rail_vias)
        r_trunk = max(MIN_RESISTANCE, r_trunk)

    return NetParasitics(
        net=net,
        r_branches=r_branches,
        r_trunk=r_trunk,
        c_wire=c_wire,
        n_straps=len(straps),
        n_rails=len(rails),
        strap_length=strap_length,
    )


def extract_all_nets(layout: Layout, tech: Technology) -> dict[str, NetParasitics]:
    """Extract every net that has wires in the layout."""
    result: dict[str, NetParasitics] = {}
    for net in layout.nets():
        if layout.wires_on_net(net):
            result[net] = extract_net_parasitics(layout, net, tech)
    return result
