"""End-to-end layout-generation flows.

* :class:`~repro.flow.hierarchical.HierarchicalFlow` — the paper's flow
  (Fig. 1): schematic bias calibration, primitive-level layout
  optimization (Algorithm 1), simulated-annealing placement over the
  binned options, global routing, primitive port optimization with
  constraint reconciliation (Algorithm 2), final post-layout assembly and
  measurement.
* Flavors of the same engine reproduce the paper's baselines:
  ``conventional`` (geometric constraints honored, no parasitic/LDE
  optimization, single-wire routes) and ``manual`` (an exhaustive-search
  oracle standing in for expert manual layout).
"""

from repro.flow.annotate import RecognizedPrimitive, annotation_report, recognize_primitives
from repro.flow.hierarchical import FlowResult, HierarchicalFlow

__all__ = [
    "FlowResult",
    "HierarchicalFlow",
    "RecognizedPrimitive",
    "recognize_primitives",
    "annotation_report",
]
