"""Automatic primitive recognition (netlist annotation).

The paper's flow assumes the netlist is "annotated, either manually or
automatically [4]-[6]" into a primitive hierarchy.  The benchmark
circuits in this repository are annotated manually (their
``bindings()``); this module provides the *automatic* path for flat
transistor netlists: structural pattern matching for the most common
primitives, in the spirit of the sizing-rules method [4].

Recognized structures (checked in this order, devices consumed greedily):

* differential pair — two same-polarity FETs sharing a source net, gates
  on distinct nets, distinct drains;
* cross-coupled pair — like a DP but each gate ties to the *other*
  drain;
* current mirror — a diode-connected FET plus same-polarity FETs sharing
  its gate net and source net;
* inverter — an N/P pair sharing gate and drain;
* diode load — a remaining diode-connected FET;
* switch — a FET whose gate net drives nothing else and whose channel
  connects two signal nets (fallback class).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.elements import Mosfet
from repro.spice.netlist import Circuit, is_ground


@dataclass
class RecognizedPrimitive:
    """One recognized structure.

    Attributes:
        family: Primitive family tag (matches the library's names where
            possible).
        devices: The member device names.
        nets: Role → net mapping (e.g. ``{"tail": "ntail"}``).
    """

    family: str
    devices: tuple[str, ...]
    nets: dict[str, str] = field(default_factory=dict)


def _is_diode(m: Mosfet) -> bool:
    return m.d == m.g


def recognize_primitives(circuit: Circuit) -> list[RecognizedPrimitive]:
    """Annotate a flat transistor netlist with primitive structures."""
    remaining: dict[str, Mosfet] = {m.name: m for m in circuit.mosfets()}
    found: list[RecognizedPrimitive] = []

    # --- cross-coupled pairs (check before DPs: they also share sources) --
    names = list(remaining)
    for i, a_name in enumerate(names):
        for b_name in names[i + 1 :]:
            if a_name not in remaining or b_name not in remaining:
                continue
            a, b = remaining[a_name], remaining[b_name]
            if a.card.polarity != b.card.polarity:
                continue
            if a.s != b.s:
                continue
            if a.g == b.d and b.g == a.d and a.d != b.d:
                found.append(
                    RecognizedPrimitive(
                        family="cross_coupled_pair",
                        devices=(a_name, b_name),
                        nets={"tail": a.s, "outp": a.d, "outn": b.d},
                    )
                )
                del remaining[a_name], remaining[b_name]

    # --- differential pairs ------------------------------------------------
    names = list(remaining)
    for i, a_name in enumerate(names):
        for b_name in names[i + 1 :]:
            if a_name not in remaining or b_name not in remaining:
                continue
            a, b = remaining[a_name], remaining[b_name]
            if a.card.polarity != b.card.polarity:
                continue
            if a.s != b.s or is_ground(a.s):
                continue
            if _is_diode(a) or _is_diode(b):
                continue
            if a.g != b.g and a.d != b.d and a.g not in (b.d,) and b.g not in (a.d,):
                found.append(
                    RecognizedPrimitive(
                        family="differential_pair",
                        devices=(a_name, b_name),
                        nets={
                            "tail": a.s,
                            "inp": a.g,
                            "inn": b.g,
                            "outp": a.d,
                            "outn": b.d,
                        },
                    )
                )
                del remaining[a_name], remaining[b_name]

    # --- current mirrors ---------------------------------------------------
    diodes = [n for n, m in remaining.items() if _is_diode(m)]
    for diode_name in diodes:
        if diode_name not in remaining:
            continue
        diode = remaining[diode_name]
        outputs = [
            n
            for n, m in remaining.items()
            if n != diode_name
            and not _is_diode(m)
            and m.g == diode.g
            and m.s == diode.s
            and m.card.polarity == diode.card.polarity
        ]
        if outputs:
            members = (diode_name, *outputs)
            found.append(
                RecognizedPrimitive(
                    family="current_mirror",
                    devices=members,
                    nets={
                        "in": diode.d,
                        "source": diode.s,
                        "outs": ",".join(remaining[o].d for o in outputs),
                    },
                )
            )
            for name in members:
                del remaining[name]

    # --- inverters ----------------------------------------------------------
    names = list(remaining)
    for i, a_name in enumerate(names):
        for b_name in names[i + 1 :]:
            if a_name not in remaining or b_name not in remaining:
                continue
            a, b = remaining[a_name], remaining[b_name]
            if a.card.polarity == b.card.polarity:
                continue
            if a.g == b.g and a.d == b.d:
                found.append(
                    RecognizedPrimitive(
                        family="inverter",
                        devices=(a_name, b_name),
                        nets={"in": a.g, "out": a.d},
                    )
                )
                del remaining[a_name], remaining[b_name]

    # --- leftovers: diode loads, then switches/single devices ---------------
    for name in list(remaining):
        m = remaining[name]
        if _is_diode(m):
            found.append(
                RecognizedPrimitive(
                    family="diode_load", devices=(name,), nets={"out": m.d}
                )
            )
            del remaining[name]
    for name in list(remaining):
        m = remaining[name]
        found.append(
            RecognizedPrimitive(
                family="switch" if not is_ground(m.s) else "current_source",
                devices=(name,),
                nets={"a": m.d, "b": m.s, "en": m.g},
            )
        )
        del remaining[name]

    return found


def annotation_report(circuit: Circuit) -> str:
    """Human-readable annotation summary of a flat netlist."""
    lines = [f"annotation of {circuit.name!r}:"]
    for prim in recognize_primitives(circuit):
        nets = ", ".join(f"{k}={v}" for k, v in prim.nets.items())
        lines.append(f"  {prim.family}: {'/'.join(prim.devices)} ({nets})")
    return "\n".join(lines)
