"""The hierarchical layout-generation flow (paper Fig. 1).

``HierarchicalFlow.run(circuit, flavor)`` executes, in order:

1. **Bias calibration** — the circuit's schematic operating point sets
   every primitive's testbench bias (Algorithm 1, line 3).
2. **Primitive optimization** — Algorithm 1 per *unique* primitive
   (instances sharing a primitive share its optimization, as the VCO's
   sixteen identical inverters do in the paper).
3. **Placement** — sequence-pair simulated annealing over the binned
   layout options.
4. **Global routing** — grid router over the placement; per-net segment
   lists with layers and vias.
5. **Port optimization** — Algorithm 2: per-port wire-count intervals,
   then reconciliation on shared nets.
6. **Assembly & measurement** — post-layout netlist with chosen layouts
   and reconciled route RC, measured with the circuit's testbench.

Flavors:

* ``"this_work"`` — the full methodology.
* ``"conventional"`` — geometric constraints only (common-centroid
  pattern, default mesh, single-wire routes), mirroring the paper's
  conventional baseline: no parasitic/LDE optimization at any step.
* ``"manual"`` — an exhaustive-search oracle (wider sweeps, global best
  option) standing in for expert manual layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cellgen.generator import WireConfig
from repro.circuits.base import CompositeCircuit, LayoutChoice, RouteBudget
from repro.core.optimizer import OptimizationReport, PrimitiveOptimizer
from repro.core.port_constraints import GlobalRouteInfo, PortConstraint
from repro.core.reconcile import (
    ReconciledNet,
    gap_range,
    intervals_overlap,
    reconcile_net,
)
from repro.errors import OptimizationError
from repro.geometry.layout import Instance, Layout
from repro.geometry.shapes import Point
from repro.pnr.global_router import GlobalRoute, GlobalRouter
from repro.pnr.placer import Block, Placement, SaPlacer
from repro.runtime import (
    EvalCache,
    FailureLog,
    ParallelEvalRuntime,
    RetryPolicy,
    SweepJournal,
)
from repro.spice import kernel
from repro.spice.netlist import Circuit, is_ground
from repro.tech.pdk import Technology
from repro.verify import (
    AuditTech,
    Report,
    WaiverSet,
    budget_net_currents,
    check_route_currents,
    check_route_parallelism,
    verify_assembly,
    verify_circuit,
    verify_layout,
)

#: Modeled per-simulation wall time (paper Section III-C).
PAPER_SIM_TIME = 10.0


@dataclass
class FlowResult:
    """Everything a flow run produces.

    Attributes:
        circuit_name: The circuit.
        flavor: ``"this_work"``, ``"conventional"`` or ``"manual"``.
        choices: Layout decision per binding.
        route_budgets: Route RC and wire count per top-level net.
        placement: Block placement (None for the conventional flavor's
            trivial row placement).
        reports: Optimization report per unique primitive name.
        reconciled: Reconciliation outcome per shared net.
        detailed_routes: Realized parallel-wire bundles per net (the
            detailed-router constraint output of Algorithm 2).
        assembled: The final post-layout netlist.
        metrics: Top-level measurements.
        verification: Static-verification report over the chosen cell
            layouts and the assembled placement (None when verification
            is disabled).
        failures: Absorbed evaluation failures across every stage of the
            run (the per-primitive reports carry the same log objects).
        wall_time: Actual wall-clock seconds of the run.
        modeled_runtime: Paper-style runtime model (10 s per parallel
            simulation batch plus P&R).
        solver_profile: Aggregated solver-kernel counters across the
            whole run — per-primitive optimization, port optimization,
            bias calibration and the final top-level measurement (see
            :meth:`repro.spice.kernel.SolverStats.as_dict`).  Profiling
            only; excluded from determinism fingerprints.
        surrogate_stats: Surrogate-guide counters accumulated across
            every primitive optimization of the run (see
            :meth:`repro.surrogate.SurrogateStats.as_dict`); empty when
            the surrogate is off.
    """

    circuit_name: str
    flavor: str
    choices: dict[str, LayoutChoice] = field(default_factory=dict)
    route_budgets: dict[str, RouteBudget] = field(default_factory=dict)
    placement: Placement | None = None
    reports: dict[str, OptimizationReport] = field(default_factory=dict)
    reconciled: dict[str, ReconciledNet] = field(default_factory=dict)
    detailed_routes: dict = field(default_factory=dict)
    assembled: Circuit | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    verification: Report | None = None
    failures: FailureLog = field(default_factory=FailureLog)
    wall_time: float = 0.0
    modeled_runtime: float = 0.0
    solver_profile: dict = field(default_factory=dict)
    surrogate_stats: dict = field(default_factory=dict)


class HierarchicalFlow:
    """The end-to-end flow engine.

    Args:
        tech: Technology node.
        n_bins: Aspect-ratio bins per primitive (options to the placer).
        max_wires: Sweep bound for tuning and port optimization.
        seed: Placer RNG seed.
        placer_iterations: Annealing iterations.
        verify: Statically verify the chosen cell layouts and the
            assembled placement (DRC + connectivity + ERC on each unique
            primitive's schematic + the constraint/symmetry pass + route
            parallelism); the report lands on
            ``FlowResult.verification``.
        strict: Raise :class:`~repro.errors.VerificationError` when
            verification finds unwaived errors instead of just recording
            them.
        waivers: Optional lint baseline (:class:`~repro.verify.rules
            .WaiverSet`); matching violations are marked waived before
            the strict check.
        policy: Retry/budget policy for simulation failures (see
            :class:`~repro.runtime.RetryPolicy`).
        run_dir: Directory for sweep-checkpoint journals (one JSONL per
            primitive plus ``ports.jsonl``); None disables checkpointing.
        resume: Replay existing journals instead of starting fresh.
        jobs: Worker processes for batched evaluations (None reads
            ``REPRO_JOBS``, else 1).  Results are byte-identical for any
            value; see ``docs/performance.md``.
        batch: Vectorized-sweep width for the stacked-solver fast path
            (None reads ``REPRO_BATCH``, else 1).  Byte-identical for
            any value; engages on the in-process path (``jobs <= 1``).
        cache: Content-addressed evaluation cache shared across every
            stage of the run (with an on-disk tier under
            ``<run_dir>/evalcache`` when checkpointing); ``False``
            disables it.
        cache_dir: Explicit disk-tier directory (``--cache-dir``),
            overriding the ``<run_dir>/evalcache`` default; safe to
            share between concurrent flows.
        cache_max_mb: Size cap in MiB for the disk tier
            (``--cache-max-mb``); None leaves it unbounded.
        surrogate: Surrogate-guided sweep pruning across every
            primitive optimization of the run (``--surrogate``); None
            reads ``REPRO_SURROGATE``, else off.  See
            :class:`~repro.core.PrimitiveOptimizer`.
        surrogate_topk: Predicted-best candidates kept per selection
            sweep (``--surrogate-topk``).
        explore: Exploration budget per pruned sweep (``--explore``).
        surrogate_corpus: Explicit corpus JSONL path
            (``--surrogate-corpus``); defaults next to the evalcache
            disk tier.
    """

    def __init__(
        self,
        tech: Technology,
        n_bins: int = 3,
        max_wires: int = 7,
        seed: int = 1,
        placer_iterations: int = 1500,
        verify: bool = True,
        strict: bool = False,
        policy: RetryPolicy | None = None,
        run_dir: str | None = None,
        resume: bool = False,
        waivers: WaiverSet | None = None,
        jobs: int | None = None,
        batch: int | None = None,
        cache: bool = True,
        cache_dir: str | None = None,
        cache_max_mb: float | None = None,
        surrogate: bool | None = None,
        surrogate_topk: int | None = None,
        explore: int | None = None,
        surrogate_corpus: str | None = None,
    ):
        self.tech = tech
        self.n_bins = n_bins
        self.max_wires = max_wires
        self.seed = seed
        self.placer_iterations = placer_iterations
        self.verify = verify
        self.strict = strict
        self.policy = policy
        self.run_dir = run_dir
        self.resume = resume
        self.waivers = waivers
        self.jobs = jobs
        self.batch = batch
        self.surrogate = surrogate
        self.surrogate_topk = surrogate_topk
        self.explore = explore
        self.surrogate_corpus = surrogate_corpus
        if cache:
            disk = (
                Path(cache_dir)
                if cache_dir is not None
                else Path(run_dir) / "evalcache"
                if run_dir is not None
                else None
            )
            max_bytes = (
                int(cache_max_mb * 1024 * 1024)
                if cache_max_mb is not None
                else None
            )
            self.cache: EvalCache | None = EvalCache(
                disk_dir=disk, max_disk_bytes=max_bytes
            )
        else:
            self.cache = None

    # -- public entry ------------------------------------------------------

    def run(
        self,
        circuit: CompositeCircuit,
        flavor: str = "this_work",
        measure: bool = True,
    ) -> FlowResult:
        """Run the flow in the requested flavor."""
        if flavor not in ("this_work", "conventional", "manual"):
            raise OptimizationError(f"unknown flow flavor {flavor!r}")
        start = time.perf_counter()
        result = FlowResult(circuit_name=circuit.name, flavor=flavor)
        # Flow-level solver profiling: direct simulation work (bias
        # calibration, the final measurement) is collected here; work
        # routed through an EvalRuntime lands on that runtime's own
        # collector and is merged in at the end.
        flow_stats = kernel.SolverStats()

        if hasattr(circuit, "calibrate_biases"):
            with kernel.collect(flow_stats):
                circuit.calibrate_biases()

        bindings = circuit.bindings()
        unique = self._unique_primitives(bindings)

        if flavor == "conventional":
            self._conventional_choices(result, bindings, unique)
        else:
            exhaustive = flavor == "manual"
            self._optimize_primitives(result, unique, exhaustive)
            self._assign_choices(result, bindings, exhaustive)

        rows_hint = circuit.placement_rows()
        if rows_hint:
            self._place_rows(result, bindings, rows_hint)
        else:
            self._place(result, bindings)
        routes = self._global_route(result, circuit, bindings)

        if flavor == "conventional":
            for net, route in routes.items():
                result.route_budgets[net] = RouteBudget(
                    route=route.to_route_info(self.tech), n_wires=1
                )
        else:
            self._port_optimization(
                result, circuit, bindings, routes, stats=flow_stats
            )

        if self.verify:
            self._verify_assembly(result, bindings)

        result.assembled = circuit.assembled(result.choices, result.route_budgets)
        if measure:
            with kernel.collect(flow_stats):
                result.metrics = circuit.measure(result.assembled)

        for report in result.reports.values():
            if report.solver_profile:
                flow_stats.merge(
                    kernel.SolverStats.from_dict(report.solver_profile)
                )
        if flow_stats:
            result.solver_profile = flow_stats.as_dict()
        if self.cache is not None and self.cache.downgrade_reason is not None:
            # Flow-level surfacing of a disk-tier downgrade (per-stage
            # ledgers already carry it when the optimizer saw it first).
            result.failures.mark_downgrade(self.cache.downgrade_reason)

        result.wall_time = time.perf_counter() - start
        result.modeled_runtime = self._model_runtime(result)
        return result

    # -- stages ---------------------------------------------------------

    @staticmethod
    def _unique_primitives(bindings) -> dict[str, object]:
        unique: dict[str, object] = {}
        for binding in bindings:
            unique.setdefault(binding.primitive.name, binding.primitive)
        return unique

    def _optimize_primitives(
        self, result: FlowResult, unique: dict[str, object], exhaustive: bool
    ) -> None:
        from repro.surrogate.guide import DEFAULT_EXPLORE, DEFAULT_TOP_K

        optimizer = PrimitiveOptimizer(
            n_bins=1 if exhaustive else self.n_bins,
            max_wires=self.max_wires + (2 if exhaustive else 0),
            policy=self.policy,
            run_dir=self.run_dir,
            resume=self.resume,
            jobs=self.jobs,
            batch=self.batch,
            cache=self.cache if self.cache is not None else False,
            surrogate=self.surrogate,
            surrogate_topk=(
                self.surrogate_topk
                if self.surrogate_topk is not None
                else DEFAULT_TOP_K
            ),
            explore=(
                self.explore if self.explore is not None else DEFAULT_EXPLORE
            ),
            surrogate_corpus=self.surrogate_corpus,
        )
        for name, primitive in unique.items():
            report = optimizer.optimize(primitive)
            result.reports[name] = report
            result.failures.extend(report.failures)
        if optimizer.guide is not None:
            result.surrogate_stats = optimizer.guide.stats.as_dict()

    def _assign_choices(
        self, result: FlowResult, bindings, exhaustive: bool
    ) -> None:
        for binding in bindings:
            report = result.reports[binding.primitive.name]
            best = report.best
            result.choices[binding.name] = LayoutChoice(
                base=best.base, pattern=best.pattern, wires=best.wires
            )

    def _conventional_choices(
        self, result: FlowResult, bindings, unique: dict[str, object]
    ) -> None:
        """Geometric constraints only: common-centroid pattern, default
        mesh, and a squarish default variant — what a layout engineer
        gets from a cell generator with no performance feedback."""
        for binding in bindings:
            primitive = binding.primitive
            variants = primitive.variants()
            # Default fingering heuristic: balance fins per finger
            # against fingers (squarish unit), minimal multiplicity.
            base = min(variants, key=lambda g: (abs(g.nfin - g.nf), g.m))
            counts = {
                t.name: base.m * t.m_ratio
                for t in primitive.templates()
                if t.name in primitive.matched_group()
            }
            from repro.cellgen.patterns import available_patterns

            patterns = available_patterns(list(counts), counts)
            pattern = "ABBA" if "ABBA" in patterns else patterns[0]
            result.choices[binding.name] = LayoutChoice(
                base=base, pattern=pattern, wires=WireConfig()
            )

    def _place(self, result: FlowResult, bindings) -> Placement:
        blocks = []
        for binding in bindings:
            choice = result.choices[binding.name]
            primitive = binding.primitive
            report = result.reports.get(primitive.name)
            options: list[tuple[int, int]] = []
            if report is not None:
                for opt in report.placer_options():
                    options.append((opt.layout.width, opt.layout.height))
            if not options:
                layout = primitive.generate(
                    choice.base, choice.pattern, choice.wires, verify=False
                )
                options = [(layout.width, layout.height)]
            nets = [n for n in binding.port_map.values() if not is_ground(n)]
            blocks.append(Block(name=binding.name, options=options, nets=nets))
        placer = SaPlacer(blocks, seed=self.seed)
        placement = placer.place(iterations=self.placer_iterations)
        result.placement = placement

        # Placement may pick a different option (aspect-ratio bin) than
        # the minimum-cost one; honor its choice.
        for binding in bindings:
            report = result.reports.get(binding.primitive.name)
            if report is None:
                continue
            placer_options = report.placer_options()
            idx = placement.chosen_option[binding.name]
            if idx < len(placer_options):
                chosen = placer_options[idx]
                result.choices[binding.name] = LayoutChoice(
                    base=chosen.base, pattern=chosen.pattern, wires=chosen.wires
                )
        return placement

    def _place_rows(self, result: FlowResult, bindings, rows: list[list[str]]) -> None:
        """Deterministic row placement from a circuit's floorplan hint."""
        sizes: dict[str, tuple[int, int]] = {}
        for binding in bindings:
            choice = result.choices[binding.name]
            layout = binding.primitive.generate(
                choice.base, choice.pattern, choice.wires, verify=False
            )
            sizes[binding.name] = (layout.width, layout.height)
        spacing = 200
        positions: dict[str, tuple[int, int]] = {}
        y = 0
        total_width = 0
        for row in rows:
            x = 0
            row_height = 0
            for name in row:
                w, h = sizes[name]
                positions[name] = (x, y)
                x += w + spacing
                row_height = max(row_height, h)
            total_width = max(total_width, x)
            y += row_height + spacing
        hpwl = 0.0
        result.placement = Placement(
            positions=positions,
            chosen_option={name: 0 for name in positions},
            width=total_width,
            height=y,
            hpwl=hpwl,
        )

    def _global_route(
        self, result: FlowResult, circuit, bindings
    ) -> dict[str, GlobalRoute]:
        placement = result.placement
        assert placement is not None
        router = GlobalRouter(
            width=max(placement.width, 2000),
            height=max(placement.height, 2000),
        )
        pins: dict[str, list[tuple[int, int]]] = {}
        for binding in bindings:
            x, y = placement.positions[binding.name]
            block_opt = result.choices[binding.name]
            layout = binding.primitive.generate(
                block_opt.base, block_opt.pattern, block_opt.wires, verify=False
            )
            cx, cy = x + layout.width // 2, y + layout.height // 2
            for port, net in binding.port_map.items():
                if is_ground(net) or net.endswith("!"):
                    # Power nets are routed manually (outside the
                    # methodology, as in the paper).
                    continue
                pins.setdefault(net, []).append((cx, cy))
        routes: dict[str, GlobalRoute] = {}
        for net, pin_list in pins.items():
            if len(pin_list) < 2:
                continue
            routes[net] = router.route_net(net, pin_list)
        return routes

    def _port_optimization(
        self,
        result: FlowResult,
        circuit,
        bindings,
        routes: dict[str, GlobalRoute],
        stats: kernel.SolverStats | None = None,
    ) -> None:
        from repro.core.port_constraints import derive_port_constraint

        journal = None
        if self.run_dir is not None:
            journal = SweepJournal(
                Path(self.run_dir) / "ports.jsonl", resume=self.resume
            )
        runtime = ParallelEvalRuntime(
            policy=self.policy,
            journal=journal,
            failures=result.failures,
            cache=self.cache,
            jobs=self.jobs,
            batch=self.batch,
        )

        constraints_by_net: dict[str, list[PortConstraint]] = {}
        constraint_cache: dict[tuple[str, str], PortConstraint] = {}
        # (primitive.name, port) -> what a gap re-simulation needs.
        sim_context: dict[tuple[str, str], tuple] = {}

        for binding in bindings:
            primitive = binding.primitive
            choice = result.choices[binding.name]
            sym_lookup: dict[str, tuple[str, ...]] = {}
            for group in binding.symmetric_ports:
                for port in group:
                    sym_lookup[port] = tuple(p for p in group if p != port)

            for port in binding.ports_to_optimize():
                net = binding.port_map.get(port)
                if net is None or net not in routes:
                    continue
                key = (primitive.name, port)
                if key in constraint_cache:
                    constraint = constraint_cache[key]
                else:
                    dut = primitive.extract(
                        primitive.generate(
                            choice.base, choice.pattern, choice.wires,
                            verify=False,
                        ),
                        choice.base,
                    ).build_circuit()
                    info = routes[net].to_route_info(
                        self.tech, symmetric_with=sym_lookup.get(port, ())
                    )
                    info = GlobalRouteInfo(
                        net=port,
                        layer=info.layer,
                        length_nm=info.length_nm,
                        via_cuts=info.via_cuts,
                        via_resistance=info.via_resistance,
                        symmetric_with=sym_lookup.get(port, ()),
                    )
                    constraint, _sims = derive_port_constraint(
                        primitive, dut, info, max_wires=self.max_wires,
                        runtime=runtime,
                    )
                    constraint_cache[key] = constraint
                    sim_context[key] = (primitive, dut, info)
                constraints_by_net.setdefault(net, []).append(constraint)

        resimulated = self._reconcile_resims(
            runtime, constraints_by_net, sim_context
        )

        def gap_cost(constraint: PortConstraint, wires: int) -> float:
            try:
                return constraint.cost_at(wires)
            except OptimizationError:
                pass
            return resimulated.get(
                (constraint.primitive_name, constraint.net, wires),
                float("inf"),
            )

        for net, constraints in constraints_by_net.items():
            result.reconciled[net] = reconcile_net(
                net, constraints, cost_at=gap_cost, failures=result.failures
            )

        for net, route in routes.items():
            n_wires = result.reconciled[net].wires if net in result.reconciled else 1
            result.route_budgets[net] = RouteBudget(
                route=route.to_route_info(self.tech), n_wires=n_wires
            )

        # Realize the reconciled counts as parallel-wire bundles — the
        # constraint handoff to the detailed router.  Symmetric port
        # pairs that landed on different top nets stay matched.
        from repro.pnr.detailed import realize_routes

        matched_pairs: list[tuple[str, str]] = []
        for binding in bindings:
            for group in binding.symmetric_ports:
                if len(group) != 2:
                    continue
                net_a = binding.port_map.get(group[0])
                net_b = binding.port_map.get(group[1])
                if (
                    net_a in routes
                    and net_b in routes
                    and net_a != net_b
                    and (net_a, net_b) not in matched_pairs
                    and (net_b, net_a) not in matched_pairs
                ):
                    matched_pairs.append((net_a, net_b))
        counts = {net: budget.n_wires for net, budget in result.route_budgets.items()}
        result.detailed_routes = realize_routes(
            routes, counts, self.tech, matched_pairs
        )
        if stats is not None:
            stats.merge(runtime.solver_stats)

    def _reconcile_resims(
        self,
        runtime: ParallelEvalRuntime,
        constraints_by_net: dict[str, list[PortConstraint]],
        sim_context: dict[tuple[str, str], tuple],
    ) -> dict[tuple[str, str, int], float]:
        """Batch the gap re-simulations reconciliation will need.

        ``reconcile_net``'s non-overlap search reads the cost of every
        gap wire count for every constraint on the net; counts a
        constraint never explored (or whose sweep point failed) would
        otherwise silently score ``inf``.  The paper's Algorithm 2
        re-simulates them — all such points across all nets are
        independent, so they dispatch as one batch.  Returns
        ``(primitive, port, wires) -> cost``.
        """
        from repro.core.port_constraints import route_point_task

        tasks = []
        order: list[tuple[str, str, int]] = []
        seen: set[tuple[str, str, int]] = set()
        for net, constraints in constraints_by_net.items():
            if intervals_overlap(constraints):
                continue
            lo, hi = gap_range(constraints)
            for wires in range(lo, hi + 1):
                for constraint in constraints:
                    ckey = (constraint.primitive_name, constraint.net, wires)
                    if ckey in seen:
                        continue
                    try:
                        constraint.cost_at(wires)
                        continue  # explored during the port sweep
                    except OptimizationError:
                        pass
                    context = sim_context.get(ckey[:2])
                    if context is None:
                        continue
                    seen.add(ckey)
                    primitive, dut, info = context
                    tasks.append(
                        route_point_task(
                            primitive,
                            dut,
                            info,
                            wires,
                            cache=runtime.cache,
                            key_prefix="recon",
                        )
                    )
                    order.append(ckey)
        resimulated: dict[tuple[str, str, int], float] = {}
        if not tasks:
            return resimulated
        batch = runtime.evaluate_batch(tasks, stage="reconcile")
        for index, ckey in enumerate(order):
            point = batch.consume(index)
            resimulated[ckey] = (
                float(point["cost"]) if point is not None else float("inf")
            )
        return resimulated

    def _verify_assembly(self, result: FlowResult, bindings) -> None:
        """Statically verify the chosen cells and their placement.

        Every unique (primitive, sizing, pattern, wires) layout gets a
        full spec-based DRC + connectivity + constraint pass, and each
        unique primitive's schematic reference is ERC-checked once; the
        placed instances are then checked for overlaps and flattened
        for a structural pass over the merged geometry (shorts,
        floating vias).  Realized parallel-wire routes are checked
        against their budgets and matched partners, and against the
        static EM limits: each top net's worst-case current is the sum
        of the declared budgets its connected primitives could push
        through their ports, and the realized bundle must carry it
        (``EM-ROUTE-DENSITY``).  The merged report (with waivers
        applied) lands on ``FlowResult.verification``; in strict mode
        any unwaived error raises.
        """
        merged = Report(target=f"{result.circuit_name}:{result.flavor}")
        layouts: dict[str, Layout] = {}
        seen: set[tuple] = set()
        erc_seen: set[str] = set()
        for binding in bindings:
            choice = result.choices[binding.name]
            primitive = binding.primitive
            layout = primitive.generate(
                choice.base, choice.pattern, choice.wires, verify=False
            )
            layouts[binding.name] = layout
            if primitive.name not in erc_seen:
                erc_seen.add(primitive.name)
                merged.merge(verify_circuit(primitive.schematic_circuit()))
            key = (
                primitive.name,
                choice.base,
                choice.pattern,
                repr(choice.wires),
            )
            if key not in seen:
                seen.add(key)
                spec = primitive.cell_spec(choice.base)
                merged.merge(verify_layout(layout, self.tech, spec=spec))
        placement = result.placement
        if placement is not None:
            instances = [
                Instance(
                    name=binding.name,
                    layout=layouts[binding.name],
                    offset=Point(*placement.positions[binding.name]),
                )
                for binding in bindings
            ]
            merged.merge(
                verify_assembly(
                    f"{result.circuit_name}_assembly", instances, self.tech
                )
            )
        if result.detailed_routes:
            budgets = {
                net: budget.n_wires
                for net, budget in result.route_budgets.items()
            }
            merged.merge(
                check_route_parallelism(
                    result.detailed_routes,
                    budgets,
                    target=f"{result.circuit_name}_routes",
                )
            )
            audit = AuditTech.for_technology(self.tech)
            currents: dict[str, float] = {}
            for binding in bindings:
                local = budget_net_currents(layouts[binding.name], audit)
                for port, top_net in sorted(binding.port_map.items()):
                    amps = local.get(port, 0.0)
                    if amps > 0.0:
                        currents[top_net] = currents.get(top_net, 0.0) + amps
            merged.merge(
                check_route_currents(
                    result.detailed_routes,
                    currents,
                    self.tech,
                    audit=audit,
                    target=f"{result.circuit_name}_routes",
                )
            )
        merged.apply_waivers(self.waivers)
        result.verification = merged
        if self.strict:
            merged.raise_if_errors()

    def _model_runtime(self, result: FlowResult) -> float:
        """Paper-style runtime: 10 s per parallel stage plus P&R time."""
        total = 0.0
        for report in result.reports.values():
            total += report.effective_time
        total += 15.0  # placement
        total += 5.0  # global routing
        if result.reconciled:
            total += PAPER_SIM_TIME  # port-optimization batch
        return total
