"""Flow-result serialization.

Writes a :class:`~repro.flow.hierarchical.FlowResult` as a JSON document
— the artifact a downstream team would archive per flow run: layout
decisions, tuned wire configurations, port-constraint intervals,
reconciled route counts, measured metrics and runtime accounting.
"""

from __future__ import annotations

import json
from typing import Any

from repro.flow.hierarchical import FlowResult


def flow_result_to_dict(result: FlowResult) -> dict[str, Any]:
    """Reduce a flow result to JSON-serializable data."""
    doc: dict[str, Any] = {
        "circuit": result.circuit_name,
        "flavor": result.flavor,
        "metrics": dict(result.metrics),
        "wall_time_s": result.wall_time,
        "modeled_runtime_s": result.modeled_runtime,
        "choices": {},
        "routes": {},
        "reconciled": {},
        "primitives": {},
    }
    for name, choice in result.choices.items():
        doc["choices"][name] = {
            "nfin": choice.base.nfin,
            "nf": choice.base.nf,
            "m": choice.base.m,
            "pattern": choice.pattern,
            "wires": dict(choice.wires.parallel),
            "dummies": choice.wires.dummies,
        }
    for net, budget in result.route_budgets.items():
        doc["routes"][net] = {
            "layer": budget.route.layer,
            "length_nm": budget.route.length_nm,
            "n_wires": budget.n_wires,
        }
    for net, rec in result.reconciled.items():
        doc["reconciled"][net] = {
            "wires": rec.wires,
            "overlapped": rec.overlapped,
            "constraints": [
                {
                    "primitive": c.primitive_name,
                    "net": c.net,
                    "w_min": c.w_min,
                    "w_max": c.w_max,
                }
                for c in rec.constraints
            ],
        }
    if result.placement is not None:
        doc["placement"] = {
            "width_nm": result.placement.width,
            "height_nm": result.placement.height,
            "hpwl_nm": result.placement.hpwl,
            "positions": {
                name: list(pos)
                for name, pos in result.placement.positions.items()
            },
        }
    for name, report in result.reports.items():
        doc["primitives"][name] = {
            "options_evaluated": len(report.options),
            "total_simulations": report.total_simulations,
            "effective_time_s": report.effective_time,
            "best": {
                "cost": report.best.cost,
                "deviations_pct": dict(report.best.breakdown.deviations),
            },
        }
        if report.solver_profile:
            doc["primitives"][name]["solver_profile"] = dict(
                report.solver_profile
            )
    if result.solver_profile:
        doc["solver_profile"] = dict(result.solver_profile)
    return doc


def write_flow_report(result: FlowResult, path: str) -> None:
    """Write the flow report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(flow_result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
