"""Layout geometry primitives.

Integer-nanometre rectilinear geometry: :class:`~repro.geometry.shapes.Point`,
:class:`~repro.geometry.shapes.Rect` and the layout container classes
(:class:`~repro.geometry.layout.Layout`, wires, vias, ports, device
placements) that the primitive cell generator emits and the extractor and
placer consume.
"""

from repro.geometry.shapes import Point, Rect, bounding_box
from repro.geometry.layout import (
    DevicePlacement,
    Instance,
    Layout,
    Port,
    Via,
    Wire,
    flatten_instances,
)

__all__ = [
    "Point",
    "Rect",
    "bounding_box",
    "Wire",
    "Via",
    "Port",
    "DevicePlacement",
    "Instance",
    "Layout",
    "flatten_instances",
]
