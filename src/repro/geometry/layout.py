"""Layout container classes.

A :class:`Layout` is what the primitive cell generator produces: device
placements, wires, vias and ports, all in cell-local integer-nanometre
coordinates.  The extractor walks these shapes; the placer treats layouts
as black boxes with a bounding box and ports; assembled blocks reference
child layouts through :class:`Instance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LayoutError
from repro.geometry.shapes import Point, Rect, bounding_box


@dataclass(frozen=True)
class Wire:
    """A rectangular wire segment on a metal layer.

    Attributes:
        net: Net name the wire belongs to.
        layer: Metal layer name (e.g. ``"M2"``).
        rect: Geometry (nm).
        role: Structural tag used by extraction, one of
            ``"finger_stub"``, ``"strap"`` (horizontal row strap),
            ``"rail"`` (vertical trunk) or ``"route"``.
        owner: For finger stubs and straps, the schematic device (and
            terminal, as ``"MA.s"``) the shape serves; empty for shared
            shapes such as rails.
    """

    net: str
    layer: str
    rect: Rect
    role: str = "route"
    owner: str = ""

    @property
    def length(self) -> int:
        """The long dimension of the wire (nm)."""
        return max(self.rect.width, self.rect.height)

    @property
    def width(self) -> int:
        """The short dimension of the wire (nm)."""
        return min(self.rect.width, self.rect.height)


@dataclass(frozen=True)
class Via:
    """A via (or via array) between two adjacent metal layers."""

    net: str
    lower_layer: str
    upper_layer: str
    position: Point
    cuts: int = 1

    def __post_init__(self) -> None:
        if self.cuts < 1:
            raise LayoutError("via needs at least one cut")


@dataclass(frozen=True)
class Port:
    """An externally-visible pin of a layout."""

    net: str
    layer: str
    rect: Rect


@dataclass(frozen=True)
class DevicePlacement:
    """Placement record for one transistor (one (nfin x nf) unit).

    Attributes:
        device: Schematic device name this unit belongs to (e.g. ``"M1"``).
        unit_index: Which of the device's ``m`` units this is.
        rect: Active-area footprint (nm), excluding dummies.
        nfin: Fins per finger.
        nf: Active fingers in this unit.
        dummy_fingers: Dummy gates on each side of this unit (extend the
            diffusion and relax the LOD effect).
        flipped: True if mirrored horizontally (common-centroid style).
    """

    device: str
    unit_index: int
    rect: Rect
    nfin: int
    nf: int
    dummy_fingers: int = 0
    flipped: bool = False


@dataclass
class Layout:
    """A generated cell layout.

    Attributes:
        name: Cell name.
        devices: Transistor unit placements.
        wires: Wire shapes.
        vias: Via shapes.
        ports: External pins.
        well_rect: The well boundary (used for WPE extraction); defaults
            to the bounding box expanded by the well enclosure.
        metadata: Free-form annotations (pattern name, variant parameters).
    """

    name: str
    devices: list[DevicePlacement] = field(default_factory=list)
    wires: list[Wire] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)
    ports: list[Port] = field(default_factory=list)
    well_rect: Rect | None = None
    metadata: dict = field(default_factory=dict)

    def bbox(self) -> Rect:
        """Bounding box over all shapes, including via positions.

        Vias are points, so each contributes a degenerate rectangle; a
        via placed at the cell edge therefore cannot sit outside the
        reported bounding box even if no wire reaches it.
        """
        rects = [d.rect for d in self.devices]
        rects += [w.rect for w in self.wires]
        rects += [p.rect for p in self.ports]
        rects += [Rect(v.position.x, v.position.y, v.position.x, v.position.y)
                  for v in self.vias]
        if not rects:
            raise LayoutError(f"layout {self.name!r} is empty")
        return bounding_box(rects)

    @property
    def width(self) -> int:
        return self.bbox().width

    @property
    def height(self) -> int:
        return self.bbox().height

    @property
    def area(self) -> int:
        return self.bbox().area

    @property
    def aspect_ratio(self) -> float:
        """Bounding-box width / height."""
        return self.bbox().aspect_ratio

    def wires_on_net(self, net: str) -> list[Wire]:
        """All wire shapes belonging to ``net``."""
        return [w for w in self.wires if w.net == net]

    def vias_on_net(self, net: str) -> list[Via]:
        """All vias belonging to ``net``."""
        return [v for v in self.vias if v.net == net]

    def port(self, net: str) -> Port:
        """The port for ``net`` (first if several)."""
        for port in self.ports:
            if port.net == net:
                return port
        raise LayoutError(f"layout {self.name!r} has no port on net {net!r}")

    def port_nets(self) -> list[str]:
        """Names of all nets with ports, in declaration order."""
        seen: list[str] = []
        for port in self.ports:
            if port.net not in seen:
                seen.append(port.net)
        return seen

    def nets(self) -> list[str]:
        """All net names referenced by wires, vias or ports, sorted.

        Vias count: a net carried only by vias (as a corrupted or
        partially assembled layout can have) must still be visible to
        extraction and verification.
        """
        names = {w.net for w in self.wires} | {p.net for p in self.ports}
        names |= {v.net for v in self.vias}
        return sorted(names)


@dataclass(frozen=True)
class Instance:
    """A placed reference to a child layout inside an assembled block."""

    name: str
    layout: Layout
    offset: Point
    flipped_x: bool = False

    def placed_bbox(self) -> Rect:
        """The child's bounding box in parent coordinates."""
        box = self.layout.bbox()
        return box.translated(self.offset.x - box.x0, self.offset.y - box.y0)

    def port_center(self, net: str) -> Point:
        """Center of the child's port for ``net``, in parent coordinates."""
        box = self.layout.bbox()
        port = self.layout.port(net)
        center = port.rect.center
        local_x = center.x - box.x0
        if self.flipped_x:
            local_x = box.width - local_x
        return Point(self.offset.x + local_x, self.offset.y + (center.y - box.y0))


def flatten_instances(
    name: str,
    instances: list[Instance],
    net_map: dict[str, dict[str, str]] | None = None,
) -> Layout:
    """Flatten placed instances into one merged :class:`Layout`.

    Every child shape is transformed into parent coordinates (honoring
    ``flipped_x``) with net names rewritten through ``net_map`` — the
    per-instance mapping of child net to parent net.  Unmapped nets are
    prefixed ``"<instance>/<net>"`` so block-local names (two children
    both calling a net ``"d"``) cannot alias in the parent.

    Args:
        name: Name of the flattened layout.
        instances: Placed children.
        net_map: ``{instance_name: {child_net: parent_net}}``; missing
            instances or nets fall back to prefixing.

    Returns:
        A layout with all child devices, wires, vias and ports merged;
        the well rectangle is the union of the children's wells.
    """
    from dataclasses import replace as _replace

    merged = Layout(name=name)
    net_map = net_map or {}
    for inst in instances:
        child = inst.layout
        box = child.bbox()
        mapping = net_map.get(inst.name, {})

        def xf_rect(rect: Rect, *, _box=box, _inst=inst) -> Rect:
            x0, x1 = rect.x0 - _box.x0, rect.x1 - _box.x0
            if _inst.flipped_x:
                x0, x1 = _box.width - x1, _box.width - x0
            return Rect(
                _inst.offset.x + x0,
                _inst.offset.y + (rect.y0 - _box.y0),
                _inst.offset.x + x1,
                _inst.offset.y + (rect.y1 - _box.y0),
            )

        def xf_point(p: Point, *, _box=box, _inst=inst) -> Point:
            x = p.x - _box.x0
            if _inst.flipped_x:
                x = _box.width - x
            return Point(_inst.offset.x + x, _inst.offset.y + (p.y - _box.y0))

        def xf_net(net: str, *, _inst=inst, _mapping=mapping) -> str:
            return _mapping.get(net, f"{_inst.name}/{net}")

        for dev in child.devices:
            merged.devices.append(
                _replace(dev, device=f"{inst.name}/{dev.device}",
                         rect=xf_rect(dev.rect))
            )
        for wire in child.wires:
            owner = f"{inst.name}/{wire.owner}" if wire.owner else ""
            merged.wires.append(
                _replace(wire, net=xf_net(wire.net), rect=xf_rect(wire.rect),
                         owner=owner)
            )
        for via in child.vias:
            merged.vias.append(
                _replace(via, net=xf_net(via.net),
                         position=xf_point(via.position))
            )
        for port in child.ports:
            merged.ports.append(
                _replace(port, net=xf_net(port.net), rect=xf_rect(port.rect))
            )
        if child.well_rect is not None:
            well = xf_rect(child.well_rect)
            merged.well_rect = (
                well if merged.well_rect is None else merged.well_rect.union(well)
            )
    return merged
