"""Points and axis-aligned rectangles in integer nanometres."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import LayoutError


@dataclass(frozen=True, order=True)
class Point:
    """A point on the layout grid (nm)."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """A copy moved by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[x0, x1] x [y0, y1]`` (nm).

    Degenerate (zero-width or zero-height) rectangles are allowed — they
    represent grid lines — but inverted ones are not.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(
                f"inverted rectangle ({self.x0},{self.y0})..({self.x1},{self.y1})"
            )

    @classmethod
    def from_size(cls, x: int, y: int, width: int, height: int) -> "Rect":
        """Build from lower-left corner plus size."""
        return cls(x, y, x + width, y + height)

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) // 2, (self.y0 + self.y1) // 2)

    @property
    def aspect_ratio(self) -> float:
        """Width / height; infinity for zero-height rectangles."""
        if self.height == 0:
            return float("inf")
        return self.width / self.height

    def translated(self, dx: int, dy: int) -> "Rect":
        """A copy moved by (dx, dy)."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def expanded(self, margin: int) -> "Rect":
        """A copy grown by ``margin`` on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share any point."""
        return not (
            self.x1 < other.x0
            or other.x1 < self.x0
            or self.y1 < other.y0
            or other.y1 < self.y0
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the open interiors overlap (touching edges don't count)."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a non-empty collection of rectangles."""
    rects = list(rects)
    if not rects:
        raise LayoutError("bounding box of an empty collection")
    box = rects[0]
    for rect in rects[1:]:
        box = box.union(rect)
    return box
