"""Raw-SPICE ingestion: parse → device graph → recognize → emit constraints.

This package is the static front door of the flow (ROADMAP item 3): it
takes an arbitrary ``.sp`` file in the :mod:`repro.io.spice_writer`
dialect (plus ``.subckt``/``X`` hierarchy, ``+`` continuation lines and
engineering suffixes), canonicalizes it into a typed bipartite device
graph, recognizes analog primitives (differential pairs, current
mirrors, cascodes, cross-coupled pairs, tail sources, inverters) via
deterministic subgraph matching, and emits the same matching/symmetry
constraint objects (:class:`~repro.cellgen.generator.CellSpec`) that
:mod:`repro.verify.constraints` checks and the optimizer consumes.

Coverage gaps and ambiguities surface as ``TOPO-*`` diagnostics through
the shared rule registry, so ingest results participate in the waiver
baseline like every other static pass.  The whole pipeline is pure and
byte-deterministic: the same netlist text always yields the same JSON.
"""

from repro.ingest.emit import EmittedPrimitive, LibraryBinding
from repro.ingest.graph import DeviceGraph, DeviceNode, build_device_graph
from repro.ingest.parser import parse_spice, parse_spice_file, parse_spice_value
from repro.ingest.pipeline import IngestResult, IngestedCircuit, ingest_netlist
from repro.ingest.recognize import TopologyMatch, recognize

__all__ = [
    "DeviceGraph",
    "DeviceNode",
    "EmittedPrimitive",
    "IngestResult",
    "IngestedCircuit",
    "LibraryBinding",
    "TopologyMatch",
    "build_device_graph",
    "ingest_netlist",
    "parse_spice",
    "parse_spice_file",
    "parse_spice_value",
    "recognize",
]
