"""Constraint emission: topology matches → `CellSpec` + library bindings.

Each :class:`~repro.ingest.recognize.TopologyMatch` becomes an
:class:`EmittedPrimitive` carrying

* a :class:`~repro.cellgen.generator.CellSpec` built from the *parsed*
  device sizings — the same matching/symmetry constraint object that
  :func:`repro.verify.constraints.run_constraints` checks and the cell
  generator consumes, and
* optionally a :class:`LibraryBinding` naming the
  :mod:`repro.primitives.library` family the match corresponds to, with
  the port map translated to the netlist's real nets — the hook that
  lets ``repro flow --netlist`` optimize a recognized structure exactly
  like a hand-annotated one.

Size consistency is enforced here: all devices of a matched group must
share one unit sizing (nfin, nf); the multiplier ``m`` may differ only
for ratioed patterns (mirrors).  Violations emit ``TOPO-ASYM-SIZE``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cellgen.generator import CellDevice, CellSpec
from repro.devices.mosfet import MosGeometry
from repro.ingest.graph import DeviceGraph, is_supply
from repro.ingest.recognize import TopologyMatch
from repro.spice.elements import Mosfet
from repro.verify.diagnostics import Report


@dataclass(frozen=True)
class LibraryBinding:
    """Mapping of a recognized structure onto a primitive-library family.

    Attributes:
        family: Library family name (``"differential_pair"``, ...).
        base_fins: Total fins of the unit device (``nfin * nf * m``).
        ratio: Mirror output ratio (1 when not applicable).
        port_map: Library port net → actual netlist net.
    """

    family: str
    base_fins: int
    ratio: int
    port_map: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class EmittedPrimitive:
    """One recognized primitive with its emitted constraints.

    Attributes:
        name: Deterministic instance name (``"u0_differential_pair"``).
        match: The underlying topology match.
        spec: Constraint object for the cell generator / CONST checks;
            ``None`` when the match has no matched group (inverters).
        binding: Library mapping, or ``None`` when no generator family
            realizes this structure (reported as ``TOPO-NO-GENERATOR``).
    """

    name: str
    match: TopologyMatch
    spec: CellSpec | None
    binding: LibraryBinding | None


#: (pattern kind, polarity) → library family.
_FAMILIES: dict[tuple[str, str], str] = {
    ("differential_pair", "n"): "differential_pair",
    ("differential_pair", "p"): "pmos_differential_pair",
    ("cross_coupled_pair", "n"): "cross_coupled_pair",
    ("cross_coupled_pair", "p"): "pmos_cross_coupled_pair",
    ("current_mirror", "n"): "current_mirror",
    ("current_mirror", "p"): "pmos_current_mirror",
    ("cascode_current_mirror", "n"): "cascode_current_mirror",
    ("cascode_stack", "n"): "cascode_current_source",
    ("current_source", "n"): "current_source",
    ("current_source", "p"): "pmos_current_source",
    ("diode_device", "n"): "diode_load",
}

#: Library port net → pattern net variable, per (kind, polarity).
_PORT_VARS: dict[tuple[str, str], dict[str, str]] = {
    ("differential_pair", "n"): {
        "outp": "outp", "outn": "outn", "inp": "inp", "inn": "inn",
        "tail": "tail",
    },
    ("differential_pair", "p"): {
        "outp": "outp", "outn": "outn", "inp": "inp", "inn": "inn",
        "tail": "tail", "vdd!": "@bulk",
    },
    ("cross_coupled_pair", "n"): {
        "outp": "outp", "outn": "outn", "tail": "tail",
    },
    ("cross_coupled_pair", "p"): {
        "outp": "outp", "outn": "outn", "vdd!": "tail",
    },
    ("current_mirror", "n"): {"in": "in", "out": "out"},
    ("current_mirror", "p"): {"in": "in", "out": "out", "vdd!": "rail"},
    ("cascode_current_mirror", "n"): {"in": "in", "out": "out"},
    ("cascode_stack", "n"): {"out": "out", "vb": "vb", "vc": "vc"},
    ("current_source", "n"): {"out": "out", "vb": "vb"},
    ("current_source", "p"): {"out": "out", "vb": "vb", "vdd!": "rail"},
    ("diode_device", "n"): {"out": "out"},
}


def _unit_geometry(devices: list[Mosfet]) -> tuple[int, int] | None:
    """Shared unit sizing (nfin, nf) of a group, or ``None`` if mixed."""
    units = {(d.geometry.nfin, d.geometry.nf) for d in devices}
    return units.pop() if len(units) == 1 else None


def _mirror_ratio(match: TopologyMatch, mosfets: dict[str, Mosfet]) -> int:
    """Output/reference multiplier ratio; 0 when not an integer ratio."""
    ref = mosfets[match.device_of("MREF")]
    outs = [mosfets[name] for role, name in match.devices
            if role.startswith("MOUT")]
    ratios = {out.geometry.m / ref.geometry.m for out in outs}
    if len(ratios) != 1:
        return 0
    ratio = ratios.pop()
    return int(ratio) if ratio >= 1 and ratio == int(ratio) else 0


def emit_constraints(
    match: TopologyMatch,
    index: int,
    graph: DeviceGraph,
    report: Report,
) -> EmittedPrimitive:
    """Convert one match into constraints, flagging size inconsistencies.

    Args:
        match: The accepted topology match.
        index: Canonical match index (names the emitted primitive).
        graph: The device graph (for Mosfet lookup and port analysis).
        report: Diagnostics sink for ``TOPO-ASYM-SIZE`` /
            ``TOPO-NO-GENERATOR`` findings.
    """
    name = match.label(index)
    mosfets: dict[str, Mosfet] = {}
    for _, dev_name in match.devices:
        element = graph.device(dev_name).element
        assert isinstance(element, Mosfet)
        mosfets[dev_name] = element

    matched_names = tuple(
        match.device_of(role) for role in match.matched_roles
    )
    group = [mosfets[n] for n in matched_names]
    unit = _unit_geometry(group) if group else None
    if group and unit is None:
        report.flag(
            "TOPO-ASYM-SIZE",
            f"{match.kind} devices {', '.join(matched_names)} have "
            f"mixed unit sizings "
            f"{sorted((m.geometry.nfin, m.geometry.nf) for m in group)}",
            subject=name,
        )
    if group and not match.ratioed and len(
        {m.geometry.m for m in group}
    ) > 1:
        report.flag(
            "TOPO-ASYM-SIZE",
            f"{match.kind} devices {', '.join(matched_names)} have "
            f"mixed multipliers "
            f"{sorted(m.geometry.m for m in group)} but the pattern "
            f"is not ratioed",
            subject=name,
        )
        unit = None

    spec = _build_spec(name, match, mosfets, graph) if group else None
    binding = None
    if unit is not None:
        binding = _build_binding(match, mosfets, report, name)
    elif group:
        pass  # size errors already flagged; no binding is emitted
    else:
        report.flag(
            "TOPO-NO-GENERATOR",
            f"{match.kind} {name} has no matched group; recognized for "
            f"coverage only",
            subject=name,
        )
    return EmittedPrimitive(name=name, match=match, spec=spec,
                            binding=binding)


def _build_spec(
    name: str,
    match: TopologyMatch,
    mosfets: dict[str, Mosfet],
    graph: DeviceGraph,
) -> CellSpec:
    """The CellSpec for one match, from parsed geometry and real nets."""
    members = frozenset(mosfets)
    devices = []
    for _, dev_name in match.devices:
        mos = mosfets[dev_name]
        terminals = {"d": mos.d, "g": mos.g, "s": mos.s, "b": mos.b}
        devices.append(CellDevice(
            name=dev_name,
            polarity="n" if mos.card.polarity > 0 else "p",
            geometry=MosGeometry(
                mos.geometry.nfin, mos.geometry.nf, mos.geometry.m,
            ),
            terminals=terminals,
        ))
    port_nets = _external_nets(match, graph, members)
    sym_pairs = tuple(
        (a, b) for a, b in match.symmetric_nets if a != b
    )
    matched_names = tuple(
        match.device_of(role) for role in match.matched_roles
    )
    return CellSpec(
        name=name,
        devices=tuple(devices),
        matched_group=matched_names,
        port_nets=tuple(port_nets),
        symmetric_pairs=sym_pairs,
    )


def _external_nets(
    match: TopologyMatch,
    graph: DeviceGraph,
    members: frozenset[str],
) -> list[str]:
    """Nets of a match visible outside it (ports of the sub-block).

    Every net the pattern binds is a pin except ground and the
    pattern's declared-internal nodes (a cascode's mid net).  Graph
    attachment counts are deliberately not consulted: a differential
    pair's drain is a port even when nothing else connects to it yet.
    """
    internal = set(match.internal_nets) - set(graph.ports)
    external = []
    for _, net in match.nets:
        if net == "0" or net in internal or net in external:
            continue
        external.append(net)
    return external


def _build_binding(
    match: TopologyMatch,
    mosfets: dict[str, Mosfet],
    report: Report,
    name: str,
) -> LibraryBinding | None:
    """Map a size-consistent match onto a library family, if any."""
    key = (match.kind, match.polarity)
    family = _FAMILIES.get(key)
    port_vars = _PORT_VARS.get(key)
    if key == ("cross_coupled_pair", "p") and not is_supply(
        match.net("tail")
    ):
        # The library PMOS pair hard-wires its sources to the supply; a
        # p-type pair with a floating tail has no generator family.
        family = None
    if family is None or port_vars is None:
        report.flag(
            "TOPO-NO-GENERATOR",
            f"no library generator for {match.kind} "
            f"(polarity {match.polarity}); constraints emitted, flow "
            f"will not optimize it",
            subject=name,
        )
        return None
    if match.kind in ("current_mirror", "cascode_current_mirror") and len(
        [r for r, _ in match.devices if r.startswith("MOUT")]
    ) > 1:
        report.flag(
            "TOPO-NO-GENERATOR",
            f"multi-output mirror {name} exceeds the two-branch library "
            f"family; constraints emitted, flow will not optimize it",
            subject=name,
        )
        return None
    ratio = 1
    if match.ratioed:
        ratio = _mirror_ratio(match, mosfets)
        if ratio == 0:
            report.flag(
                "TOPO-ASYM-SIZE",
                f"mirror {name} output/reference multiplier ratio is "
                f"not a positive integer",
                subject=name,
            )
            return None
    ref_name = match.device_of(match.matched_roles[0])
    base = mosfets[ref_name].geometry
    base_fins = base.nfin * base.nf * base.m
    port_map = []
    bulk = next(iter(mosfets.values())).b
    for lib_port, var in port_vars.items():
        actual = bulk if var == "@bulk" else match.net(var)
        port_map.append((lib_port, actual))
    return LibraryBinding(
        family=family,
        base_fins=base_fins,
        ratio=ratio,
        port_map=tuple(port_map),
    )
