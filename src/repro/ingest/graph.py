"""Typed bipartite device graph with deterministic canonical ordering.

The recognizer does not walk :class:`~repro.spice.netlist.Circuit`
directly; it works on a :class:`DeviceGraph` — devices on one side,
nets on the other, edges labeled by terminal (``d``/``g``/``s``/``b``
for MOS, ``a``/``b``/``plus``/``minus``/... for the rest).  Ground
spellings are folded to ``"0"`` so patterns need only one rail test.

Canonicalization uses Weisfeiler–Leman color refinement: nodes start
from a structural color (device kind + sizing class, or net rail kind +
terminal-degree profile) and iteratively absorb the sorted multiset of
``(edge label, neighbor color)`` pairs.  The final ordering sorts by
``(color history, name)``, which makes every downstream pass — match
enumeration, tie-breaking, JSON output — independent of the order in
which elements were added to the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit, is_ground


def is_supply(net: str) -> bool:
    """True for supply-rail spellings (the repo convention: ``...!``)."""
    return net.endswith("!") and not is_ground(net)


def canonical_net(net: str) -> str:
    """Fold every ground spelling to ``"0"``; other nets pass through."""
    return "0" if is_ground(net) else net


def _terminals(elem: Element) -> tuple[tuple[str, str], ...]:
    """Terminal-labeled connections of one element (label, net)."""
    if isinstance(elem, Mosfet):
        return (("d", elem.d), ("g", elem.g), ("s", elem.s), ("b", elem.b))
    if isinstance(elem, (Resistor, Capacitor, Inductor, CurrentSource)):
        return (("a", elem.a), ("b", elem.b))
    if isinstance(elem, VoltageSource):
        return (("plus", elem.plus), ("minus", elem.minus))
    if isinstance(elem, Vcvs):
        return (
            ("plus", elem.plus), ("minus", elem.minus),
            ("cp", elem.ctrl_plus), ("cm", elem.ctrl_minus),
        )
    return (
        ("a", elem.a), ("b", elem.b),
        ("cp", elem.ctrl_plus), ("cm", elem.ctrl_minus),
    )


_KINDS: tuple[tuple[type, str], ...] = (
    (Mosfet, "mos"),
    (Resistor, "res"),
    (Capacitor, "cap"),
    (Inductor, "ind"),
    (VoltageSource, "vsrc"),
    (CurrentSource, "isrc"),
    (Vcvs, "vcvs"),
    (Vccs, "vccs"),
)


@dataclass(frozen=True)
class DeviceNode:
    """One device in the graph.

    Attributes:
        name: Element name in the flattened circuit.
        kind: ``"nmos"``/``"pmos"`` for MOS, else the element class tag.
        terminals: ``(terminal, canonical net)`` pairs in fixed order.
        sizing: Structural sizing class — ``(nfin, nf, m)`` for MOS,
            ``()`` otherwise — used as part of the initial WL color so
            identically sized devices are indistinguishable a priori.
        element: The underlying circuit element.
    """

    name: str
    kind: str
    terminals: tuple[tuple[str, str], ...]
    sizing: tuple[int, ...]
    element: Element

    def net(self, terminal: str) -> str:
        """The canonical net on ``terminal``."""
        for label, net in self.terminals:
            if label == terminal:
                return net
        raise KeyError(f"device {self.name!r} has no terminal {terminal!r}")


class DeviceGraph:
    """The canonicalized bipartite device/net graph of one circuit.

    Attributes:
        devices: All devices in canonical order.
        nets: All nets in canonical order.
        ports: Declared circuit ports (canonical spelling).
    """

    def __init__(self, circuit: Circuit):
        nodes = []
        for elem in circuit.elements:
            if isinstance(elem, Mosfet):
                kind = "nmos" if elem.card.polarity > 0 else "pmos"
                sizing: tuple[int, ...] = (
                    elem.geometry.nfin, elem.geometry.nf, elem.geometry.m,
                )
            else:
                kind = next(tag for cls, tag in _KINDS if isinstance(elem, cls))
                sizing = ()
            terms = tuple(
                (label, canonical_net(net)) for label, net in _terminals(elem)
            )
            nodes.append(DeviceNode(elem.name, kind, terms, sizing, elem))
        self._by_name = {n.name: n for n in nodes}
        self.ports = tuple(canonical_net(p) for p in circuit.ports)
        self._on_net: dict[str, list[tuple[str, str]]] = {}
        for node in nodes:
            for label, net in node.terminals:
                self._on_net.setdefault(net, []).append((node.name, label))
        order = _canonical_order(nodes, self._on_net, self.ports)
        self.devices: tuple[DeviceNode, ...] = tuple(
            self._by_name[name] for name in order
        )
        self._rank = {n.name: i for i, n in enumerate(self.devices)}
        self.nets: tuple[str, ...] = tuple(
            sorted(
                self._on_net,
                key=lambda net: min(
                    (self._rank[d], t) for d, t in self._on_net[net]
                ),
            )
        )

    def device(self, name: str) -> DeviceNode:
        """Look up a device by element name."""
        return self._by_name[name]

    def rank(self, name: str) -> int:
        """Canonical index of a device (stable across input orderings)."""
        return self._rank[name]

    def on_net(self, net: str) -> tuple[tuple[str, str], ...]:
        """All ``(device, terminal)`` attachments of ``net``."""
        return tuple(sorted(self._on_net.get(net, ())))

    def mos_devices(self) -> tuple[DeviceNode, ...]:
        """MOS devices only, canonical order."""
        return tuple(d for d in self.devices if d.kind in ("nmos", "pmos"))

    def is_internal(self, net: str, members: frozenset[str]) -> bool:
        """True if every attachment of ``net`` is a device in ``members``."""
        attachments = self._on_net.get(net, [])
        return bool(attachments) and all(
            dev in members for dev, _ in attachments
        )


def _canonical_order(
    nodes: list[DeviceNode],
    on_net: dict[str, list[tuple[str, str]]],
    ports: tuple[str, ...],
) -> list[str]:
    """WL refinement → total device order, independent of input order."""
    by_name = {n.name: n for n in nodes}
    # Initial colors: structure only, never input order or names.
    dev_color: dict[str, tuple] = {
        n.name: (n.kind, n.sizing) for n in nodes
    }
    net_color: dict[str, tuple] = {}
    for net, attachments in on_net.items():
        profile = tuple(sorted(
            (by_name[dev].kind, label) for dev, label in attachments
        ))
        net_color[net] = (
            is_ground(net), is_supply(net), net in ports, profile,
        )
    history: dict[str, tuple] = {name: (dev_color[name],) for name in dev_color}
    for _ in range(max(len(nodes), 1)):
        new_net: dict[str, tuple] = {}
        for net, attachments in on_net.items():
            signature = tuple(sorted(
                (label, dev_color[dev]) for dev, label in attachments
            ))
            new_net[net] = (net_color[net], signature)
        new_dev: dict[str, tuple] = {}
        for node in nodes:
            signature = tuple(
                (label, new_net[net]) for label, net in node.terminals
            )
            new_dev[node.name] = (dev_color[node.name], signature)
        # Compress to ranks so tuples stay small across iterations.
        dev_rank = {c: i for i, c in enumerate(sorted(set(new_dev.values())))}
        net_rank = {c: i for i, c in enumerate(sorted(set(new_net.values())))}
        stabilized = len(dev_rank) == len(set(dev_color.values()))
        dev_color = {name: (dev_rank[c],) for name, c in new_dev.items()}
        net_color = {net: (net_rank[c],) for net, c in new_net.items()}
        for name in history:
            history[name] = history[name] + dev_color[name]
        if stabilized:
            break
    return sorted(dev_color, key=lambda name: (history[name], name))


def build_device_graph(circuit: Circuit) -> DeviceGraph:
    """Canonicalize ``circuit`` into a :class:`DeviceGraph`."""
    return DeviceGraph(circuit)
