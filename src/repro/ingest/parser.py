"""SPICE netlist parser: the exact inverse of :mod:`repro.io.spice_writer`.

Accepts the writer's dialect — R/C/L/V/I/E/G/M cards, PULSE/SIN/PWL/DC
waveforms, ``AC mag phase`` suffixes, ``nfin/nf/m`` FinFET sizing
parameters and ``dvth``/``kmu`` LDE annotations — plus the standard
structural extensions a hand-written netlist needs:

* ``.subckt NAME port...`` / ``.ends`` definitions and ``X`` instance
  cards, flattened through :meth:`~repro.spice.netlist.Circuit.instantiate`
  (internal nets become ``instance.node``, matching the repo convention),
* ``+`` continuation lines,
* engineering suffixes (``f p n u m k meg g t``, case-insensitive, with
  trailing unit letters tolerated: ``200f``, ``10k``, ``1.2meg``),
* ``*`` full-line and ``;`` inline comments, and the writer's
  ``* ports:`` / trailing ``* dvth=... kmu=...`` annotation comments,
  which round-trip back into :attr:`Circuit.ports` and
  :class:`~repro.devices.lde.LdeContext`.

Every syntax error raises :class:`~repro.errors.NetlistError` with a
``source:line:`` location so the message is actionable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin, Waveform
from repro.tech.pdk import Technology

#: Engineering suffix multipliers (``meg`` is checked before ``m``).
SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]*)\Z"
)
_WAVEFORM_RE = re.compile(r"\A(PULSE|SIN|PWL)\s*\((.*)\)\Z", re.IGNORECASE)
_LDE_RE = re.compile(
    r"\*\s*dvth=(?P<dvth>\S+)\s+kmu=(?P<kmu>\S+)\s*\Z"
)


def parse_spice_value(token: str, where: str = "") -> float:
    """Parse a SPICE number with optional engineering suffix.

    ``1e-15``, ``200f``, ``10k``, ``1.2meg`` and ``2.5pF`` (trailing
    unit letters after the suffix are ignored) all parse; anything else
    raises :class:`NetlistError`.
    """
    match = _NUMBER_RE.match(token.strip())
    if match is None:
        raise NetlistError(f"{where}invalid numeric value {token!r}")
    mantissa = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return mantissa
    if suffix.startswith("meg"):
        return mantissa * 1e6
    if suffix[0] in SUFFIXES:
        return mantissa * SUFFIXES[suffix[0]]
    raise NetlistError(
        f"{where}unknown engineering suffix {match.group(2)!r} "
        f"in value {token!r}"
    )


@dataclass(frozen=True)
class _Card:
    """One logical netlist line after continuation joining.

    Attributes:
        lineno: 1-based number of the first physical line.
        text: Joined card text with inline comments split off.
        comment: Inline ``*`` annotation tail (used for LDE recovery).
    """

    lineno: int
    text: str
    comment: str


@dataclass
class _Subckt:
    """A ``.subckt`` definition collected during the first pass."""

    name: str
    ports: list[str]
    cards: list[_Card]
    lineno: int


class _Parser:
    """Stateful single-file parser; one instance per :func:`parse_spice`."""

    def __init__(self, text: str, source: str, tech: Technology):
        self.source = source
        self.tech = tech
        self.cards = _logical_lines(text, source)
        self.subckts: dict[str, _Subckt] = {}
        self.top_cards: list[_Card] = []
        self.title: str | None = None
        self.top_ports: list[str] = []

    def where(self, card: _Card) -> str:
        """Location prefix for error messages."""
        return f"{self.source}:{card.lineno}: "

    # -- pass 1: structure ------------------------------------------------

    def split_structure(self) -> None:
        """Partition cards into subckt bodies and top-level cards."""
        current: _Subckt | None = None
        for card in self.cards:
            tokens = card.text.split()
            head = tokens[0].lower()
            if head == ".subckt":
                if current is not None:
                    raise NetlistError(
                        f"{self.where(card)}nested .subckt is not supported"
                    )
                if len(tokens) < 2:
                    raise NetlistError(
                        f"{self.where(card)}.subckt needs a name"
                    )
                name = tokens[1]
                if name in self.subckts:
                    raise NetlistError(
                        f"{self.where(card)}duplicate .subckt {name!r}"
                    )
                current = _Subckt(name, tokens[2:], [], card.lineno)
            elif head == ".ends":
                if current is None:
                    raise NetlistError(
                        f"{self.where(card)}.ends without .subckt"
                    )
                self.subckts[current.name] = current
                current = None
            elif head == ".end":
                break
            elif head in (".global", ".option", ".options"):
                continue  # accepted and ignored
            elif head.startswith("."):
                raise NetlistError(
                    f"{self.where(card)}unsupported control card {tokens[0]!r}"
                )
            elif current is not None:
                current.cards.append(card)
            else:
                self.top_cards.append(card)
        if current is not None:
            raise NetlistError(
                f"{self.source}:{current.lineno}: .subckt {current.name!r} "
                f"is never closed with .ends"
            )

    # -- pass 2: elaboration ----------------------------------------------

    def elaborate(self) -> Circuit:
        """Build the flattened top-level circuit."""
        self.split_structure()
        if self.top_cards:
            top = self._build("top", self.top_ports, self.top_cards, set())
            top.name = self.title or Path(self.source).stem or "top"
            return top
        if self.subckts:
            # No top-level elements: elaborate the last-defined subckt
            # as the design (the common convention for cell netlists).
            main = list(self.subckts.values())[-1]
            top = self._build(main.name, main.ports, main.cards, {main.name})
            return top
        raise NetlistError(f"{self.source}: netlist contains no elements")

    def _build(
        self,
        name: str,
        ports: list[str],
        cards: list[_Card],
        active: set[str],
    ) -> Circuit:
        """Build one (sub)circuit, recursively flattening X instances."""
        circuit = Circuit(name)
        circuit.ports = list(ports)
        for card in cards:
            kind = card.text[0].upper()
            if kind == "X":
                self._instance(circuit, card, active)
            else:
                self._element(circuit, card)
        return circuit

    def _instance(self, circuit: Circuit, card: _Card, active: set[str]) -> None:
        """Flatten one ``X`` card via :meth:`Circuit.instantiate`."""
        tokens = card.text.split()
        inst = tokens[0][1:]
        if not inst:
            raise NetlistError(f"{self.where(card)}X card needs a name")
        if len(tokens) < 2:
            raise NetlistError(
                f"{self.where(card)}X{inst}: missing subcircuit name"
            )
        sub_name = tokens[-1]
        nets = tokens[1:-1]
        sub = self.subckts.get(sub_name)
        if sub is None:
            raise NetlistError(
                f"{self.where(card)}X{inst}: unknown subcircuit "
                f"{sub_name!r} (defined: {sorted(self.subckts) or 'none'})"
            )
        if sub_name in active:
            raise NetlistError(
                f"{self.where(card)}X{inst}: recursive instantiation "
                f"of {sub_name!r}"
            )
        if len(nets) != len(sub.ports):
            raise NetlistError(
                f"{self.where(card)}X{inst}: {sub_name!r} has "
                f"{len(sub.ports)} ports ({' '.join(sub.ports)}) but "
                f"{len(nets)} nets were given"
            )
        child = self._build(sub_name, sub.ports, sub.cards, active | {sub_name})
        circuit.instantiate(child, inst, dict(zip(sub.ports, nets)))

    def _element(self, circuit: Circuit, card: _Card) -> None:
        """Parse one element card into ``circuit``."""
        tokens = card.text.split()
        kind = tokens[0][0].upper()
        name = tokens[0][1:]
        where = self.where(card)
        if not name:
            raise NetlistError(f"{where}element card needs a name")
        handler = {
            "R": self._two_terminal,
            "C": self._two_terminal,
            "L": self._two_terminal,
            "V": self._source,
            "I": self._source,
            "E": self._controlled,
            "G": self._controlled,
            "M": self._mosfet,
        }.get(kind)
        if handler is None:
            raise NetlistError(
                f"{where}unsupported element card {tokens[0]!r} "
                f"(expected R/C/L/V/I/E/G/M/X)"
            )
        handler(circuit, card, kind, name, tokens)

    def _two_terminal(
        self, circuit: Circuit, card: _Card, kind: str, name: str,
        tokens: list[str],
    ) -> None:
        """R / C / L cards: ``Rname a b value``."""
        where = self.where(card)
        if len(tokens) != 4:
            raise NetlistError(
                f"{where}{kind}{name}: expected 'a b value', "
                f"got {len(tokens) - 1} fields"
            )
        value = parse_spice_value(tokens[3], where)
        adder = {
            "R": circuit.add_resistor,
            "C": circuit.add_capacitor,
            "L": circuit.add_inductor,
        }[kind]
        adder(name, tokens[1], tokens[2], value)

    def _source(
        self, circuit: Circuit, card: _Card, kind: str, name: str,
        tokens: list[str],
    ) -> None:
        """V / I cards: nodes, waveform, optional ``AC mag [phase]``."""
        where = self.where(card)
        if len(tokens) < 3:
            raise NetlistError(f"{where}{kind}{name}: missing nodes")
        tail = " ".join(tokens[3:])
        waveform, ac_mag, ac_phase = _parse_source_tail(tail, where)
        adder = circuit.add_vsource if kind == "V" else circuit.add_isource
        adder(name, tokens[1], tokens[2], waveform, ac_mag, ac_phase)

    def _controlled(
        self, circuit: Circuit, card: _Card, kind: str, name: str,
        tokens: list[str],
    ) -> None:
        """E (VCVS) / G (VCCS) cards: four nodes plus a gain."""
        where = self.where(card)
        if len(tokens) != 6:
            raise NetlistError(
                f"{where}{kind}{name}: expected 'n+ n- nc+ nc- gain'"
            )
        gain = parse_spice_value(tokens[5], where)
        if kind == "E":
            circuit.add_vcvs(name, tokens[1], tokens[2], tokens[3],
                             tokens[4], gain)
        else:
            # The writer emits G cards as "b a cp cm": current flows
            # a -> b for positive gain, so undo the swap here.
            circuit.add_vccs(name, tokens[2], tokens[1], tokens[3],
                             tokens[4], gain)

    def _mosfet(
        self, circuit: Circuit, card: _Card, kind: str, name: str,
        tokens: list[str],
    ) -> None:
        """M cards: ``Mname d g s b model nfin=N nf=N m=N``."""
        where = self.where(card)
        if len(tokens) < 6:
            raise NetlistError(
                f"{where}M{name}: expected 'd g s b model nfin= nf= m='"
            )
        d, g, s, b, model = tokens[1:6]
        model_card = self.tech.card(_polarity(model, where))
        params = {"nfin": 0, "nf": 1, "m": 1}
        for token in tokens[6:]:
            if "=" not in token:
                raise NetlistError(
                    f"{where}M{name}: unexpected token {token!r} "
                    f"(expected key=value)"
                )
            key, _, value = token.partition("=")
            key = key.lower()
            if key not in params:
                raise NetlistError(
                    f"{where}M{name}: unknown parameter {key!r} "
                    f"(expected nfin/nf/m)"
                )
            params[key] = int(parse_spice_value(value, where))
        if params["nfin"] < 1:
            raise NetlistError(
                f"{where}M{name}: missing or non-positive nfin parameter"
            )
        lde = _parse_lde(card.comment, where)
        circuit.add_mosfet(
            name, d, g, s, b, model_card,
            MosGeometry(params["nfin"], params["nf"], params["m"]),
            lde=lde,
        )


def _polarity(model: str, where: str) -> str:
    """Map a model name to ``"n"``/``"p"`` for :meth:`Technology.card`."""
    key = model.lower()
    if key in ("nfet", "nmos", "n"):
        return "n"
    if key in ("pfet", "pmos", "p"):
        return "p"
    raise NetlistError(
        f"{where}unknown MOS model {model!r} (expected nfet/pfet)"
    )


def _parse_lde(comment: str, where: str) -> LdeContext:
    """Recover an LDE context from the writer's trailing annotation."""
    if not comment:
        return LdeContext()
    match = _LDE_RE.match(comment)
    if match is None:
        return LdeContext()
    return LdeContext(
        vth_shift=parse_spice_value(match.group("dvth"), where),
        mobility_factor=parse_spice_value(match.group("kmu"), where),
    )


def _parse_source_tail(
    tail: str, where: str
) -> tuple[Waveform, float, float]:
    """Parse a source card's waveform + optional AC specification."""
    ac_mag = 0.0
    ac_phase = 0.0
    match = re.search(r"\bAC\s+(\S+)(?:\s+(\S+))?\s*\Z", tail, re.IGNORECASE)
    if match is not None:
        ac_mag = parse_spice_value(match.group(1), where)
        if match.group(2) is not None:
            ac_phase = parse_spice_value(match.group(2), where)
        tail = tail[: match.start()].strip()
    if not tail:
        return Dc(0.0), ac_mag, ac_phase
    wave = _WAVEFORM_RE.match(tail.strip())
    if wave is None:
        tokens = tail.split()
        if tokens[0].lower() == "dc":
            tokens = tokens[1:]
        if len(tokens) != 1:
            raise NetlistError(
                f"{where}cannot parse source value {tail!r}"
            )
        return Dc(parse_spice_value(tokens[0], where)), ac_mag, ac_phase
    shape = wave.group(1).upper()
    args = [parse_spice_value(t, where) for t in wave.group(2).split()]
    if shape == "PULSE":
        if not 2 <= len(args) <= 7:
            raise NetlistError(f"{where}PULSE takes 2-7 arguments")
        return Pulse(*args), ac_mag, ac_phase
    if shape == "SIN":
        if not 3 <= len(args) <= 5:
            raise NetlistError(f"{where}SIN takes 3-5 arguments")
        return Sin(*args), ac_mag, ac_phase
    if len(args) < 2 or len(args) % 2:
        raise NetlistError(
            f"{where}PWL needs an even number of time/value arguments"
        )
    points = tuple(zip(args[0::2], args[1::2]))
    return Pwl(points=points), ac_mag, ac_phase


def _logical_lines(text: str, source: str) -> list[_Card]:
    """Join continuations, strip comments, keep inline annotations.

    The first ``*`` line becomes the title; a ``* ports:`` comment is
    preserved as a pseudo-card so the parser can restore declared ports.
    """
    cards: list[_Card] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("*"):
            cards.append(_Card(lineno, "", stripped))
            continue
        comment = ""
        # Inline annotation: " * dvth=... kmu=..." (writer) or "; ...".
        for marker in (" * ", ";", "$ "):
            idx = line.find(marker)
            if idx >= 0:
                comment = line[idx:].lstrip("; $")
                if marker == " * ":
                    comment = line[idx + 1:]
                line = line[:idx].rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("+"):
            if not cards or not cards[-1].text:
                raise NetlistError(
                    f"{source}:{lineno}: continuation line with no "
                    f"preceding card"
                )
            prev = cards[-1]
            cards[-1] = _Card(
                prev.lineno,
                f"{prev.text} {stripped[1:].strip()}",
                comment or prev.comment,
            )
        else:
            cards.append(_Card(lineno, stripped, comment))
    return cards


def parse_spice(
    text: str,
    source: str = "<string>",
    tech: Technology | None = None,
) -> Circuit:
    """Parse SPICE netlist text into a flattened :class:`Circuit`.

    Args:
        text: Netlist text in the writer's dialect (plus hierarchy).
        source: Name used in error locations (``source:line:``).
        tech: Technology providing MOS model cards; defaults to
            :meth:`Technology.default`.

    Returns:
        The flattened top-level circuit.  When the file has top-level
        element cards those form the circuit (with the first comment
        line as title and a ``* ports:`` comment restoring declared
        ports); otherwise the **last** ``.subckt`` is elaborated as the
        design, with its ports.

    Raises:
        NetlistError: On any syntax or structural error, with a
            ``source:line:`` location prefix.
    """
    parser = _Parser(text, source, tech or Technology.default())
    comment_cards = [c for c in parser.cards if not c.text]
    parser.cards = [c for c in parser.cards if c.text]
    for card in comment_cards:
        body = card.comment.lstrip("*").strip()
        if body.lower().startswith("ports:"):
            parser.top_ports = body[len("ports:"):].split()
        elif parser.title is None and body:
            parser.title = body
    return parser.elaborate()


def parse_spice_file(path: str | Path, tech: Technology | None = None) -> Circuit:
    """Parse a netlist file; the path appears in error locations."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise NetlistError(f"cannot read netlist {path}: {exc}") from exc
    return parse_spice(text, source=str(path), tech=tech)
