"""Declarative primitive-pattern library for topology recognition.

Each :class:`TopoPattern` describes one analog primitive as a small
device graph over *net variables*: every :class:`DeviceSlot` pins its
terminals to variables, and pattern-level constraints say which
variables must be distinct, which must sit on a rail (ground for NMOS,
supply for PMOS), and which are internal to the match.  The recognizer
(:mod:`repro.ingest.recognize`) solves these patterns against the
canonical :class:`~repro.ingest.graph.DeviceGraph` by deterministic
backtracking.

Patterns are ordered by ``priority`` (lower wins): structure-rich
patterns like the cascode mirror claim devices before the simple mirror
or the bare tail source can, which is what makes recognition
deterministic on nested structures.  ``symmetric_roles`` lists role
groups whose permutation yields the same match (a differential pair
seen as (MA, MB) or (MB, MA)); the recognizer canonicalizes these so
each physical match is reported once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class DeviceSlot:
    """One device role inside a pattern.

    Attributes:
        role: Role name (e.g. ``"MREF"``), unique within the pattern.
        terminals: Terminal letter → net-variable name.  The ``b``
            terminal is deliberately unconstrained: bulk wiring varies
            by flavor and never changes the topology class.
        polarity: ``"same"`` (the pattern's polarity variable, shared by
            all such slots), ``"opp"`` (its complement), ``"n"`` or
            ``"p"`` (fixed).
    """

    role: str
    terminals: Mapping[str, str]
    polarity: str = "same"


@dataclass(frozen=True)
class TopoPattern:
    """One recognizable primitive topology.

    Attributes:
        kind: Stable pattern name (appears in reports and JSON).
        priority: Claim order; lower numbers claim devices first.
        slots: Device roles in assignment order.
        distinct: Groups of net variables that must bind distinct nets.
        rail: Net variable → rail requirement: ``"self"`` (ground for an
            NMOS pattern instance, supply for PMOS), ``"ground"``,
            ``"supply"``, or ``"off"`` (must *not* be a rail).
        internal: Net variables whose every attachment must be a device
            of the match (hidden nodes such as a cascode's mid net).
        symmetric_roles: Role groups interchangeable by symmetry, used
            for canonical dedup of automorphic assignments.
        symmetric_nets: Net-variable pairs emitted as layout symmetry
            constraints (``CellSpec.symmetric_pairs``).
        matched_roles: Roles whose devices form the matched placement
            group (``CellSpec.matched_group``).
        ratioed: True when the multiplier ``m`` may legally differ
            across the matched group (current mirrors).
    """

    kind: str
    priority: int
    slots: tuple[DeviceSlot, ...]
    distinct: tuple[tuple[str, ...], ...] = ()
    rail: Mapping[str, str] = field(default_factory=dict)
    internal: tuple[str, ...] = ()
    symmetric_roles: tuple[tuple[str, ...], ...] = ()
    symmetric_nets: tuple[tuple[str, str], ...] = ()
    matched_roles: tuple[str, ...] = ()
    ratioed: bool = False

    def role(self, name: str) -> DeviceSlot:
        """Look up a slot by role name."""
        for slot in self.slots:
            if slot.role == name:
                return slot
        raise KeyError(f"pattern {self.kind!r} has no role {name!r}")


#: The recognizer's pattern catalog, in claim-priority order.
PATTERNS: tuple[TopoPattern, ...] = (
    TopoPattern(
        kind="cascode_current_mirror",
        priority=10,
        slots=(
            DeviceSlot("MREF", {"d": "mid_ref", "g": "mid_ref", "s": "rail"}),
            DeviceSlot("MCREF", {"d": "in", "g": "in", "s": "mid_ref"}),
            DeviceSlot("MOUT", {"d": "mid_out", "g": "mid_ref", "s": "rail"}),
            DeviceSlot("MCOUT", {"d": "out", "g": "in", "s": "mid_out"}),
        ),
        distinct=(("in", "out", "mid_ref", "mid_out", "rail"),),
        rail={"rail": "self"},
        internal=("mid_ref", "mid_out"),
        symmetric_nets=(("in", "out"), ("mid_ref", "mid_out")),
        matched_roles=("MREF", "MCREF", "MOUT", "MCOUT"),
        ratioed=True,
    ),
    TopoPattern(
        kind="current_mirror",
        priority=20,
        slots=(
            DeviceSlot("MREF", {"d": "in", "g": "in", "s": "rail"}),
            DeviceSlot("MOUT", {"d": "out", "g": "in", "s": "rail"}),
        ),
        distinct=(("in", "out", "rail"),),
        rail={"rail": "self"},
        symmetric_nets=(("in", "out"),),
        matched_roles=("MREF", "MOUT"),
        ratioed=True,
    ),
    TopoPattern(
        kind="cross_coupled_pair",
        priority=25,
        slots=(
            DeviceSlot("MA", {"d": "outp", "g": "outn", "s": "tail"}),
            DeviceSlot("MB", {"d": "outn", "g": "outp", "s": "tail"}),
        ),
        distinct=(("outp", "outn"),),
        symmetric_roles=(("MA", "MB"),),
        symmetric_nets=(("outp", "outn"),),
        matched_roles=("MA", "MB"),
    ),
    TopoPattern(
        kind="differential_pair",
        priority=30,
        slots=(
            DeviceSlot("MA", {"d": "outp", "g": "inp", "s": "tail"}),
            DeviceSlot("MB", {"d": "outn", "g": "inn", "s": "tail"}),
        ),
        distinct=(
            ("inp", "inn"),
            ("outp", "outn"),
            ("inp", "outp", "tail"),
            ("inp", "outn"),
            ("inn", "outp"),
            ("inn", "outn", "tail"),
        ),
        rail={"tail": "off"},
        symmetric_roles=(("MA", "MB"),),
        symmetric_nets=(("outp", "outn"), ("inp", "inn")),
        matched_roles=("MA", "MB"),
    ),
    TopoPattern(
        kind="cascode_stack",
        priority=40,
        slots=(
            DeviceSlot("M1", {"d": "mid", "g": "vb", "s": "rail"}),
            DeviceSlot("MC", {"d": "out", "g": "vc", "s": "mid"}),
        ),
        distinct=(("mid", "out", "rail"), ("mid", "vb"), ("mid", "vc")),
        rail={"rail": "self"},
        internal=("mid",),
        matched_roles=("M1", "MC"),
    ),
    TopoPattern(
        kind="inverter",
        priority=50,
        slots=(
            DeviceSlot("MP", {"d": "out", "g": "in", "s": "vddr"},
                       polarity="p"),
            DeviceSlot("MN", {"d": "out", "g": "in", "s": "gndr"},
                       polarity="n"),
        ),
        distinct=(("out", "in", "vddr", "gndr"),),
        rail={"vddr": "supply", "gndr": "ground"},
        matched_roles=(),
    ),
    TopoPattern(
        kind="diode_device",
        priority=55,
        slots=(
            DeviceSlot("M1", {"d": "out", "g": "out", "s": "rail"}),
        ),
        distinct=(("out", "rail"),),
        rail={"rail": "self"},
        matched_roles=("M1",),
    ),
    TopoPattern(
        kind="current_source",
        priority=60,
        slots=(
            DeviceSlot("M1", {"d": "out", "g": "vb", "s": "rail"}),
        ),
        distinct=(("out", "vb"), ("out", "rail")),
        rail={"rail": "self"},
        matched_roles=("M1",),
    ),
)
