"""End-to-end ingestion: text → circuit → graph → matches → constraints.

:func:`ingest_netlist` is the one-call API behind ``repro ingest``: it
parses, canonicalizes, recognizes, emits constraints, runs ERC on the
flattened circuit, *validates* every emitted
:class:`~repro.cellgen.generator.CellSpec` by actually generating a
layout and running the CONST constraint checks against it, and folds
everything into one waiver-aware :class:`~repro.verify.diagnostics.Report`.

:class:`IngestedCircuit` adapts an :class:`IngestResult` to the
:class:`~repro.circuits.base.CompositeCircuit` interface so
``repro flow --netlist`` can drive the hierarchical flow from a raw
``.sp`` file: every recognized primitive with a library binding becomes
a :class:`~repro.circuits.base.PrimitiveBinding`.

Everything here is pure and deterministic: :meth:`IngestResult.to_dict`
depends only on the netlist text, so repeated runs (and any ``--jobs``
setting) produce byte-identical JSON.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.cellgen.generator import generate_layout
from repro.cellgen.patterns import available_patterns
from repro.circuits.base import CompositeCircuit, PrimitiveBinding
from repro.errors import LayoutError, OptimizationError, VerificationError
from repro.ingest.emit import EmittedPrimitive, emit_constraints
from repro.ingest.graph import DeviceGraph, build_device_graph
from repro.ingest.parser import parse_spice
from repro.ingest.recognize import Recognition, recognize
from repro.primitives.library import PrimitiveLibrary
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology
from repro.verify import verify_circuit
from repro.verify.constraints import run_constraints
from repro.verify.diagnostics import Report
from repro.verify.rules import WaiverSet


class IngestResult:
    """Everything the ingestion pipeline learned about one netlist.

    Attributes:
        source: Netlist origin (path or ``"<string>"``).
        circuit: The flattened circuit.
        graph: Canonical device graph.
        recognition: Matches, ambiguities and uncovered residue.
        primitives: Emitted constraint objects, in canonical order.
        report: Merged diagnostics (TOPO + ERC + CONST validation),
            with waivers applied when provided.
    """

    def __init__(
        self,
        source: str,
        circuit: Circuit,
        graph: DeviceGraph,
        recognition: Recognition,
        primitives: tuple[EmittedPrimitive, ...],
        report: Report,
    ):
        self.source = source
        self.circuit = circuit
        self.graph = graph
        self.recognition = recognition
        self.primitives = primitives
        self.report = report

    @property
    def coverage(self) -> float:
        """Fraction of MOS devices claimed by a recognized primitive."""
        return self.recognition.coverage

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-ready summary (stable across runs)."""
        prims = []
        for prim in self.primitives:
            entry: dict[str, Any] = {
                "name": prim.name,
                "kind": prim.match.kind,
                "polarity": prim.match.polarity,
                "devices": {role: dev for role, dev in prim.match.devices},
                "nets": {var: net for var, net in prim.match.nets},
                "matched_group": list(
                    prim.spec.matched_group if prim.spec else ()
                ),
                "symmetric_pairs": [
                    list(p) for p in prim.match.symmetric_nets
                ],
            }
            if prim.binding is not None:
                entry["binding"] = {
                    "family": prim.binding.family,
                    "base_fins": prim.binding.base_fins,
                    "ratio": prim.binding.ratio,
                    "port_map": {p: n for p, n in prim.binding.port_map},
                }
            else:
                entry["binding"] = None
            prims.append(entry)
        return {
            "source": self.source,
            "circuit": self.circuit.name,
            "ports": list(self.graph.ports),
            "n_elements": len(self.circuit.elements),
            "n_mos": len(self.graph.mos_devices()),
            "n_nets": len(self.graph.nets),
            "coverage": round(self.coverage, 4),
            "primitives": prims,
            "uncovered": list(self.recognition.uncovered),
            "ambiguities": [
                {
                    "kind": a.kind,
                    "devices": list(a.devices),
                    "conflicts": list(a.conflicts),
                }
                for a in self.recognition.ambiguities
            ],
            "report": self.report.to_dict(),
        }


def _validate_specs(
    primitives: tuple[EmittedPrimitive, ...],
    tech: Technology,
    report: Report,
) -> None:
    """Generate each emitted spec once and run the CONST checks on it."""
    for prim in primitives:
        spec = prim.spec
        if spec is None:
            continue
        counts = {d.name: d.geometry.m for d in spec.devices
                  if d.name in spec.matched_group}
        matched = [spec.device(n) for n in spec.matched_group]
        units = {(d.geometry.nfin, d.geometry.nf) for d in matched}
        if len(units) != 1:
            continue  # already flagged as TOPO-ASYM-SIZE by the emitter
        try:
            patterns = available_patterns(
                [d.name for d in matched], counts
            )
            pattern = "ABBA" if "ABBA" in patterns else patterns[0]
            layout = generate_layout(spec, pattern, tech, verify=False)
            report.merge(run_constraints(layout, spec, tech))
        except (LayoutError, VerificationError, OptimizationError) as exc:
            report.flag(
                "TOPO-GEN-FAIL",
                f"cell generator cannot realize {prim.name}: {exc}",
                subject=prim.name,
            )


def ingest_netlist(
    text: str,
    source: str = "<string>",
    tech: Technology | None = None,
    waivers: WaiverSet | None = None,
    validate: bool = True,
) -> IngestResult:
    """Run the full ingestion pipeline on netlist text.

    Args:
        text: SPICE netlist text.
        source: Origin name used in diagnostics.
        tech: Technology node (defaults to FF14).
        waivers: Optional waiver baseline applied to the merged report.
        validate: Generate every emitted spec and run the CONST checks
            (set False to skip the layout round-trip for speed).

    Returns:
        The complete :class:`IngestResult`.
    """
    tech = tech or Technology.default()
    circuit = parse_spice(text, source=source, tech=tech)
    graph = build_device_graph(circuit)
    recognition = recognize(graph)
    report = Report(target=circuit.name)
    if not graph.mos_devices():
        report.flag(
            "TOPO-NO-DEVICES",
            f"netlist {source} has no MOS devices; nothing to recognize",
        )
    for device in recognition.uncovered:
        report.flag(
            "TOPO-UNCOVERED",
            f"device {device} is not part of any recognized primitive",
            subject=device,
        )
    for amb in recognition.ambiguities:
        report.flag(
            "TOPO-AMBIGUOUS",
            f"alternative {amb.kind} grouping ({', '.join(amb.devices)}) "
            f"lost devices {', '.join(amb.conflicts)} to a canonical "
            f"match",
            subject=",".join(amb.devices),
        )
    primitives = tuple(
        emit_constraints(match, i, graph, report)
        for i, match in enumerate(recognition.matches)
    )
    report.merge(verify_circuit(circuit))
    if validate:
        _validate_specs(primitives, tech, report)
    if waivers is not None:
        report.apply_waivers(waivers)
    return IngestResult(
        source=source,
        circuit=circuit,
        graph=graph,
        recognition=recognition,
        primitives=primitives,
        report=report,
    )


def ingest_file(
    path: str | Path,
    tech: Technology | None = None,
    waivers: WaiverSet | None = None,
    validate: bool = True,
) -> IngestResult:
    """Ingest a netlist file (path becomes the diagnostics source)."""
    path = Path(path)
    from repro.errors import NetlistError

    try:
        text = path.read_text()
    except OSError as exc:
        raise NetlistError(f"cannot read netlist {path}: {exc}") from exc
    return ingest_netlist(
        text, source=str(path), tech=tech, waivers=waivers,
        validate=validate,
    )


class IngestedCircuit(CompositeCircuit):
    """A :class:`CompositeCircuit` assembled from an ingest result.

    Bindings come from recognized primitives with library bindings;
    matches without a generator family (and bindings whose ``base_fins``
    admits no legal sizing) are skipped and recorded in
    :attr:`skipped`.  The circuit has no measurement testbench — run the
    flow with ``measure=False``.
    """

    def __init__(self, result: IngestResult, tech: Technology):
        super().__init__(tech)
        self.name = Path(result.source).stem or result.circuit.name
        self.result = result
        self.skipped: list[str] = []
        self._bindings: list[PrimitiveBinding] = []
        library = PrimitiveLibrary()
        for prim in result.primitives:
            binding = prim.binding
            if binding is None:
                self.skipped.append(prim.name)
                continue
            kwargs: dict[str, Any] = {"base_fins": binding.base_fins}
            if binding.ratio != 1:
                kwargs["ratio"] = binding.ratio
            try:
                primitive = library.create(binding.family, tech, **kwargs)
                primitive.name = prim.name
                if not primitive.variants():
                    raise OptimizationError("no legal sizing variants")
            except (OptimizationError, LayoutError, ValueError, TypeError):
                self.skipped.append(prim.name)
                continue
            self._bindings.append(PrimitiveBinding(
                name=prim.name,
                primitive=primitive,
                port_map={p: n for p, n in binding.port_map},
                symmetric_ports=[
                    pair for pair in primitive.symmetric_net_pairs()
                ],
            ))

    def bindings(self) -> list[PrimitiveBinding]:
        """Recognized primitives that the flow can optimize."""
        return list(self._bindings)

    def finish_testbench(self, tb: Circuit, ac: bool = False) -> None:
        """Attach only the supply: ingested circuits carry no stimuli."""
        supplies = {
            net for net in self.result.graph.nets
            if net.endswith("!")
        }
        for i, net in enumerate(sorted(supplies)):
            tb.add_vsource(f"vsup{i}", net, "0", self.tech.vdd)

    def measure(self, dut: Circuit) -> dict[str, float]:
        """Ingested circuits have no testbench; run with measure=False."""
        raise OptimizationError(
            f"{self.name}: ingested netlists carry no measurement "
            f"testbench; run the flow with measure=False"
        )
