"""Deterministic subgraph matching of primitive patterns.

The recognizer enumerates, for every :class:`TopoPattern` in priority
order, all embeddings into the MOS part of a
:class:`~repro.ingest.graph.DeviceGraph` by backtracking over device
slots.  Determinism comes from three rules:

1. candidate devices are tried in **canonical rank order** (the WL
   ordering computed by the graph builder), so enumeration order is a
   property of the topology, not of the input file;
2. automorphic assignments (a differential pair found as (MA, MB) and
   as (MB, MA)) are collapsed to one canonical representative via the
   pattern's ``symmetric_roles`` — the symmetry-aware tie-break;
3. devices are **claimed** greedily in (priority, canonical key) order:
   a structure-rich pattern wins over a structural subset, and among
   equal-priority candidates the canonically-first match wins while the
   losers are reported as :class:`Ambiguity` records (rule
   ``TOPO-AMBIGUOUS``).

Multi-output current mirrors (one diode reference, several outputs
sharing its gate and source rail) are merged into a single match with
roles ``MOUT``, ``MOUT2``, ... instead of competing pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ingest.graph import DeviceGraph, DeviceNode, is_supply
from repro.ingest.patterns import PATTERNS, TopoPattern

#: One raw embedding: ((role, device)...), ((variable, net)...), polarity.
Embedding = tuple[
    tuple[tuple[str, str], ...], tuple[tuple[str, str], ...], str
]


@dataclass(frozen=True)
class TopologyMatch:
    """One accepted embedding of a pattern into the device graph.

    Attributes:
        kind: Pattern name (``"differential_pair"``, ...).
        polarity: ``"n"``/``"p"`` for single-polarity patterns,
            ``"cmos"`` for mixed ones (inverter).
        devices: ``(role, device name)`` pairs in slot order (merged
            mirror outputs append ``MOUT2``, ``MOUT3``, ...).
        nets: ``(net variable, net)`` bindings, sorted by variable.
        matched_roles: Roles forming the matched placement group.
        symmetric_nets: Net pairs to keep symmetric in layout.
        ratioed: Whether the multiplier may differ across the group.
        internal_nets: Nets bound to the pattern's declared-internal
            variables (hidden nodes like a cascode mid); every other
            match net is a pin of the recognized structure.
    """

    kind: str
    polarity: str
    devices: tuple[tuple[str, str], ...]
    nets: tuple[tuple[str, str], ...]
    matched_roles: tuple[str, ...]
    symmetric_nets: tuple[tuple[str, str], ...]
    ratioed: bool
    internal_nets: tuple[str, ...] = ()

    @property
    def device_names(self) -> tuple[str, ...]:
        """Names of all member devices, in slot order."""
        return tuple(name for _, name in self.devices)

    def device_of(self, role: str) -> str:
        """The device bound to ``role``."""
        for r, name in self.devices:
            if r == role:
                return name
        raise KeyError(f"match {self.kind!r} has no role {role!r}")

    def net(self, var: str) -> str:
        """The net bound to pattern variable ``var``."""
        for v, net in self.nets:
            if v == var:
                return net
        raise KeyError(f"match {self.kind!r} has no net variable {var!r}")

    def label(self, index: int) -> str:
        """Deterministic instance label, e.g. ``"u3_current_mirror"``."""
        return f"u{index}_{self.kind}"


@dataclass(frozen=True)
class Ambiguity:
    """A valid candidate match discarded by same-priority claiming."""

    kind: str
    devices: tuple[str, ...]
    conflicts: tuple[str, ...]


@dataclass(frozen=True)
class Recognition:
    """Output of :func:`recognize`: matches, losers, and residue."""

    matches: tuple[TopologyMatch, ...]
    ambiguities: tuple[Ambiguity, ...]
    uncovered: tuple[str, ...]

    @property
    def coverage(self) -> float:
        """Fraction of MOS devices claimed by some match."""
        claimed = sum(len(m.devices) for m in self.matches)
        total = claimed + len(self.uncovered)
        return claimed / total if total else 1.0


def _slot_polarity(slot_pol: str, instance: str | None) -> str | None:
    """Concrete polarity a slot requires, or ``None`` for unconstrained."""
    if slot_pol in ("n", "p"):
        return slot_pol
    if instance is None:
        return None
    return instance if slot_pol == "same" else ("p" if instance == "n" else "n")


def _rail_ok(req: str, net: str, polarity: str) -> bool:
    """Check one rail requirement against a bound net."""
    grounded = net == "0"
    supplied = is_supply(net)
    if req == "ground":
        return grounded
    if req == "supply":
        return supplied
    if req == "off":
        return not grounded and not supplied
    # "self": the rail a device of this polarity sits on.
    return grounded if polarity == "n" else supplied


def _embeddings(pattern: TopoPattern, graph: DeviceGraph) -> list[Embedding]:
    """All canonical embeddings: (devices, nets, polarity) triples."""
    mos = graph.mos_devices()
    results: list[Embedding] = []
    seen: set[tuple[tuple[str, ...], ...]] = set()

    def norm_key(assign: dict[str, DeviceNode]) -> tuple[tuple[str, ...], ...]:
        parts: list[tuple[str, ...]] = []
        symmetric = {r for group in pattern.symmetric_roles for r in group}
        for group in pattern.symmetric_roles:
            parts.append(tuple(sorted(assign[r].name for r in group)))
        for slot in pattern.slots:
            if slot.role not in symmetric:
                parts.append((slot.role, assign[slot.role].name))
        return tuple(parts)

    def check(assign: dict[str, DeviceNode], nets: dict[str, str]) -> bool:
        polarity = assign[pattern.slots[0].role].kind[0]
        for group in pattern.distinct:
            bound = [nets[v] for v in group if v in nets]
            if len(bound) != len(set(bound)):
                return False
        for var, req in pattern.rail.items():
            if not _rail_ok(req, nets[var], polarity):
                return False
        members = frozenset(d.name for d in assign.values())
        for var in pattern.internal:
            if not graph.is_internal(nets[var], members):
                return False
        return True

    def extend(index: int, assign: dict[str, DeviceNode],
               nets: dict[str, str], instance_pol: str | None) -> None:
        if index == len(pattern.slots):
            if not check(assign, nets):
                return
            key = norm_key(assign)
            if key in seen:
                return
            seen.add(key)
            polarity = "cmos" if any(
                s.polarity in ("n", "p") for s in pattern.slots
            ) and len({d.kind for d in assign.values()}) > 1 else (
                assign[pattern.slots[0].role].kind[0]
            )
            devices = tuple(
                (slot.role, assign[slot.role].name) for slot in pattern.slots
            )
            net_items = tuple(sorted(nets.items()))
            results.append((devices, net_items, polarity))
            return
        slot = pattern.slots[index]
        want = _slot_polarity(slot.polarity, instance_pol)
        used = {d.name for d in assign.values()}
        for device in mos:
            if device.name in used:
                continue
            pol = device.kind[0]
            if want is not None and pol != want:
                continue
            new_nets = dict(nets)
            ok = True
            for terminal, var in slot.terminals.items():
                net = device.net(terminal)
                if new_nets.setdefault(var, net) != net:
                    ok = False
                    break
            if not ok:
                continue
            assign[slot.role] = device
            next_pol = instance_pol
            if slot.polarity == "same" and instance_pol is None:
                next_pol = pol
            elif slot.polarity == "opp" and instance_pol is None:
                next_pol = "p" if pol == "n" else "n"
            extend(index + 1, assign, new_nets, next_pol)
            del assign[slot.role]

    extend(0, {}, {}, None)
    results.sort(key=lambda emb: tuple(
        sorted(graph.rank(name) for _, name in emb[0])
    ))
    return results


def _merge_mirrors(embeddings: list[Embedding]) -> list[Embedding]:
    """Merge simple-mirror embeddings sharing one reference device."""
    by_ref: dict[str, list[Embedding]] = {}
    order: list[str] = []
    for emb in embeddings:
        ref = dict(emb[0])["MREF"]
        if ref not in by_ref:
            by_ref[ref] = []
            order.append(ref)
        by_ref[ref].append(emb)
    merged: list[Embedding] = []
    for ref in order:
        group = by_ref[ref]
        devices = list(group[0][0])
        nets = dict(group[0][1])
        for i, emb in enumerate(group[1:], start=2):
            out_dev = dict(emb[0])["MOUT"]
            devices.append((f"MOUT{i}", out_dev))
            nets[f"out{i}"] = dict(emb[1])["out"]
        merged.append((tuple(devices), tuple(sorted(nets.items())), group[0][2]))
    return merged


def recognize(graph: DeviceGraph) -> Recognition:
    """Run the full pattern catalog over ``graph``.

    Returns a :class:`Recognition` whose matches are disjoint (each MOS
    device claimed at most once), ordered by (pattern priority,
    canonical device key).
    """
    claimed: dict[str, str] = {}  # device name -> pattern kind
    matches: list[TopologyMatch] = []
    ambiguities: list[Ambiguity] = []
    for pattern in PATTERNS:
        embeddings = _embeddings(pattern, graph)
        if pattern.kind == "current_mirror":
            embeddings = _merge_mirrors(embeddings)
        for devices, nets, polarity in embeddings:
            names = tuple(name for _, name in devices)
            conflicts = tuple(n for n in names if n in claimed)
            if conflicts:
                if any(claimed[n] == pattern.kind for n in conflicts):
                    ambiguities.append(
                        Ambiguity(pattern.kind, names, conflicts)
                    )
                continue
            for name in names:
                claimed[name] = pattern.kind
            roles = dict(devices)
            matched = tuple(r for r in roles if r in pattern.matched_roles
                            or r.startswith("MOUT"))
            if not pattern.matched_roles:
                matched = ()
            sym_nets = []
            net_map = dict(nets)
            for a, b in pattern.symmetric_nets:
                if a in net_map and b in net_map:
                    sym_nets.append((net_map[a], net_map[b]))
            for var in sorted(net_map):
                if var.startswith("out") and var[3:].isdigit():
                    sym_nets.append((net_map["in"], net_map[var]))
            matches.append(TopologyMatch(
                kind=pattern.kind,
                polarity=polarity,
                devices=devices,
                nets=nets,
                matched_roles=matched,
                symmetric_nets=tuple(sym_nets),
                ratioed=pattern.ratioed,
                internal_nets=tuple(
                    net_map[v] for v in pattern.internal if v in net_map
                ),
            ))
    uncovered = tuple(
        d.name for d in graph.mos_devices() if d.name not in claimed
    )
    return Recognition(
        matches=tuple(matches),
        ambiguities=tuple(ambiguities),
        uncovered=uncovered,
    )
