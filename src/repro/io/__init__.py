"""Interchange utilities.

* :mod:`repro.io.spice_writer` — serialize a
  :class:`~repro.spice.netlist.Circuit` to SPICE-dialect text, so
  extracted netlists can be inspected or fed to an external simulator.
* :mod:`repro.io.svg` — render a :class:`~repro.geometry.layout.Layout`
  to SVG for visual inspection of generated primitive cells.
"""

from repro.io.spice_writer import write_spice
from repro.io.svg import layout_to_svg

__all__ = ["write_spice", "layout_to_svg"]
