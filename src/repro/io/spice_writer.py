"""SPICE netlist serialization.

Writes a :class:`~repro.spice.netlist.Circuit` in a SPICE-compatible
dialect: R/C/L/V/I/E/G cards plus ``M`` cards carrying the FinFET sizing
as ``nfin/nf/m`` parameters and the LDE context as ``dvth``/``kmu``
comments — enough to diff extracted netlists or hand them to an external
simulator with a matching model deck.
"""

from __future__ import annotations

from io import StringIO

from repro.errors import NetlistError
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin


def _fmt(value: float) -> str:
    """Shortest decimal text that round-trips back to ``value`` exactly.

    ``%.6g`` truncated device values, making write→parse lossy; instead
    scan ``%g`` precisions and keep the shortest candidate for which
    ``float(text) == value``, so every emitted number re-parses to the
    identical float while goldens like ``1000`` or ``1e-15`` keep their
    compact spelling.
    """
    best = None
    for precision in range(1, 18):
        text = f"{value:.{precision}g}"
        if float(text) == value and (best is None or len(text) < len(best)):
            best = text
    return best if best is not None else repr(value)


def _waveform(w) -> str:
    if isinstance(w, Dc):
        return _fmt(w.level)
    if isinstance(w, Pulse):
        return (
            f"PULSE({_fmt(w.v1)} {_fmt(w.v2)} {_fmt(w.delay)} {_fmt(w.rise)} "
            f"{_fmt(w.fall)} {_fmt(w.width)} {_fmt(w.period)})"
        )
    if isinstance(w, Sin):
        return (
            f"SIN({_fmt(w.offset)} {_fmt(w.amplitude)} {_fmt(w.frequency)} "
            f"{_fmt(w.delay)} {_fmt(w.damping)})"
        )
    if isinstance(w, Pwl):
        points = " ".join(f"{_fmt(t)} {_fmt(v)}" for t, v in w.points)
        return f"PWL({points})"
    raise NetlistError(f"unknown waveform type {type(w).__name__}")


def _node(name: str) -> str:
    # SPICE node names cannot contain spaces; ours never do, but dots
    # from hierarchy flattening are kept (ngspice accepts them).
    return name


def write_spice(circuit: Circuit, title: str | None = None) -> str:
    """Serialize ``circuit`` to SPICE text.

    Returns the netlist as a string (with a ``.end`` terminator).
    """
    out = StringIO()
    out.write(f"* {title or circuit.name}\n")
    if circuit.ports:
        out.write(f"* ports: {' '.join(circuit.ports)}\n")
    for elem in circuit.elements:
        if isinstance(elem, Resistor):
            out.write(
                f"R{elem.name} {_node(elem.a)} {_node(elem.b)} {_fmt(elem.value)}\n"
            )
        elif isinstance(elem, Capacitor):
            out.write(
                f"C{elem.name} {_node(elem.a)} {_node(elem.b)} {_fmt(elem.value)}\n"
            )
        elif isinstance(elem, Inductor):
            out.write(
                f"L{elem.name} {_node(elem.a)} {_node(elem.b)} {_fmt(elem.value)}\n"
            )
        elif isinstance(elem, VoltageSource):
            ac = f" AC {_fmt(elem.ac_magnitude)} {_fmt(elem.ac_phase_deg)}" if elem.ac_magnitude else ""
            out.write(
                f"V{elem.name} {_node(elem.plus)} {_node(elem.minus)} "
                f"{_waveform(elem.waveform)}{ac}\n"
            )
        elif isinstance(elem, CurrentSource):
            ac = f" AC {_fmt(elem.ac_magnitude)} {_fmt(elem.ac_phase_deg)}" if elem.ac_magnitude else ""
            out.write(
                f"I{elem.name} {_node(elem.a)} {_node(elem.b)} "
                f"{_waveform(elem.waveform)}{ac}\n"
            )
        elif isinstance(elem, Vcvs):
            out.write(
                f"E{elem.name} {_node(elem.plus)} {_node(elem.minus)} "
                f"{_node(elem.ctrl_plus)} {_node(elem.ctrl_minus)} {_fmt(elem.gain)}\n"
            )
        elif isinstance(elem, Vccs):
            out.write(
                f"G{elem.name} {_node(elem.b)} {_node(elem.a)} "
                f"{_node(elem.ctrl_plus)} {_node(elem.ctrl_minus)} {_fmt(elem.gain)}\n"
            )
        elif isinstance(elem, Mosfet):
            g = elem.geometry
            out.write(
                f"M{elem.name} {_node(elem.d)} {_node(elem.g)} {_node(elem.s)} "
                f"{_node(elem.b)} {elem.card.name} nfin={g.nfin} nf={g.nf} "
                f"m={g.m}"
            )
            if elem.lde.vth_shift or elem.lde.mobility_factor != 1.0:
                out.write(
                    f" * dvth={_fmt(elem.lde.vth_shift)} "
                    f"kmu={_fmt(elem.lde.mobility_factor)}"
                )
            out.write("\n")
        else:
            raise NetlistError(f"unserializable element {type(elem).__name__}")
    out.write(".end\n")
    return out.getvalue()
