"""SVG rendering of generated layouts.

Draws device active areas, wires (colored per metal layer), vias and
port markers so a generated primitive cell can be inspected visually —
the closest this repository gets to a layout viewer.
"""

from __future__ import annotations

from io import StringIO

from repro.geometry.layout import Layout
from repro.geometry.shapes import Rect

#: Fill colors per layer (loosely following common PDK palettes).
LAYER_COLORS = {
    "active": "#76c043",
    "M1": "#4d8fd1",
    "M2": "#d14d4d",
    "M3": "#3fb8af",
    "M4": "#b26cc5",
    "M5": "#e0a030",
    "M6": "#808080",
}

#: Draw order, bottom-up.
LAYER_ORDER = ["active", "M1", "M2", "M3", "M4", "M5", "M6"]


def _rect_svg(rect: Rect, color: str, opacity: float, flip_height: int) -> str:
    # SVG's y axis points down; layouts' points up.
    y = flip_height - rect.y1
    return (
        f'<rect x="{rect.x0}" y="{y}" width="{max(rect.width, 1)}" '
        f'height="{max(rect.height, 1)}" fill="{color}" '
        f'fill-opacity="{opacity}" stroke="{color}" stroke-width="4"/>'
    )


def layout_to_svg(layout: Layout, scale: float = 0.02) -> str:
    """Render ``layout`` as an SVG document string.

    Args:
        layout: The layout to draw.
        scale: Display pixels per nanometre (0.02 = 50 nm/px).
    """
    box = layout.bbox().expanded(200)
    width = box.width
    height = box.height
    flip = box.y1 + box.y0  # mirror around the box's vertical centre
    out = StringIO()
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="{box.x0} {box.y0} {width} {height}" '
        f'width="{width * scale:.0f}" height="{height * scale:.0f}">\n'
    )
    out.write(
        f'<rect x="{box.x0}" y="{box.y0}" width="{width}" height="{height}" '
        f'fill="#181818"/>\n'
    )

    shapes: dict[str, list[str]] = {layer: [] for layer in LAYER_ORDER}
    for placement in layout.devices:
        shapes["active"].append(
            _rect_svg(placement.rect, LAYER_COLORS["active"], 0.9, flip)
        )
    for wire in layout.wires:
        color = LAYER_COLORS.get(wire.layer, "#cccccc")
        bucket = wire.layer if wire.layer in shapes else "M6"
        shapes[bucket].append(_rect_svg(wire.rect, color, 0.55, flip))
    for layer in LAYER_ORDER:
        out.write("\n".join(shapes[layer]))
        out.write("\n")

    for via in layout.vias:
        y = flip - via.position.y - 20
        out.write(
            f'<rect x="{via.position.x - 10}" y="{y}" width="20" height="20" '
            f'fill="#ffffff" fill-opacity="0.8"/>\n'
        )
    for port in layout.ports:
        center = port.rect.center
        y = flip - center.y
        out.write(
            f'<circle cx="{center.x}" cy="{y}" r="60" fill="none" '
            f'stroke="#ffe14d" stroke-width="20"/>\n'
        )
        out.write(
            f'<text x="{center.x + 80}" y="{y}" fill="#ffe14d" '
            f'font-size="160">{port.net}</text>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()
