"""Place & route substrate.

Replaces the ALIGN placer/router the paper plugs into:

* :mod:`repro.pnr.placer` — simulated-annealing placement over sequence
  pairs.  Each block may offer several layout options (the per-bin
  outputs of primitive selection); the annealer picks the option and the
  location together, which is exactly why the paper hands the placer one
  option per aspect-ratio bin.
* :mod:`repro.pnr.global_router` — grid-based global router (A* search
  over a coarse routing graph, MST decomposition for multi-pin nets)
  producing per-net segment lists with layer and via information — the
  inputs of primitive port optimization.
* :mod:`repro.pnr.detailed` — detailed-route constraint realization: the
  reconciled parallel-route counts become bundles of parallel wires, with
  symmetric nets kept geometrically matched.
"""

from repro.pnr.placer import Block, Placement, SaPlacer
from repro.pnr.global_router import GlobalRoute, GlobalRouter, RouteSegment
from repro.pnr.detailed import DetailedRoute, realize_routes

__all__ = [
    "Block",
    "Placement",
    "SaPlacer",
    "GlobalRouter",
    "GlobalRoute",
    "RouteSegment",
    "DetailedRoute",
    "realize_routes",
]
