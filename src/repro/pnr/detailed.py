"""Detailed-route constraint realization.

The output of port-constraint reconciliation is a parallel-route count
per net; the detailed router's job in this flow is to realize each global
route as that many parallel wires — and to keep symmetric nets
geometrically matched (the constraint the paper cites from [19], which
preserves input offset).

:func:`realize_routes` turns global routes plus wire counts into concrete
:class:`~repro.geometry.layout.Wire` bundles and reports the effective RC
per net, which the flow's final assembly uses.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.geometry.layout import Wire
from repro.geometry.shapes import Rect
from repro.pnr.global_router import GlobalRoute
from repro.tech.pdk import Technology


@dataclass
class DetailedRoute:
    """Realized detailed route for one net.

    Attributes:
        net: Net name.
        wires: The parallel wire shapes.
        n_parallel: Number of parallel copies realized.
        resistance: Effective end-to-end resistance (ohm).
        capacitance: Total wire capacitance (F).
        matched_with: Net this route is geometrically matched to, if any.
    """

    net: str
    wires: list[Wire] = field(default_factory=list)
    n_parallel: int = 1
    resistance: float = 0.0
    capacitance: float = 0.0
    matched_with: str | None = None

    def current_capacity_ma(
        self, limits_ma_per_um: Mapping[str, float]
    ) -> float:
        """Worst-case DC current (mA) the whole bundle can carry.

        Each of the ``n_parallel`` copies carries an equal share of the
        net's current, so the bundle capacity is ``n_parallel x width x
        limit`` minimized over the bundle's wires.  Wires on layers
        absent from ``limits_ma_per_um`` are skipped; returns ``inf``
        when no wire is covered.
        """
        worst = float("inf")
        for wire in self.wires:
            limit = limits_ma_per_um.get(wire.layer)
            if limit is None:
                continue
            worst = min(
                worst, self.n_parallel * wire.width * 1e-3 * limit
            )
        return worst


def _bundle_wires(
    route: GlobalRoute, tech: Technology, n_parallel: int
) -> list[Wire]:
    wires: list[Wire] = []
    for segment in route.segments:
        layer = tech.stack.metal(segment.layer)
        for copy in range(n_parallel):
            offset = copy * layer.pitch
            if segment.y0 == segment.y1:  # horizontal
                x0, x1 = sorted((segment.x0, segment.x1))
                rect = Rect(
                    x0,
                    segment.y0 + offset,
                    max(x1, x0 + layer.min_width),
                    segment.y0 + offset + layer.min_width,
                )
            else:
                y0, y1 = sorted((segment.y0, segment.y1))
                rect = Rect(
                    segment.x0 + offset,
                    y0,
                    segment.x0 + offset + layer.min_width,
                    max(y1, y0 + layer.min_width),
                )
            wires.append(
                Wire(net=route.net, layer=segment.layer, rect=rect, role="route")
            )
    return wires


def realize_routes(
    routes: dict[str, GlobalRoute],
    wire_counts: dict[str, int],
    tech: Technology,
    matched_pairs: list[tuple[str, str]] | None = None,
) -> dict[str, DetailedRoute]:
    """Realize every global route as a parallel-wire bundle.

    Args:
        routes: Global routes keyed by net.
        wire_counts: Reconciled parallel-route count per net (nets not
            listed get 1).
        tech: Technology node.
        matched_pairs: Net pairs that must stay geometrically matched;
            both nets receive the larger of their two wire counts and the
            same segment shape.

    Returns:
        Detailed routes keyed by net.
    """
    counts = {net: wire_counts.get(net, 1) for net in routes}
    for a, b in matched_pairs or []:
        if a not in routes or b not in routes:
            raise RoutingError(f"matched pair ({a}, {b}): missing route")
        shared = max(counts[a], counts[b])
        counts[a] = shared
        counts[b] = shared

    matched_lookup: dict[str, str] = {}
    for a, b in matched_pairs or []:
        matched_lookup[a] = b
        matched_lookup[b] = a

    detailed: dict[str, DetailedRoute] = {}
    for net, route in routes.items():
        n = max(1, counts[net])
        wires = _bundle_wires(route, tech, n)
        resistance = 0.0
        capacitance = 0.0
        for segment in route.segments:
            layer = tech.stack.metal(segment.layer)
            resistance += layer.wire_resistance(max(segment.length, 1)) / n
            capacitance += layer.wire_capacitance(max(segment.length, 1)) * n
        detailed[net] = DetailedRoute(
            net=net,
            wires=wires,
            n_parallel=n,
            resistance=resistance,
            capacitance=capacitance,
            matched_with=matched_lookup.get(net),
        )
    return detailed
