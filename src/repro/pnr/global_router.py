"""Grid-based global router.

Routes nets between primitive ports over a coarse grid graph: horizontal
segments on M3, vertical segments on M4, a via stack wherever direction
changes or a pin is reached.  Multi-pin nets are decomposed with a
minimum spanning tree (Steiner points fall on existing route cells, and —
as the paper prescribes — every branch of the tree later uses the same
number of parallel wires).

Congestion is handled with a per-cell history cost so overlapping nets
spread out.  The output per net is a :class:`GlobalRoute`: segment list,
wirelength per layer and via count — exactly the information primitive
port optimization consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.port_constraints import GlobalRouteInfo
from repro.errors import RoutingError
from repro.tech.pdk import Technology


@dataclass(frozen=True)
class RouteSegment:
    """One straight global-route segment."""

    layer: str
    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def length(self) -> int:
        return abs(self.x1 - self.x0) + abs(self.y1 - self.y0)


@dataclass
class GlobalRoute:
    """Global-route result for one net."""

    net: str
    segments: list[RouteSegment] = field(default_factory=list)
    via_count: int = 0

    def length_on(self, layer: str) -> int:
        return sum(s.length for s in self.segments if s.layer == layer)

    @property
    def total_length(self) -> int:
        return sum(s.length for s in self.segments)

    def dominant_layer(self) -> str:
        """The layer carrying most of the wirelength."""
        if not self.segments:
            return "M3"
        layers: dict[str, int] = {}
        for seg in self.segments:
            layers[seg.layer] = layers.get(seg.layer, 0) + seg.length
        return max(layers, key=layers.get)

    def to_route_info(
        self, tech: Technology, symmetric_with: tuple[str, ...] = ()
    ) -> GlobalRouteInfo:
        """Reduce to the per-port route description of Algorithm 2.

        Long nets are promoted to upper metals (standard analog-router
        practice: the grid's M3/M4 carry short hops, M5 carries long
        spans), which keeps long-route resistance physical.
        """
        length = max(self.total_length, 1)
        if length > 30_000:
            layer = "M5"
        elif length > 10_000:
            layer = "M4"
        else:
            layer = self.dominant_layer()
        # Via stack from the cell's M3 port level up to the route layer.
        via_stack = tech.stack.via_stack_resistance("M3", layer) + (
            tech.stack.via_between("M3", "M4").resistance
        )
        return GlobalRouteInfo(
            net=self.net,
            layer=layer,
            length_nm=float(length),
            via_cuts=max(1, self.via_count),
            via_resistance=via_stack * max(1, self.via_count),
            symmetric_with=symmetric_with,
        )


class GlobalRouter:
    """A* router over a uniform grid.

    Args:
        width: Routing region width (nm).
        height: Routing region height (nm).
        pitch: Grid pitch (nm); 1000 nm default.
        h_layer: Layer for horizontal segments.
        v_layer: Layer for vertical segments.
    """

    def __init__(
        self,
        width: int,
        height: int,
        pitch: int = 1000,
        h_layer: str = "M3",
        v_layer: str = "M4",
    ):
        if width <= 0 or height <= 0 or pitch <= 0:
            raise RoutingError("router region and pitch must be positive")
        self.pitch = pitch
        self.cols = max(2, width // pitch + 2)
        self.rows = max(2, height // pitch + 2)
        self.h_layer = h_layer
        self.v_layer = v_layer
        self._usage: dict[tuple[int, int], int] = {}

    def _snap(self, x: int, y: int) -> tuple[int, int]:
        return (
            min(self.cols - 1, max(0, round(x / self.pitch))),
            min(self.rows - 1, max(0, round(y / self.pitch))),
        )

    def _astar(
        self, start: tuple[int, int], goal: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Shortest congestion-aware path between two grid cells."""
        frontier: list[tuple[float, tuple[int, int]]] = [(0.0, start)]
        came: dict[tuple[int, int], tuple[int, int]] = {}
        g_cost = {start: 0.0}
        while frontier:
            _, current = heapq.heappop(frontier)
            if current == goal:
                break
            cx, cy = current
            for nx, ny in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                if not (0 <= nx < self.cols and 0 <= ny < self.rows):
                    continue
                step = 1.0 + 0.5 * self._usage.get((nx, ny), 0)
                cost = g_cost[current] + step
                if cost < g_cost.get((nx, ny), float("inf")):
                    g_cost[(nx, ny)] = cost
                    came[(nx, ny)] = current
                    heuristic = abs(nx - goal[0]) + abs(ny - goal[1])
                    heapq.heappush(frontier, (cost + heuristic, (nx, ny)))
        if goal not in g_cost:
            raise RoutingError(f"no path from {start} to {goal}")
        path = [goal]
        while path[-1] != start:
            path.append(came[path[-1]])
        path.reverse()
        return path

    def route_net(self, net: str, pins: list[tuple[int, int]]) -> GlobalRoute:
        """Route one net over its pins (nm coordinates).

        Multi-pin nets use an MST over the pins; each MST edge is routed
        with A*.
        """
        if len(pins) < 2:
            return GlobalRoute(net=net)
        cells = [self._snap(x, y) for x, y in pins]

        # Prim's MST over Manhattan distance.
        in_tree = {0}
        edges: list[tuple[int, int]] = []
        while len(in_tree) < len(cells):
            best = None
            for i in in_tree:
                for j in range(len(cells)):
                    if j in in_tree:
                        continue
                    d = abs(cells[i][0] - cells[j][0]) + abs(
                        cells[i][1] - cells[j][1]
                    )
                    if best is None or d < best[0]:
                        best = (d, i, j)
            assert best is not None
            edges.append((best[1], best[2]))
            in_tree.add(best[2])

        route = GlobalRoute(net=net)
        for i, j in edges:
            path = self._astar(cells[i], cells[j])
            for cell in path:
                self._usage[cell] = self._usage.get(cell, 0) + 1
            route.segments.extend(self._path_segments(path))
            route.via_count += self._count_bends(path) + 2
        return route

    def _path_segments(self, path: list[tuple[int, int]]) -> list[RouteSegment]:
        segments: list[RouteSegment] = []
        k = 0
        while k < len(path) - 1:
            j = k + 1
            if path[j][1] == path[k][1]:  # horizontal run
                while j + 1 < len(path) and path[j + 1][1] == path[k][1]:
                    j += 1
                layer = self.h_layer
            else:  # vertical run
                while j + 1 < len(path) and path[j + 1][0] == path[k][0]:
                    j += 1
                layer = self.v_layer
            segments.append(
                RouteSegment(
                    layer=layer,
                    x0=path[k][0] * self.pitch,
                    y0=path[k][1] * self.pitch,
                    x1=path[j][0] * self.pitch,
                    y1=path[j][1] * self.pitch,
                )
            )
            k = j
        return segments

    @staticmethod
    def _count_bends(path: list[tuple[int, int]]) -> int:
        bends = 0
        for a, b, c in zip(path, path[1:], path[2:]):
            dir1 = (b[0] - a[0], b[1] - a[1])
            dir2 = (c[0] - b[0], c[1] - b[1])
            if dir1 != dir2:
                bends += 1
        return bends
