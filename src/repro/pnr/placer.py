"""Simulated-annealing placer over sequence pairs.

A *sequence pair* (two permutations of the block names) encodes a
non-overlapping packing: block ``a`` is left of ``b`` iff ``a`` precedes
``b`` in both sequences, and below iff it precedes in the second only.
Packing is evaluated with the standard longest-path computation.

Moves: swap two names in one sequence, swap in both, or change a block's
layout option (the aspect-ratio-binned choices produced by primitive
selection).  The cost blends packed area and HPWL over the netlist's
port-level connectivity.

Symmetry handling: matched structures are internal to primitives in this
flow (a differential pair is one cell), so block-level symmetry reduces
to optional *symmetry pairs* that are fused side by side into a
super-block before annealing — the approach keeps mirrored placement
exact by construction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import PlacementError


@dataclass
class Block:
    """A placeable block with one or more layout options.

    Attributes:
        name: Block (primitive instance) name.
        options: ``(width, height)`` of each layout option (nm).
        nets: Net names this block connects to (for HPWL).
    """

    name: str
    options: list[tuple[int, int]]
    nets: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.options:
            raise PlacementError(f"block {self.name!r} has no layout options")
        for w, h in self.options:
            if w <= 0 or h <= 0:
                raise PlacementError(f"block {self.name!r}: bad option size")


@dataclass
class Placement:
    """Final placement: per-block position, chosen option, and totals."""

    positions: dict[str, tuple[int, int]]
    chosen_option: dict[str, int]
    width: int
    height: int
    hpwl: float

    @property
    def area(self) -> int:
        return self.width * self.height


class SaPlacer:
    """Simulated-annealing sequence-pair placer.

    Args:
        blocks: The blocks to place.
        area_weight: Relative weight of packed area vs HPWL.
        spacing: Minimum spacing added around each block (nm).
        seed: RNG seed (deterministic placement for a given seed).
    """

    def __init__(
        self,
        blocks: list[Block],
        area_weight: float = 1.0,
        wirelength_weight: float = 1.0,
        spacing: int = 200,
        seed: int = 1,
    ):
        if not blocks:
            raise PlacementError("no blocks to place")
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise PlacementError("duplicate block names")
        self.blocks = {b.name: b for b in blocks}
        self.area_weight = area_weight
        self.wirelength_weight = wirelength_weight
        self.spacing = spacing
        self.rng = random.Random(seed)

    # -- sequence-pair packing -------------------------------------------

    def _pack(
        self,
        seq1: list[str],
        seq2: list[str],
        options: dict[str, int],
    ) -> tuple[dict[str, tuple[int, int]], int, int]:
        """Longest-path packing of a sequence pair."""
        pos2 = {name: i for i, name in enumerate(seq2)}

        def size(name: str) -> tuple[int, int]:
            w, h = self.blocks[name].options[options[name]]
            return w + self.spacing, h + self.spacing

        x: dict[str, int] = {}
        for name in seq1:
            left = [
                other
                for other in seq1[: seq1.index(name)]
                if pos2[other] < pos2[name]
            ]
            x[name] = max((x[o] + size(o)[0] for o in left), default=0)
        y: dict[str, int] = {}
        for name in reversed(seq1):
            below = [
                other
                for other in seq1[seq1.index(name) + 1 :]
                if pos2[other] < pos2[name]
            ]
            y[name] = max((y[o] + size(o)[1] for o in below), default=0)

        width = max(x[n] + size(n)[0] for n in seq1)
        height = max(y[n] + size(n)[1] for n in seq1)
        return {n: (x[n], y[n]) for n in seq1}, width, height

    def _hpwl(
        self,
        positions: dict[str, tuple[int, int]],
        options: dict[str, int],
    ) -> float:
        """Half-perimeter wirelength over block centers."""
        nets: dict[str, list[tuple[float, float]]] = {}
        for name, block in self.blocks.items():
            bx, by = positions[name]
            w, h = block.options[options[name]]
            center = (bx + w / 2.0, by + h / 2.0)
            for net in block.nets:
                nets.setdefault(net, []).append(center)
        total = 0.0
        for pins in nets.values():
            if len(pins) < 2:
                continue
            xs = [p[0] for p in pins]
            ys = [p[1] for p in pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def _cost(self, seq1, seq2, options) -> tuple[float, dict, int, int]:
        positions, width, height = self._pack(seq1, seq2, options)
        area = float(width) * float(height)
        hpwl = self._hpwl(positions, options)
        # Normalize the wirelength term by the packing's linear scale so
        # area and HPWL stay comparable for any design size; analog
        # placements weight connectivity heavily.
        scale = max(area, 1.0) ** 0.5
        cost = self.area_weight * area + self.wirelength_weight * hpwl * scale * 0.2
        return cost, positions, width, height

    # -- annealing -------------------------------------------------------

    def place(
        self,
        iterations: int = 2000,
        t_start: float = 1.0,
        t_end: float = 1e-3,
    ) -> Placement:
        """Run the annealer and return the best placement found."""
        names = list(self.blocks)
        seq1 = names[:]
        seq2 = names[:]
        self.rng.shuffle(seq1)
        self.rng.shuffle(seq2)
        options = {n: 0 for n in names}

        cost, positions, width, height = self._cost(seq1, seq2, options)
        best = (cost, seq1[:], seq2[:], dict(options))

        if len(names) == 1:
            return self._finalize(seq1, seq2, options)

        alpha = (t_end / t_start) ** (1.0 / max(1, iterations))
        temperature = t_start * cost  # scale to the cost magnitude
        for _ in range(iterations):
            new_seq1, new_seq2 = seq1[:], seq2[:]
            new_options = dict(options)
            move = self.rng.random()
            i, j = self.rng.sample(range(len(names)), 2)
            if move < 0.4:
                new_seq1[i], new_seq1[j] = new_seq1[j], new_seq1[i]
            elif move < 0.8:
                new_seq2[i], new_seq2[j] = new_seq2[j], new_seq2[i]
            else:
                name = self.rng.choice(names)
                n_opts = len(self.blocks[name].options)
                if n_opts > 1:
                    new_options[name] = self.rng.randrange(n_opts)

            new_cost, *_rest = self._cost(new_seq1, new_seq2, new_options)
            delta = new_cost - cost
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                seq1, seq2, options, cost = new_seq1, new_seq2, new_options, new_cost
                if cost < best[0]:
                    best = (cost, seq1[:], seq2[:], dict(options))
            temperature *= alpha

        _, seq1, seq2, options = best
        return self._finalize(seq1, seq2, options)

    def _finalize(self, seq1, seq2, options) -> Placement:
        _cost, positions, width, height = self._cost(seq1, seq2, options)
        hpwl = self._hpwl(positions, options)
        return Placement(
            positions=positions,
            chosen_option=dict(options),
            width=width,
            height=height,
            hpwl=hpwl,
        )
