"""The primitive library.

Encodes Section II of the paper: each primitive class carries its
performance metrics with importance weights (Table II), its tuning
terminals with correlation annotations, and a SPICE testbench per metric.
These augmentations are topology-dependent and technology-independent —
every primitive takes the :class:`~repro.tech.Technology` at construction.

Families (paper Section II-A):

* differential pairs — :mod:`repro.primitives.diffpair`
  (simple, cascoded, switched, PMOS),
* current mirrors — :mod:`repro.primitives.mirrors`
  (passive, active, cascode, low-voltage cascode, ratioed, PMOS),
* amplifiers — :mod:`repro.primitives.amplifiers`
  (common source, common gate, common drain),
* loads — :mod:`repro.primitives.loads`
  (current source, cascode current source, diode load, cascode diode),
* digital-like structures — :mod:`repro.primitives.digital`
  (current-starved inverter, cross-coupled pair, cross-coupled
  inverters, switch),
* passives — :mod:`repro.primitives.passive_prims`
  (MOM capacitor, poly resistor, spiral inductor).

:class:`~repro.primitives.library.PrimitiveLibrary` registers all of them
by name.
"""

from repro.primitives.base import (
    MetricSpec,
    MosPrimitive,
    DeviceTemplate,
    TuningTerminal,
)
from repro.primitives.diffpair import (
    CascodeDifferentialPair,
    DifferentialPair,
    PmosDifferentialPair,
    SwitchedDifferentialPair,
)
from repro.primitives.mirrors import (
    ActiveCurrentMirror,
    CascodeCurrentMirror,
    LowVoltageCascodeMirror,
    PassiveCurrentMirror,
    PmosCurrentMirror,
)
from repro.primitives.amplifiers import (
    CommonDrainAmplifier,
    CommonGateAmplifier,
    CommonSourceAmplifier,
)
from repro.primitives.loads import (
    CascodeCurrentSource,
    CascodeDiodeLoad,
    CurrentSourceLoad,
    DiodeLoad,
    PmosCurrentSource,
)
from repro.primitives.digital import (
    CrossCoupledInverters,
    CrossCoupledPair,
    CurrentStarvedInverter,
    DifferentialDelayCell,
    PmosCrossCoupledPair,
    PmosSwitch,
    RegenerativePair,
    TransmissionSwitch,
)
from repro.primitives.passive_prims import (
    MomCapacitorPrimitive,
    PolyResistorPrimitive,
    SpiralInductorPrimitive,
)
from repro.primitives.library import PrimitiveLibrary

__all__ = [
    "MetricSpec",
    "TuningTerminal",
    "DeviceTemplate",
    "MosPrimitive",
    "DifferentialPair",
    "PmosDifferentialPair",
    "CascodeDifferentialPair",
    "SwitchedDifferentialPair",
    "PassiveCurrentMirror",
    "ActiveCurrentMirror",
    "CascodeCurrentMirror",
    "LowVoltageCascodeMirror",
    "PmosCurrentMirror",
    "CommonSourceAmplifier",
    "CommonGateAmplifier",
    "CommonDrainAmplifier",
    "CurrentSourceLoad",
    "PmosCurrentSource",
    "CascodeCurrentSource",
    "DiodeLoad",
    "CascodeDiodeLoad",
    "CurrentStarvedInverter",
    "DifferentialDelayCell",
    "CrossCoupledPair",
    "CrossCoupledInverters",
    "PmosCrossCoupledPair",
    "RegenerativePair",
    "PmosSwitch",
    "TransmissionSwitch",
    "MomCapacitorPrimitive",
    "PolyResistorPrimitive",
    "SpiralInductorPrimitive",
    "PrimitiveLibrary",
]
