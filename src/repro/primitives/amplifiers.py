"""Single-transistor amplifier primitives.

Table II row *COMMON-SOURCE AMPLIFIER*: ``Gm`` (α=1) and ``r_o`` (α=0.5),
tuning terminals at the source/drain RC.  Common-gate and common-drain
variants complete the paper's amplifier family.
"""

from __future__ import annotations

from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc
from repro.tech.pdk import Technology


class CommonSourceAmplifier(MosPrimitive):
    """NMOS common-source stage (the paper's Fig. 2 M1).

    Args:
        tech: Technology node.
        base_fins: Device fins.
        i_target: Drain bias current (A); the gate bias is solved on the
            schematic so the device carries this current (mimicking bias
            conditions handed down from the circuit-level schematic
            simulation).  Default 0.6 uA per fin.
        vin: Explicit gate bias (V); overrides ``i_target`` if given.
        vout: Drain bias (V).
    """

    family = "common_source_amplifier"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 480,
        name: str | None = None,
        i_target: float | None = None,
        vin: float | None = None,
        vout: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.i_target = i_target if i_target is not None else 0.6e-6 * base_fins
        self.vout = vout if vout is not None else 0.6 * tech.vdd
        self._vin = vin

    @property
    def vin(self) -> float:
        """Gate bias; solved lazily on the schematic for ``i_target``."""
        if self._vin is None:
            schematic = self.schematic_circuit()

            def build(v: float):
                tb = Circuit("bias_solve")
                tbh.attach_dut(tb, schematic)
                tb.add_vsource("vin", "in", "0", v)
                tb.add_vsource("vout", "out", "0", self.vout)
                return tb

            self._vin = tbh.solve_gate_bias(
                self.tech, build, lambda op: abs(op.i("vout")), self.i_target
            )
        return self._vin

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("M1", "n", {"d": "out", "g": "in", "s": "0"})]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("gm", WEIGHT_HIGH, _eval_gm),
            MetricSpec("rout", WEIGHT_MEDIUM, _eval_rout),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vin", "in", "0", self.vin)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb

    def gm_testbench(self, dut: Circuit) -> Circuit:
        tb = self.bias_testbench(dut)
        tb.replace_element(
            "vin", VoltageSource("vin", "in", "0", Dc(self.vin), ac_magnitude=1.0)
        )
        return tb

    def rout_testbench(self, dut: Circuit) -> Circuit:
        tb = self.bias_testbench(dut)
        tb.replace_element(
            "vout", VoltageSource("vout", "out", "0", Dc(self.vout), ac_magnitude=1.0)
        )
        return tb


class CommonGateAmplifier(CommonSourceAmplifier):
    """NMOS common-gate stage: signal into the source, gate AC-grounded."""

    family = "common_gate_amplifier"

    def __init__(self, tech: Technology, base_fins: int = 480, **kwargs):
        kwargs.setdefault("vin", 0.1 * tech.vdd)
        kwargs.setdefault("vout", 0.7 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)
        self._v_gate: float | None = None

    @property
    def v_gate(self) -> float:
        """Gate bias; solved lazily on the schematic for ``i_target``."""
        if self._v_gate is None:
            schematic = self.schematic_circuit()

            def build(v: float):
                tb = Circuit("bias_solve")
                tbh.attach_dut(tb, schematic)
                tb.add_vsource("vgate", "vg", "0", v)
                tb.add_vsource("vin", "in", "0", self.vin)
                tb.add_vsource("vout", "out", "0", self.vout)
                return tb

            self._v_gate = tbh.solve_gate_bias(
                self.tech,
                build,
                lambda op: abs(op.i("vout")),
                self.i_target,
                lo=self.vin,
                hi=self.tech.vdd + self.vin,
            )
        return self._v_gate

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("M1", "n", {"d": "out", "g": "vg", "s": "in"})]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("in",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vgate", "vg", "0", self.v_gate)
        tb.add_vsource("vin", "in", "0", self.vin)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb


class CommonDrainAmplifier(MosPrimitive):
    """NMOS source follower; metrics are voltage gain and output R."""

    family = "common_drain_amplifier"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 480,
        name: str | None = None,
        vin: float | None = None,
        i_bias: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.vin = vin if vin is not None else 0.85 * tech.vdd
        self.i_bias = i_bias if i_bias is not None else 0.5e-6 * base_fins

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("M1", "n", {"d": "vdd!", "g": "in", "s": "out"})]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("gain", WEIGHT_HIGH, _eval_follower_gain),
            MetricSpec("rout", WEIGHT_MEDIUM, _eval_follower_rout),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [TuningTerminal("source", nets=("out",))]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_vsource("vin", "in", "0", self.vin)
        tb.add_isource("ibias", "out", "0", self.i_bias)
        return tb


# --- metric evaluators ----------------------------------------------------


def _eval_gm(prim: CommonSourceAmplifier, dut: Circuit, cache: dict):
    tb = prim.gm_testbench(dut)
    freqs, current = tbh.transfer_current(tb, prim.tech, ["vout"], [1.0])
    return float(abs(current[0])), 1


def _eval_rout(prim: CommonSourceAmplifier, dut: Circuit, cache: dict):
    tb = prim.rout_testbench(dut)
    return tbh.port_resistance(tb, prim.tech, "vout"), 1


def _eval_follower_gain(prim: CommonDrainAmplifier, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut)
    tb.replace_element(
        "vin", VoltageSource("vin", "in", "0", Dc(prim.vin), ac_magnitude=1.0)
    )
    op, ac = tbh.run_ac(tb, prim.tech)
    return float(abs(ac.v("out")[0])), 1


def _eval_follower_rout(prim: CommonDrainAmplifier, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut)
    # Probe the output with an AC current and read the voltage.
    tb.add_isource("iprobe", "out", "0", 0.0, ac_magnitude=1.0)
    op, ac = tbh.run_ac(tb, prim.tech)
    return float(abs(ac.v("out")[0])), 1
