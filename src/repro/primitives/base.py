"""Primitive base classes.

A *primitive* here is the paper's augmented library entry: a small device
topology plus

* **metrics** with importance weights α (Table II), each evaluated by a
  dedicated SPICE testbench built around any DUT netlist (schematic or
  extracted),
* **tuning terminals** — nets whose wire RC may be traded off, with
  correlation annotations,
* layout-generation hooks that adapt the primitive to the cell generator
  (device templates → :class:`~repro.cellgen.CellSpec`).

Concrete families subclass :class:`MosPrimitive` and declare their
templates and metrics; the optimization algorithms in :mod:`repro.core`
consume only this interface.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.cellgen.generator import CellDevice, CellSpec, WireConfig, generate_layout
from repro.cellgen.sizing import enumerate_sizings
from repro.devices.mosfet import MosGeometry
from repro.errors import MeasureError, OptimizationError
from repro.extraction.netlist_builder import ExtractedPrimitive, extract_primitive
from repro.geometry.layout import Layout
from repro.runtime import faults
from repro.runtime.failures import is_eval_failure
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology

#: Weight constants from the paper: high, medium, low.
WEIGHT_HIGH = 1.0
WEIGHT_MEDIUM = 0.5
WEIGHT_LOW = 0.1


@dataclass(frozen=True)
class MetricSpec:
    """One primitive performance metric.

    Attributes:
        name: Metric name, e.g. ``"gm"``.
        weight: Importance weight α (1.0 / 0.5 / 0.1).
        evaluate: Callable ``(primitive, dut_circuit, cache) ->
            (value, n_sims)`` implementing the metric's testbench; the
            ``cache`` dict is shared across the metrics of one evaluation
            so related metrics (e.g. Gm and Gm/C_total) can share sweeps.
        spec_value: Optional callable ``(primitive) -> float`` giving the
            specification value used when the schematic value is zero
            (Eq. 6's second case, e.g. DP input offset).
        larger_is_better: Reporting hint only; the cost uses deviations.
        batch_evaluate: Optional callable ``(primitive, duts, caches) ->
            list[(value, n_sims) | Exception]`` measuring many DUTs at
            once through the stacked solver paths.  Must be bitwise
            identical to calling ``evaluate`` per DUT; per-member
            failures are returned (captured), not raised.  Metrics
            without one run serially inside
            :meth:`MosPrimitive.evaluate_many`.
    """

    name: str
    weight: float
    evaluate: Callable[["MosPrimitive", Circuit, dict], tuple[float, int]]
    spec_value: Callable[["MosPrimitive"], float] | None = None
    larger_is_better: bool = True
    batch_evaluate: (
        Callable[["MosPrimitive", list, list], list] | None
    ) = None


@dataclass(frozen=True)
class TuningTerminal:
    """A tuning terminal: nets whose wire RC is a free variable.

    Attributes:
        name: Human-readable terminal name, e.g. ``"source"``.
        nets: Nets that share the terminal's wire count (symmetric nets
            such as a DP's two drains must be sized identically).
        correlated_with: Names of other terminals whose optimum interacts
            with this one (optimized jointly by Algorithm 1).
        max_wires: Upper bound of the sweep.
    """

    name: str
    nets: tuple[str, ...]
    correlated_with: tuple[str, ...] = ()
    max_wires: int = 8


class MosPrimitive(ABC):
    """Base class for transistor primitives.

    Subclasses define class attributes:

    * ``family`` — family tag (``"differential_pair"`` ...),
    * ``ratio_suffix`` or constructor params as needed,

    and implement :meth:`templates`, :meth:`metrics`,
    :meth:`tuning_terminals` plus the metric testbenches.

    Args:
        tech: Technology node.
        base_fins: Total fins of the *unit* device (a template with
            ``m_ratio == r`` gets ``r * base_fins`` fins).
        name: Optional instance name.
    """

    family: str = "primitive"

    def __init__(self, tech: Technology, base_fins: int, name: str | None = None):
        if base_fins < 1:
            raise OptimizationError("base_fins must be >= 1")
        self.tech = tech
        self.base_fins = base_fins
        self.name = name or f"{self.family}_{base_fins}"
        self._schematic_reference: dict[str, float] | None = None
        self._reference_sims = 0

    # -- structure ---------------------------------------------------------

    @abstractmethod
    def templates(self) -> list["DeviceTemplate"]:
        """Device templates making up the primitive."""

    @abstractmethod
    def metrics(self) -> list[MetricSpec]:
        """Performance metrics with weights (the paper's Table II row)."""

    @abstractmethod
    def tuning_terminals(self) -> list[TuningTerminal]:
        """Tuning terminals with correlation annotations."""

    def matched_group(self) -> tuple[str, ...]:
        """Device names placed with the matching pattern.

        Defaults to every template with ``matched=True``.
        """
        return tuple(t.name for t in self.templates() if t.matched)

    def port_nets(self) -> tuple[str, ...]:
        """Externally visible nets, in declaration order."""
        seen: list[str] = []
        for template in self.templates():
            for net in template.terminals.values():
                if net not in seen and not net.startswith("int_"):
                    seen.append(net)
        return tuple(n for n in seen if n != "0")

    # -- layout ----------------------------------------------------------

    def variants(self, max_m: int = 8) -> list[MosGeometry]:
        """All (nfin, nf, m) factorizations of the unit device."""
        return enumerate_sizings(self.base_fins, max_m=max_m)

    def symmetric_net_pairs(self) -> tuple[tuple[str, str], ...]:
        """Net pairs that must stay matched in the layout.

        Defaults to every tuning terminal spanning exactly two nets (a
        DP's two drains); subclasses add non-tuned pairs such as gate
        inputs.
        """
        pairs = []
        for terminal in self.tuning_terminals():
            if len(terminal.nets) == 2:
                pairs.append((terminal.nets[0], terminal.nets[1]))
        return tuple(pairs)

    def cell_spec(self, base: MosGeometry) -> CellSpec:
        """Cell-generator input for one sizing of the unit device."""
        devices = tuple(
            CellDevice(
                name=t.name,
                polarity=t.polarity,
                geometry=MosGeometry(base.nfin, base.nf, base.m * t.m_ratio),
                terminals=dict(t.terminals),
            )
            for t in self.templates()
        )
        return CellSpec(
            name=self.name,
            devices=devices,
            matched_group=self.matched_group(),
            port_nets=self.port_nets(),
            symmetric_pairs=self.symmetric_net_pairs(),
        )

    def generate(
        self,
        base: MosGeometry,
        pattern: str,
        wires: WireConfig | None = None,
        verify: bool | None = None,
        strict: bool = False,
    ) -> Layout:
        """Generate one layout variant.

        ``verify``/``strict`` are forwarded to
        :func:`~repro.cellgen.generator.generate_layout`: by default the
        emitted layout carries its static-verification report in
        ``metadata["verification"]``.
        """
        return generate_layout(
            self.cell_spec(base), pattern, self.tech, wires,
            verify=verify, strict=strict,
        )

    def extract(self, layout: Layout, base: MosGeometry) -> ExtractedPrimitive:
        """Extract a generated layout."""
        return extract_primitive(layout, self.cell_spec(base), self.tech)

    def layout_circuit(self, base: MosGeometry, pattern: str, wires=None) -> Circuit:
        """Generate + extract + build the post-layout netlist in one call.

        Skips per-layout verification: the caller wants the netlist, not
        the layout, and the emitted-layout paths verify separately.
        """
        layout = self.generate(base, pattern, wires, verify=False)
        return self.extract(layout, base).build_circuit()

    # -- netlists -----------------------------------------------------------

    def schematic_circuit(self) -> Circuit:
        """The ideal (pre-layout) netlist: devices only, no parasitics.

        Junction capacitances assume ideal diffusion sharing — the value
        a designer enters pre-layout — so that generated layouts start at
        roughly the schematic capacitance and *wire* capacitance moves
        them above it, reproducing the paper's R-vs-C trade-off
        direction.
        """
        circuit = Circuit(f"{self.name}_schematic")
        circuit.ports = [n for n in self.port_nets()]
        for t in self.templates():
            card = self.tech.card(t.polarity)
            fins = self.base_fins * t.m_ratio
            cj_shared = card.cj_per_fin * fins * card.cj_shared_factor
            circuit.add_mosfet(
                t.name,
                d=t.terminals["d"],
                g=t.terminals["g"],
                s=t.terminals["s"],
                b=t.terminals.get("b", "0"),
                card=card,
                geometry=MosGeometry(self.base_fins, 1, t.m_ratio),
                cdb_override=cj_shared,
                csb_override=cj_shared,
            )
        return circuit

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, dut: Circuit) -> tuple[dict[str, float], int]:
        """Run every metric testbench against a DUT netlist.

        Returns the metric values and the number of simulations used.
        """
        values: dict[str, float] = {}
        sims = 0
        cache: dict = {}
        for metric in self.metrics():
            value, n = metric.evaluate(self, dut, cache)
            values[metric.name] = value
            sims += n
        injector = faults.active()
        if injector is not None:
            values = injector.poison_metrics(values)
        return values, sims

    def evaluate_many(self, duts: list[Circuit]) -> list:
        """Run every metric testbench against many DUT netlists at once.

        The vectorized counterpart of :meth:`evaluate` for the
        ``--batch`` fast path: metrics that declare a
        :attr:`~MetricSpec.batch_evaluate` measure the whole batch
        through the stacked solver paths, the rest run serially per
        member.  Returns one entry per DUT — ``(values, n_sims)``
        exactly as :meth:`evaluate` would produce, or None for a member
        whose evaluation failed (the caller re-runs that member serially
        so the failure surfaces through the ordinary retry machinery).

        Not meant to run under fault injection: injected faults key on
        the single-evaluation context, so the batched entry points gate
        on an inactive injector before coming here.
        """
        count = len(duts)
        values: list[dict[str, float]] = [{} for _ in range(count)]
        sims = [0] * count
        caches: list[dict] = [{} for _ in range(count)]
        dead = [False] * count
        for metric in self.metrics():
            live = [i for i in range(count) if not dead[i]]
            if not live:
                break
            if metric.batch_evaluate is not None and len(live) > 1:
                outcomes = metric.batch_evaluate(
                    self, [duts[i] for i in live], [caches[i] for i in live]
                )
                for i, outcome in zip(live, outcomes):
                    if isinstance(outcome, Exception):
                        dead[i] = True
                    else:
                        value, n = outcome
                        values[i][metric.name] = value
                        sims[i] += n
            else:
                for i in live:
                    try:
                        value, n = metric.evaluate(self, duts[i], caches[i])
                    except Exception as exc:
                        if not is_eval_failure(exc):
                            raise
                        dead[i] = True
                    else:
                        values[i][metric.name] = value
                        sims[i] += n
        return [
            None if dead[i] else (values[i], sims[i]) for i in range(count)
        ]

    def schematic_reference(self) -> dict[str, float]:
        """Metric values of the schematic netlist (cached).

        A non-finite reference would silently poison every cost computed
        against it, so it is rejected (and *not* cached) instead.
        """
        if self._schematic_reference is None:
            values, sims = self.evaluate(self.schematic_circuit())
            bad = sorted(
                name
                for name, value in values.items()
                if not math.isfinite(value)
            )
            if bad:
                raise MeasureError(
                    f"{self.name}: non-finite schematic reference for "
                    f"{', '.join(bad)}"
                )
            self._schematic_reference, self._reference_sims = values, sims
        return self._schematic_reference

    def set_schematic_reference(
        self, values: dict[str, float], simulations: int = 0
    ) -> None:
        """Install a precomputed schematic reference (checkpoint resume)."""
        self._schematic_reference = dict(values)
        self._reference_sims = simulations

    def metric(self, name: str) -> MetricSpec:
        """Look up a metric by name."""
        for metric in self.metrics():
            if metric.name == name:
                return metric
        raise OptimizationError(f"{self.name}: no metric named {name!r}")

    def random_offset_sigma(self) -> float:
        """1-sigma random input-referred offset of the matched pair (V).

        Used as the reference for offset specs (the paper sets the spec
        to 10% of the random offset).
        """
        sigma_dev = self.tech.nmos.sigma_vth_fin / (self.base_fins**0.5)
        return float(2.0**0.5) * sigma_dev


@dataclass(frozen=True)
class DeviceTemplate:
    """One device slot in a primitive topology.

    Attributes:
        name: Device name.
        polarity: ``"n"`` or ``"p"``.
        terminals: Terminal → net mapping (nets starting with ``int_``
            are internal and never become ports).
        m_ratio: Multiplicity relative to the unit device (ratioed
            mirrors use >1).
        matched: Whether the device belongs to the matched (patterned)
            group.
    """

    name: str
    polarity: str
    terminals: dict[str, str]
    m_ratio: int = 1
    matched: bool = True
