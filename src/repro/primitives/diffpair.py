"""Differential-pair primitives.

Table II row *DIFFERENTIAL PAIR*: metrics ``Gm`` (α=0.5),
``Gm/C_total`` (α=0.5) and input offset (α=1), tuning terminals at the
source and drain RC.  The Gm testbench is the paper's Fig. 4: an AC
voltage at one gate, the AC drain currents measured through the drain
bias sources.

Variants: the cascoded pair used in amplifiers/comparators, the switched
pair used in data converters, and the PMOS mirror image.
"""

from __future__ import annotations

from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc
from repro.tech.pdk import Technology


class DifferentialPair(MosPrimitive):
    """NMOS differential pair with an external ideal tail bias.

    Args:
        tech: Technology node.
        base_fins: Fins per side.
        vcm: Input common-mode voltage (V).
        vout: Drain bias voltage (V).
        i_tail: Tail current (A); default 0.3 uA per fin per side.
        c_load: External load capacitance per output from the schematic
            context (F); defaults to the gate capacitance of a
            same-sized next stage (~52 aF per fin).
    """

    family = "differential_pair"
    polarity = "n"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 960,
        name: str | None = None,
        vcm: float | None = None,
        vout: float | None = None,
        i_tail: float | None = None,
        c_load: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.vcm = vcm if vcm is not None else 0.68 * tech.vdd
        self.vout = vout if vout is not None else 0.75 * tech.vdd
        self.i_tail = i_tail if i_tail is not None else 0.15e-6 * base_fins
        self.c_load = c_load if c_load is not None else 5.2e-17 * base_fins

    # -- structure ---------------------------------------------------------

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MA", self.polarity, {"d": "outp", "g": "inp", "s": "tail"}),
            DeviceTemplate("MB", self.polarity, {"d": "outn", "g": "inn", "s": "tail"}),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("gm", WEIGHT_MEDIUM, _eval_gm, batch_evaluate=_eval_gm_many),
            MetricSpec(
                "gm_over_ctotal",
                WEIGHT_MEDIUM,
                _eval_gm_over_ctotal,
                batch_evaluate=_eval_gm_over_ctotal_many,
            ),
            MetricSpec(
                "offset",
                WEIGHT_HIGH,
                _eval_offset,
                spec_value=lambda prim: 0.1 * prim.random_offset_sigma(),
                larger_is_better=False,
                batch_evaluate=_eval_offset_many,
            ),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("tail",)),
            TuningTerminal("drain", nets=("outp", "outn")),
        ]

    def symmetric_net_pairs(self) -> tuple[tuple[str, str], ...]:
        return super().symmetric_net_pairs() + (("inp", "inn"),)

    # -- testbench construction --------------------------------------------

    def _bias_testbench(self, dut: Circuit, vin_diff: float = 0.0) -> Circuit:
        """DUT with bias sources; differential input split +x/2, -x/2."""
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vinp", "inp", "0", self.vcm + vin_diff / 2.0)
        tb.add_vsource("vinn", "inn", "0", self.vcm - vin_diff / 2.0)
        tb.add_vsource("voutp", "outp", "0", self.vout)
        tb.add_vsource("voutn", "outn", "0", self.vout)
        tb.add_isource("itail", "tail", "0", self.i_tail)
        return tb

    def gm_testbench(self, dut: Circuit) -> Circuit:
        """Fig. 4: AC at one gate, drain currents through bias sources."""
        tb = self._bias_testbench(dut)
        tb.replace_element(
            "vinp", VoltageSource("vinp", "inp", "0", Dc(self.vcm), ac_magnitude=1.0)
        )
        return tb

    def cout_testbench(self, dut: Circuit) -> Circuit:
        """AC voltage probe on one output, load capacitor included."""
        tb = self._bias_testbench(dut)
        tb.replace_element(
            "voutp",
            VoltageSource("voutp", "outp", "0", Dc(self.vout), ac_magnitude=1.0),
        )
        return tb


class PmosDifferentialPair(DifferentialPair):
    """PMOS differential pair (tail sourced from VDD)."""

    family = "pmos_differential_pair"
    polarity = "p"

    def __init__(self, tech: Technology, base_fins: int = 960, **kwargs):
        kwargs.setdefault("vcm", 0.32 * tech.vdd)
        kwargs.setdefault("vout", 0.25 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate(
                "MA", "p", {"d": "outp", "g": "inp", "s": "tail", "b": "vdd!"}
            ),
            DeviceTemplate(
                "MB", "p", {"d": "outn", "g": "inn", "s": "tail", "b": "vdd!"}
            ),
        ]

    def _bias_testbench(self, dut: Circuit, vin_diff: float = 0.0) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        vdd = self.tech.vdd
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vinp", "inp", "0", self.vcm + vin_diff / 2.0)
        tb.add_vsource("vinn", "inn", "0", self.vcm - vin_diff / 2.0)
        tb.add_vsource("voutp", "outp", "0", self.vout)
        tb.add_vsource("voutn", "outn", "0", self.vout)
        # Tail current pulled from VDD into the tail node.
        tb.add_isource("itail", "vdd!", "tail", self.i_tail)
        return tb


class CascodeDifferentialPair(DifferentialPair):
    """Cascoded differential pair (input pair plus cascode devices)."""

    family = "cascode_differential_pair"

    def __init__(self, tech: Technology, base_fins: int = 960, **kwargs):
        kwargs.setdefault("vout", 0.85 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)
        self.v_cascode = 0.85 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MA", "n", {"d": "int_cp", "g": "inp", "s": "tail"}),
            DeviceTemplate("MB", "n", {"d": "int_cn", "g": "inn", "s": "tail"}),
            DeviceTemplate("MCA", "n", {"d": "outp", "g": "vcas", "s": "int_cp"}),
            DeviceTemplate("MCB", "n", {"d": "outn", "g": "vcas", "s": "int_cn"}),
        ]

    def _bias_testbench(self, dut: Circuit, vin_diff: float = 0.0) -> Circuit:
        tb = super()._bias_testbench(dut, vin_diff)
        tb.add_vsource("vcasb", "vcas", "0", self.v_cascode)
        return tb

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("tail",)),
            TuningTerminal(
                "cascode", nets=("int_cp", "int_cn"), correlated_with=("drain",)
            ),
            TuningTerminal(
                "drain", nets=("outp", "outn"), correlated_with=("cascode",)
            ),
        ]


class SwitchedDifferentialPair(DifferentialPair):
    """Switched differential pair (data-converter style, enable switch)."""

    family = "switched_differential_pair"

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MA", "n", {"d": "outp", "g": "inp", "s": "int_t"}),
            DeviceTemplate("MB", "n", {"d": "outn", "g": "inn", "s": "int_t"}),
            DeviceTemplate(
                "MSW", "n", {"d": "int_t", "g": "en", "s": "tail"}, matched=False
            ),
        ]

    def _bias_testbench(self, dut: Circuit, vin_diff: float = 0.0) -> Circuit:
        tb = super()._bias_testbench(dut, vin_diff)
        tb.add_vsource("ven", "en", "0", self.tech.vdd)
        return tb


# --- metric evaluators -------------------------------------------------------
# Shared cache keys: "gm", "ctotal". MosPrimitive.evaluate passes one cache
# per evaluation so gm_over_ctotal reuses the Gm sweep (3 sims per config
# total, matching Table V).


def _eval_gm(prim: DifferentialPair, dut: Circuit, cache: dict) -> tuple[float, int]:
    tb = prim.gm_testbench(dut)
    freqs, current = tbh.transfer_current(
        tb, prim.tech, ["voutp", "voutn"], [1.0, -1.0]
    )
    gm = abs(current[0])
    cache["gm"] = float(gm)
    return float(gm), 1


def _eval_gm_over_ctotal(
    prim: DifferentialPair, dut: Circuit, cache: dict
) -> tuple[float, int]:
    sims = 0
    if "gm" not in cache:
        _, extra = _eval_gm(prim, dut, cache)
        sims += extra
    tb = prim.cout_testbench(dut)
    cout = tbh.port_capacitance(tb, prim.tech, "voutp")
    sims += 1
    ctotal = cout + prim.c_load
    cache["ctotal"] = ctotal
    return cache["gm"] / ctotal, sims


def _eval_offset(
    prim: DifferentialPair, dut: Circuit, cache: dict
) -> tuple[float, int]:
    from repro.errors import MeasureError

    def build(x: float) -> Circuit:
        return prim._bias_testbench(dut, vin_diff=x)

    def response(op) -> float:
        return op.i("voutp") - op.i("voutn")

    try:
        offset = tbh.dc_offset_bisection(build, prim.tech, response)
    except MeasureError:
        # The pair no longer steers within the bracket (e.g. the bias has
        # collapsed under extreme route IR drop): report a saturated
        # offset so the cost function rejects the configuration.
        offset = 0.05
    return abs(offset), 1


# --- batched metric evaluators ----------------------------------------------
# Each mirrors its serial counterpart arithmetic-for-arithmetic; exceptions
# are returned in place so MosPrimitive.evaluate_many can drop the member
# back to the serial path where the identical failure reproduces.


def _eval_gm_many(
    prim: DifferentialPair, duts: list[Circuit], caches: list[dict]
) -> list:
    tbs = [prim.gm_testbench(dut) for dut in duts]
    results = tbh.transfer_current_many(
        tbs, prim.tech, ["voutp", "voutn"], [1.0, -1.0]
    )
    out: list = []
    for i, res in enumerate(results):
        if isinstance(res, Exception):
            out.append(res)
            continue
        _freqs, current = res
        gm = abs(current[0])
        caches[i]["gm"] = float(gm)
        out.append((float(gm), 1))
    return out


def _eval_gm_over_ctotal_many(
    prim: DifferentialPair, duts: list[Circuit], caches: list[dict]
) -> list:
    count = len(duts)
    sims = [0] * count
    out: list = [None] * count
    need = [i for i in range(count) if "gm" not in caches[i]]
    if need:
        gm_results = _eval_gm_many(
            prim, [duts[i] for i in need], [caches[i] for i in need]
        )
        for i, res in zip(need, gm_results):
            if isinstance(res, Exception):
                out[i] = res
            else:
                sims[i] += res[1]
    live = [i for i in range(count) if out[i] is None]
    couts = tbh.port_capacitance_many(
        [prim.cout_testbench(duts[i]) for i in live], prim.tech, "voutp"
    )
    for i, cout in zip(live, couts):
        if isinstance(cout, Exception):
            out[i] = cout
            continue
        sims[i] += 1
        ctotal = cout + prim.c_load
        caches[i]["ctotal"] = ctotal
        out[i] = (caches[i]["gm"] / ctotal, sims[i])
    return out


def _eval_offset_many(
    prim: DifferentialPair, duts: list[Circuit], caches: list[dict]
) -> list:
    from repro.errors import MeasureError

    def make_build(dut: Circuit):
        def build(x: float) -> Circuit:
            return prim._bias_testbench(dut, vin_diff=x)

        return build

    def response(op) -> float:
        return op.i("voutp") - op.i("voutn")

    roots = tbh.dc_offset_bisection_many(
        [make_build(dut) for dut in duts], prim.tech, response
    )
    out: list = []
    for root in roots:
        if isinstance(root, MeasureError):
            # Same saturation the serial path applies when the pair no
            # longer steers within the bracket.
            out.append((0.05, 1))
        elif isinstance(root, Exception):
            out.append(root)
        else:
            out.append((abs(root), 1))
    return out
