"""Digital-like analog primitives.

Table II row *CURRENT-STARVED INVERTER*: delay (α=1), current (α=1) and
gain (α=0.5), tuning terminals at the source/drain RC.  Cross-coupled
pairs/inverters and switches complete the family (paper Section II-A).
"""

from __future__ import annotations

import numpy as np

from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice import measure
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc
from repro.tech.pdk import Technology


class CurrentStarvedInverter(MosPrimitive):
    """Current-starved inverter: inverter pair plus starving devices.

    The VCO's unit cell.  The starve gates are external ports (``vbp``,
    ``vbn``) so a control voltage can modulate the delay.

    Args:
        tech: Technology node.
        base_fins: Fins of each device.
        v_ctrl: Starve bias magnitude relative to the rails (V); higher
            means more current and less starving.
        c_load: External load capacitance at the output (F).
    """

    family = "current_starved_inverter"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 48,
        name: str | None = None,
        v_ctrl: float | None = None,
        c_load: float = 2.0e-15,
    ):
        super().__init__(tech, base_fins, name)
        self.v_ctrl = v_ctrl if v_ctrl is not None else 0.7 * tech.vdd
        self.c_load = c_load

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MP", "p", {"d": "out", "g": "in", "s": "int_sp", "b": "vdd!"}),
            DeviceTemplate("MN", "n", {"d": "out", "g": "in", "s": "int_sn"}),
            DeviceTemplate(
                "MPS", "p", {"d": "int_sp", "g": "vbp", "s": "vdd!", "b": "vdd!"}
            ),
            DeviceTemplate("MNS", "n", {"d": "int_sn", "g": "vbn", "s": "0"}),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("delay", WEIGHT_HIGH, _eval_delay, larger_is_better=False),
            MetricSpec("current", WEIGHT_HIGH, _eval_starved_current),
            MetricSpec("gain", WEIGHT_MEDIUM, _eval_inverter_gain),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("starve_p", nets=("int_sp",), correlated_with=("starve_n",)),
            TuningTerminal("starve_n", nets=("int_sn",), correlated_with=("starve_p",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit, vin: float | None = None) -> Circuit:
        vdd = self.tech.vdd
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vbp", "vbp", "0", vdd - self.v_ctrl)
        tb.add_vsource("vbn", "vbn", "0", self.v_ctrl)
        tb.add_vsource("vin", "in", "0", vdd / 2.0 if vin is None else vin)
        tb.add_capacitor("cload", "out", "0", self.c_load)
        return tb


class DifferentialDelayCell(MosPrimitive):
    """Differential current-starved delay stage with an internal keeper.

    The RO-VCO's unit cell: two current-starved inverters plus a weak
    cross-coupled inverter keeper, all in one primitive so the
    regeneration loop never crosses a block boundary (a keeper fighting
    its inverter across global-route resistance latches mid-rail).

    ``base_fins`` sizes the keeper devices; the inverter/starve devices
    are ``drive_ratio`` times larger.
    """

    family = "differential_delay_cell"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 8,
        name: str | None = None,
        drive_ratio: int = 6,
        v_ctrl: float | None = None,
        c_load: float = 2.0e-15,
    ):
        super().__init__(tech, base_fins, name)
        if drive_ratio < 1:
            raise ValueError("drive_ratio must be >= 1")
        self.drive_ratio = drive_ratio
        self.v_ctrl = v_ctrl if v_ctrl is not None else 0.7 * tech.vdd
        self.c_load = c_load

    def templates(self) -> list[DeviceTemplate]:
        r = self.drive_ratio
        inv = []
        for side, inp, out in (("a", "ina", "outa"), ("b", "inb", "outb")):
            inv += [
                DeviceTemplate(
                    f"MP{side}", "p",
                    {"d": out, "g": inp, "s": f"int_sp{side}", "b": "vdd!"},
                    m_ratio=r,
                ),
                DeviceTemplate(
                    f"MN{side}", "n",
                    {"d": out, "g": inp, "s": f"int_sn{side}"},
                    m_ratio=r,
                ),
                DeviceTemplate(
                    f"MPS{side}", "p",
                    {"d": f"int_sp{side}", "g": "vbp", "s": "vdd!", "b": "vdd!"},
                    m_ratio=r,
                ),
                DeviceTemplate(
                    f"MNS{side}", "n",
                    {"d": f"int_sn{side}", "g": "vbn", "s": "0"},
                    m_ratio=r,
                ),
            ]
        keepers = [
            DeviceTemplate(
                "MKPA", "p", {"d": "outa", "g": "outb", "s": "vdd!", "b": "vdd!"}
            ),
            DeviceTemplate("MKNA", "n", {"d": "outa", "g": "outb", "s": "0"}),
            DeviceTemplate(
                "MKPB", "p", {"d": "outb", "g": "outa", "s": "vdd!", "b": "vdd!"}
            ),
            DeviceTemplate("MKNB", "n", {"d": "outb", "g": "outa", "s": "0"}),
        ]
        return inv + keepers

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("delay", WEIGHT_HIGH, _eval_cell_delay, larger_is_better=False),
            MetricSpec("current", WEIGHT_HIGH, _eval_cell_current),
            MetricSpec("gain", WEIGHT_MEDIUM, _eval_cell_gain),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal(
                "starve_p", nets=("int_spa", "int_spb"),
                correlated_with=("starve_n",),
            ),
            TuningTerminal(
                "starve_n", nets=("int_sna", "int_snb"),
                correlated_with=("starve_p",),
            ),
            TuningTerminal("drain", nets=("outa", "outb")),
        ]

    def symmetric_net_pairs(self) -> tuple[tuple[str, str], ...]:
        return (
            ("outa", "outb"),
            ("ina", "inb"),
            ("int_spa", "int_spb"),
            ("int_sna", "int_snb"),
        )

    def bias_testbench(
        self, dut: Circuit, vin: float | None = None
    ) -> Circuit:
        vdd = self.tech.vdd
        mid = vdd / 2.0 if vin is None else vin
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource("vbp", "vbp", "0", vdd - self.v_ctrl)
        tb.add_vsource("vbn", "vbn", "0", self.v_ctrl)
        tb.add_vsource("vina", "ina", "0", mid)
        tb.add_vsource("vinb", "inb", "0", vdd - mid)
        tb.add_capacitor("cla", "outa", "0", self.c_load)
        tb.add_capacitor("clb", "outb", "0", self.c_load)
        return tb


class CrossCoupledPair(MosPrimitive):
    """NMOS cross-coupled pair: negative-Gm cell.

    Metrics: the magnitude of the negative conductance (α=1) and the
    output capacitance (α=0.5).
    """

    family = "cross_coupled_pair"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 240,
        name: str | None = None,
        i_tail: float | None = None,
        vout: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.i_tail = i_tail if i_tail is not None else 0.6e-6 * base_fins
        self.vout = vout if vout is not None else 0.7 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MA", "n", {"d": "outp", "g": "outn", "s": "tail"}),
            DeviceTemplate("MB", "n", {"d": "outn", "g": "outp", "s": "tail"}),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("neg_gm", WEIGHT_HIGH, _eval_neg_gm),
            MetricSpec("cout", WEIGHT_MEDIUM, _eval_xcp_cout, larger_is_better=False),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("tail",)),
            TuningTerminal("drain", nets=("outp", "outn")),
        ]

    def bias_testbench(self, dut: Circuit, ac_out: bool = False) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource(
            "voutp", "outp", "0", Dc(self.vout), ac_magnitude=1.0 if ac_out else 0.0
        )
        tb.add_vsource("voutn", "outn", "0", self.vout)
        tb.add_isource("itail", "tail", "0", self.i_tail)
        return tb


class CrossCoupledInverters(MosPrimitive):
    """Cross-coupled CMOS inverter latch (StrongARM regeneration core)."""

    family = "cross_coupled_inverters"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 96,
        name: str | None = None,
    ):
        super().__init__(tech, base_fins, name)

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MPA", "p", {"d": "outp", "g": "outn", "s": "vdd!", "b": "vdd!"}),
            DeviceTemplate("MNA", "n", {"d": "outp", "g": "outn", "s": "0"}),
            DeviceTemplate("MPB", "p", {"d": "outn", "g": "outp", "s": "vdd!", "b": "vdd!"}),
            DeviceTemplate("MNB", "n", {"d": "outn", "g": "outp", "s": "0"}),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("neg_gm", WEIGHT_HIGH, _eval_latch_neg_gm),
            MetricSpec("cout", WEIGHT_MEDIUM, _eval_latch_cout, larger_is_better=False),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [TuningTerminal("drain", nets=("outp", "outn"))]

    def bias_testbench(self, dut: Circuit, ac_out: bool = False) -> Circuit:
        vdd = self.tech.vdd
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", vdd)
        tb.add_vsource(
            "voutp", "outp", "0", Dc(vdd / 2), ac_magnitude=1.0 if ac_out else 0.0
        )
        tb.add_vsource("voutn", "outn", "0", vdd / 2)
        return tb


class RegenerativePair(MosPrimitive):
    """NMOS cross-coupled pair with *separate* sources.

    The StrongARM latch's M3/M4: gates cross-coupled to the output nodes,
    sources riding on the input pair's drains.  Metrics: regeneration
    transconductance (α=1) and output capacitance (α=0.5).
    """

    family = "regenerative_pair"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 96,
        name: str | None = None,
        v_src: float | None = None,
        vout: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.v_src = v_src if v_src is not None else 0.15 * tech.vdd
        self.vout = vout if vout is not None else 0.65 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MA", "n", {"d": "outp", "g": "outn", "s": "srcp"}),
            DeviceTemplate("MB", "n", {"d": "outn", "g": "outp", "s": "srcn"}),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("neg_gm", WEIGHT_HIGH, _eval_regen_gm),
            MetricSpec("cout", WEIGHT_MEDIUM, _eval_regen_cout, larger_is_better=False),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("srcp", "srcn")),
            TuningTerminal("drain", nets=("outp", "outn")),
        ]

    def bias_testbench(self, dut: Circuit, ac_out: bool = False) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource(
            "voutp", "outp", "0", Dc(self.vout), ac_magnitude=1.0 if ac_out else 0.0
        )
        tb.add_vsource("voutn", "outn", "0", self.vout)
        tb.add_vsource("vsrcp", "srcp", "0", self.v_src)
        tb.add_vsource("vsrcn", "srcn", "0", self.v_src)
        return tb


class PmosCrossCoupledPair(CrossCoupledPair):
    """PMOS cross-coupled pair, sources at VDD (StrongARM M5/M6)."""

    family = "pmos_cross_coupled_pair"

    def __init__(self, tech: Technology, base_fins: int = 96, **kwargs):
        kwargs.setdefault("vout", 0.5 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate(
                "MA", "p", {"d": "outp", "g": "outn", "s": "vdd!", "b": "vdd!"}
            ),
            DeviceTemplate(
                "MB", "p", {"d": "outn", "g": "outp", "s": "vdd!", "b": "vdd!"}
            ),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("vdd!",)),
            TuningTerminal("drain", nets=("outp", "outn")),
        ]

    def bias_testbench(self, dut: Circuit, ac_out: bool = False) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_vsource(
            "voutp", "outp", "0", Dc(self.vout), ac_magnitude=1.0 if ac_out else 0.0
        )
        tb.add_vsource("voutn", "outn", "0", self.vout)
        return tb


class TransmissionSwitch(MosPrimitive):
    """NMOS switch; metrics on-resistance (α=1) and off capacitance."""

    family = "switch"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 96,
        name: str | None = None,
        v_signal: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.v_signal = v_signal if v_signal is not None else 0.3 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("MSW", "n", {"d": "a", "g": "en", "s": "b"})]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("ron", WEIGHT_HIGH, _eval_ron, larger_is_better=False),
            MetricSpec("coff", WEIGHT_MEDIUM, _eval_coff, larger_is_better=False),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [TuningTerminal("channel", nets=("a", "b"))]

    def bias_testbench(self, dut: Circuit, on: bool) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("ven", "en", "0", self.tech.vdd if on else 0.0)
        tb.add_vsource(
            "va", "a", "0", Dc(self.v_signal), ac_magnitude=1.0
        )
        tb.add_vsource("vb", "b", "0", self.v_signal)
        return tb


class PmosSwitch(TransmissionSwitch):
    """PMOS switch (StrongARM precharge device); enable is active low."""

    family = "pmos_switch"

    def __init__(self, tech: Technology, base_fins: int = 96, **kwargs):
        kwargs.setdefault("v_signal", 0.8 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate(
                "MSW", "p", {"d": "a", "g": "en", "s": "b", "b": "vdd!"}
            )
        ]

    def bias_testbench(self, dut: Circuit, on: bool) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_vsource("ven", "en", "0", 0.0 if on else self.tech.vdd)
        tb.add_vsource("va", "a", "0", Dc(self.v_signal), ac_magnitude=1.0)
        tb.add_vsource("vb", "b", "0", self.v_signal)
        return tb


# --- metric evaluators ----------------------------------------------------


def _eval_regen_gm(prim: RegenerativePair, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    freqs, y = tbh.port_admittance(tb, prim.tech, "voutp")
    return abs(float(np.real(y[0]))), 1


def _eval_regen_cout(prim: RegenerativePair, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    return tbh.port_capacitance(tb, prim.tech, "voutp"), 1


def _eval_delay(prim: CurrentStarvedInverter, dut: Circuit, cache: dict):
    vdd = prim.tech.vdd
    tb = prim.bias_testbench(dut, vin=0.0)
    tb.replace_element(
        "vin", VoltageSource("vin", "in", "0", tbh.standard_pulse(0.0, vdd))
    )
    result = tbh.run_transient(tb, prim.tech, t_stop=1.2e-9, dt=1.0e-12)
    delay = measure.delay_between(
        result.t,
        result.v("in"),
        result.v("out"),
        vdd / 2.0,
        vdd / 2.0,
        direction_from="rise",
        direction_to="fall",
    )
    return delay, 1


def _eval_starved_current(prim: CurrentStarvedInverter, dut: Circuit, cache: dict):
    # The available (starve-limited) pull-up current: input low, output
    # pinned at mid-rail, current measured through the pinning source.
    tb = prim.bias_testbench(dut, vin=0.0)
    tb.add_vsource("vforce", "out", "0", prim.tech.vdd / 2.0)
    op = tbh.run_op(tb, prim.tech)
    return abs(op.i("vforce")), 1


def _eval_inverter_gain(prim: CurrentStarvedInverter, dut: Circuit, cache: dict):
    vdd = prim.tech.vdd
    tb = prim.bias_testbench(dut, vin=vdd / 2.0)
    tb.replace_element(
        "vin", VoltageSource("vin", "in", "0", Dc(vdd / 2.0), ac_magnitude=1.0)
    )
    op, ac = tbh.run_ac(tb, prim.tech)
    return float(abs(ac.v("out")[0])), 1


def _eval_cell_delay(prim: DifferentialDelayCell, dut: Circuit, cache: dict):
    vdd = prim.tech.vdd
    tb = prim.bias_testbench(dut, vin=0.0)
    tb.replace_element(
        "vina", VoltageSource("vina", "ina", "0", tbh.standard_pulse(0.0, vdd))
    )
    tb.replace_element(
        "vinb", VoltageSource("vinb", "inb", "0", tbh.standard_pulse(vdd, 0.0))
    )
    result = tbh.run_transient(tb, prim.tech, t_stop=1.5e-9, dt=1.5e-12)
    delay = measure.delay_between(
        result.t,
        result.v("ina"),
        result.v("outa"),
        vdd / 2.0,
        vdd / 2.0,
        direction_from="rise",
        direction_to="fall",
    )
    return delay, 1


def _eval_cell_current(prim: DifferentialDelayCell, dut: Circuit, cache: dict):
    # Starve-limited drive: inputs at the rails, one output pinned mid.
    tb = prim.bias_testbench(dut, vin=0.0)
    tb.add_vsource("vforce", "outa", "0", prim.tech.vdd / 2.0)
    op = tbh.run_op(tb, prim.tech)
    return abs(op.i("vforce")), 1


def _eval_cell_gain(prim: DifferentialDelayCell, dut: Circuit, cache: dict):
    vdd = prim.tech.vdd
    tb = prim.bias_testbench(dut)
    tb.replace_element(
        "vina", VoltageSource("vina", "ina", "0", Dc(vdd / 2.0), ac_magnitude=0.5)
    )
    tb.replace_element(
        "vinb",
        VoltageSource(
            "vinb", "inb", "0", Dc(vdd / 2.0), ac_magnitude=0.5, ac_phase_deg=180.0
        ),
    )
    op, ac = tbh.run_ac(tb, prim.tech)
    return float(abs(ac.v("outa")[0] - ac.v("outb")[0])), 1


def _eval_neg_gm(prim: CrossCoupledPair, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    freqs, y = tbh.port_admittance(tb, prim.tech, "voutp")
    return abs(float(np.real(y[0]))), 1


def _eval_xcp_cout(prim: CrossCoupledPair, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    return tbh.port_capacitance(tb, prim.tech, "voutp"), 1


def _eval_latch_neg_gm(prim: CrossCoupledInverters, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    freqs, y = tbh.port_admittance(tb, prim.tech, "voutp")
    return abs(float(np.real(y[0]))), 1


def _eval_latch_cout(prim: CrossCoupledInverters, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac_out=True)
    return tbh.port_capacitance(tb, prim.tech, "voutp"), 1


def _eval_ron(prim: TransmissionSwitch, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, on=True)
    return tbh.port_resistance(tb, prim.tech, "va"), 1


def _eval_coff(prim: TransmissionSwitch, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, on=False)
    return tbh.port_capacitance(tb, prim.tech, "va"), 1
