"""The primitive library registry.

The paper's flow assumes "a primitive library [containing] 20-30 primitive
netlists and procedural layout generation code" augmented with metrics,
weights, tuning terminals and testbenches.  :class:`PrimitiveLibrary`
registers every family in this package by name and builds instances bound
to a technology.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OptimizationError
from repro.primitives.amplifiers import (
    CommonDrainAmplifier,
    CommonGateAmplifier,
    CommonSourceAmplifier,
)
from repro.primitives.diffpair import (
    CascodeDifferentialPair,
    DifferentialPair,
    PmosDifferentialPair,
    SwitchedDifferentialPair,
)
from repro.primitives.digital import (
    CrossCoupledInverters,
    CrossCoupledPair,
    CurrentStarvedInverter,
    DifferentialDelayCell,
    PmosCrossCoupledPair,
    PmosSwitch,
    RegenerativePair,
    TransmissionSwitch,
)
from repro.primitives.loads import (
    CascodeCurrentSource,
    CascodeDiodeLoad,
    CurrentSourceLoad,
    DiodeLoad,
    PmosCurrentSource,
)
from repro.primitives.mirrors import (
    ActiveCurrentMirror,
    CascodeCurrentMirror,
    LowVoltageCascodeMirror,
    PassiveCurrentMirror,
    PmosCurrentMirror,
)
from repro.primitives.passive_prims import (
    MomCapacitorPrimitive,
    PolyResistorPrimitive,
    SpiralInductorPrimitive,
)
from repro.tech.pdk import Technology

_DEFAULT_FACTORIES: dict[str, Callable] = {
    "differential_pair": DifferentialPair,
    "pmos_differential_pair": PmosDifferentialPair,
    "cascode_differential_pair": CascodeDifferentialPair,
    "switched_differential_pair": SwitchedDifferentialPair,
    "current_mirror": PassiveCurrentMirror,
    "pmos_current_mirror": PmosCurrentMirror,
    "active_current_mirror": ActiveCurrentMirror,
    "cascode_current_mirror": CascodeCurrentMirror,
    "lv_cascode_current_mirror": LowVoltageCascodeMirror,
    "common_source_amplifier": CommonSourceAmplifier,
    "common_gate_amplifier": CommonGateAmplifier,
    "common_drain_amplifier": CommonDrainAmplifier,
    "current_source": CurrentSourceLoad,
    "pmos_current_source": PmosCurrentSource,
    "cascode_current_source": CascodeCurrentSource,
    "diode_load": DiodeLoad,
    "cascode_diode_load": CascodeDiodeLoad,
    "current_starved_inverter": CurrentStarvedInverter,
    "differential_delay_cell": DifferentialDelayCell,
    "cross_coupled_pair": CrossCoupledPair,
    "cross_coupled_inverters": CrossCoupledInverters,
    "switch": TransmissionSwitch,
    "pmos_switch": PmosSwitch,
    "regenerative_pair": RegenerativePair,
    "pmos_cross_coupled_pair": PmosCrossCoupledPair,
    "capacitor": MomCapacitorPrimitive,
    "resistor": PolyResistorPrimitive,
    "inductor": SpiralInductorPrimitive,
}


class PrimitiveLibrary:
    """Registry of primitive families, bound to a technology at build time.

    Example:
        >>> lib = PrimitiveLibrary()
        >>> dp = lib.create("differential_pair", Technology.default(),
        ...                 base_fins=960)
    """

    def __init__(self, factories: dict[str, Callable] | None = None):
        self._factories = dict(_DEFAULT_FACTORIES if factories is None else factories)

    def names(self) -> list[str]:
        """All registered primitive family names, sorted."""
        return sorted(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def register(self, name: str, factory: Callable) -> None:
        """Register an additional primitive family."""
        if name in self._factories:
            raise OptimizationError(f"primitive {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str, tech: Technology, **kwargs):
        """Build a primitive instance bound to ``tech``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise OptimizationError(
                f"unknown primitive {name!r}; known: {', '.join(self.names())}"
            ) from None
        return factory(tech, **kwargs)
