"""Load primitives: current sources and diode-connected structures.

Table II row *CURRENT SOURCE*: output current (α=1) and ``r_o`` (α=0.5),
tuning terminals at the source/drain RC.  Diode-connected loads use their
small-signal conductance (1/gm) and output capacitance.
"""

from __future__ import annotations

from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc
from repro.tech.pdk import Technology


class CurrentSourceLoad(MosPrimitive):
    """NMOS current source (gate at an external bias port).

    Args:
        tech: Technology node.
        base_fins: Device fins.
        i_target: Target output current (A); the gate bias is solved on
            the schematic (default 0.6 uA per fin).
        v_bias: Explicit gate bias (V); overrides ``i_target``.
        vout: Output drain bias (V).
    """

    family = "current_source"
    polarity = "n"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 480,
        name: str | None = None,
        i_target: float | None = None,
        v_bias: float | None = None,
        vout: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.i_target = i_target if i_target is not None else 0.6e-6 * base_fins
        self.vout = vout if vout is not None else 0.6 * tech.vdd
        self._v_bias = v_bias

    @property
    def v_bias(self) -> float:
        """Gate bias; solved lazily on the schematic for ``i_target``."""
        if self._v_bias is None:
            schematic = self.schematic_circuit()

            def build(v: float):
                tb = Circuit("bias_solve")
                tbh.attach_dut(tb, schematic)
                tb.add_vsource("vbias", "vb", "0", v)
                tb.add_vsource("vout", "out", "0", self.vout)
                if "vdd!" in schematic.ports:
                    tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
                if "vc" in schematic.ports:
                    tb.add_vsource("vcas", "vc", "0", getattr(self, "v_cascode", 0.0))
                return tb

            self._v_bias = tbh.solve_gate_bias(
                self.tech, build, lambda op: abs(op.i("vout")), self.i_target
            )
        return self._v_bias

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("M1", self.polarity, {"d": "out", "g": "vb", "s": "0"})]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("current", WEIGHT_HIGH, _eval_current),
            MetricSpec("rout", WEIGHT_MEDIUM, _eval_rout),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vbias", "vb", "0", self.v_bias)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb

    def probe_testbench(self, dut: Circuit) -> Circuit:
        tb = self.bias_testbench(dut)
        tb.replace_element(
            "vout", VoltageSource("vout", "out", "0", Dc(self.vout), ac_magnitude=1.0)
        )
        return tb

    def measured_current(self, op) -> float:
        return abs(op.i("vout"))


class PmosCurrentSource(CurrentSourceLoad):
    """PMOS current source sourcing from VDD."""

    family = "pmos_current_source"
    polarity = "p"

    def __init__(self, tech: Technology, base_fins: int = 480, **kwargs):
        kwargs.setdefault("vout", 0.4 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate(
                "M1", "p", {"d": "out", "g": "vb", "s": "vdd!", "b": "vdd!"}
            )
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("vdd!",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_vsource("vbias", "vb", "0", self.v_bias)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb


class CascodeCurrentSource(CurrentSourceLoad):
    """Cascoded NMOS current source (two stacked devices)."""

    family = "cascode_current_source"

    def __init__(self, tech: Technology, base_fins: int = 480, **kwargs):
        kwargs.setdefault("vout", 0.75 * tech.vdd)
        super().__init__(tech, base_fins, **kwargs)
        self.v_cascode = 0.85 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("M1", "n", {"d": "int_c", "g": "vb", "s": "0"}),
            DeviceTemplate("MC", "n", {"d": "out", "g": "vc", "s": "int_c"}),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("cascode", nets=("int_c",), correlated_with=("drain",)),
            TuningTerminal("drain", nets=("out",), correlated_with=("cascode",)),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = super().bias_testbench(dut)
        tb.add_vsource("vcas", "vc", "0", self.v_cascode)
        return tb


class DiodeLoad(MosPrimitive):
    """Diode-connected NMOS load; metrics 1/gm impedance and C_out."""

    family = "diode_load"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 240,
        name: str | None = None,
        i_bias: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        self.i_bias = i_bias if i_bias is not None else 0.6e-6 * base_fins

    def templates(self) -> list[DeviceTemplate]:
        return [DeviceTemplate("M1", "n", {"d": "out", "g": "out", "s": "0"})]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("impedance", WEIGHT_HIGH, _eval_diode_impedance),
            MetricSpec("cout", WEIGHT_MEDIUM, _eval_diode_cout, larger_is_better=False),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def bias_testbench(self, dut: Circuit, ac: float = 0.0) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_isource("ibias", "0", "out", self.i_bias, ac_magnitude=ac)
        return tb


class CascodeDiodeLoad(DiodeLoad):
    """Cascoded diode-connected load (two stacked diode devices)."""

    family = "cascode_diode_load"

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("M1", "n", {"d": "int_m", "g": "int_m", "s": "0"}),
            DeviceTemplate("MC", "n", {"d": "out", "g": "out", "s": "int_m"}),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("cascode", nets=("int_m",)),
            TuningTerminal("drain", nets=("out",)),
        ]


# --- metric evaluators --------------------------------------------------


def _eval_current(prim: CurrentSourceLoad, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut)
    op = tbh.run_op(tb, prim.tech)
    return prim.measured_current(op), 1


def _eval_rout(prim: CurrentSourceLoad, dut: Circuit, cache: dict):
    tb = prim.probe_testbench(dut)
    return tbh.port_resistance(tb, prim.tech, "vout"), 1


def _eval_diode_impedance(prim: DiodeLoad, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac=1.0)
    op, ac = tbh.run_ac(tb, prim.tech)
    return float(abs(ac.v("out")[0])), 1


def _eval_diode_cout(prim: DiodeLoad, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut, ac=1.0)
    op, ac = tbh.run_ac(tb, prim.tech)
    # C from the roll-off of the diode impedance: Y = I/V with I = 1A AC.
    y = 1.0 / ac.v("out")
    k = tbh.freq_index(ac.freqs, tbh.CAP_PROBE_FREQUENCY)
    import numpy as np

    return abs(float(np.imag(y[k]))) / (2.0 * np.pi * float(ac.freqs[k])), 1
