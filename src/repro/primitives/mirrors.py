"""Current-mirror primitives.

Table II row *CURRENT MIRROR*: output current (α=1) and output
capacitance (α=0.1 for the passive mirror; the active mirror used as an
amplifier load weights C_out at 0.5, per Section II-B).  Tuning terminals
are the source/drain RC.

Mirrors are where LDEs bite hardest (the paper cites [10]): the current
ratio depends on Vth matching between reference and output devices, so
pattern choice and aspect ratio shift the ratio directly.
"""

from __future__ import annotations

from repro.primitives.base import (
    DeviceTemplate,
    MetricSpec,
    MosPrimitive,
    TuningTerminal,
    WEIGHT_HIGH,
    WEIGHT_LOW,
    WEIGHT_MEDIUM,
)
from repro.primitives import testbenches as tbh
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Dc
from repro.tech.pdk import Technology


class PassiveCurrentMirror(MosPrimitive):
    """NMOS passive current mirror, 1:ratio.

    Args:
        tech: Technology node.
        base_fins: Fins of the reference device.
        ratio: Output/reference current ratio (integer).
        i_ref: Reference current (A); default 0.6 uA per fin.
        vout: Output drain bias (V).
    """

    family = "current_mirror"
    polarity = "n"

    def __init__(
        self,
        tech: Technology,
        base_fins: int = 240,
        ratio: int = 1,
        name: str | None = None,
        i_ref: float | None = None,
        vout: float | None = None,
    ):
        super().__init__(tech, base_fins, name)
        if ratio < 1:
            raise ValueError("mirror ratio must be >= 1")
        self.ratio = ratio
        self.i_ref = i_ref if i_ref is not None else 0.6e-6 * base_fins
        self.vout = vout if vout is not None else 0.6 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate("MREF", self.polarity, {"d": "in", "g": "in", "s": "0"}),
            DeviceTemplate(
                "MOUT",
                self.polarity,
                {"d": "out", "g": "in", "s": "0"},
                m_ratio=self.ratio,
            ),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec(
                "current_ratio",
                WEIGHT_HIGH,
                _eval_ratio,
                batch_evaluate=_eval_ratio_many,
            ),
            MetricSpec(
                "cout",
                WEIGHT_LOW,
                _eval_cout,
                larger_is_better=False,
                batch_evaluate=_eval_cout_many,
            ),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    # -- testbenches -------------------------------------------------------

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_isource("iin", "0", "in", self.i_ref)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb

    def cout_testbench(self, dut: Circuit) -> Circuit:
        tb = self.bias_testbench(dut)
        tb.replace_element(
            "vout", VoltageSource("vout", "out", "0", Dc(self.vout), ac_magnitude=1.0)
        )
        return tb

    def measured_ratio(self, op) -> float:
        """Output/reference current ratio from an operating point."""
        return -op.i("vout") / self.i_ref


class PmosCurrentMirror(PassiveCurrentMirror):
    """PMOS passive mirror (sources at VDD)."""

    family = "pmos_current_mirror"
    polarity = "p"

    def templates(self) -> list[DeviceTemplate]:
        return [
            DeviceTemplate(
                "MREF", "p", {"d": "in", "g": "in", "s": "vdd!", "b": "vdd!"}
            ),
            DeviceTemplate(
                "MOUT",
                "p",
                {"d": "out", "g": "in", "s": "vdd!", "b": "vdd!"},
                m_ratio=self.ratio,
            ),
        ]

    def __init__(self, tech: Technology, base_fins: int = 240, ratio: int = 1, **kw):
        kw.setdefault("vout", 0.4 * tech.vdd)
        super().__init__(tech, base_fins, ratio, **kw)

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = Circuit(f"{self.name}_tb")
        tbh.attach_dut(tb, dut)
        tb.add_vsource("vdd", "vdd!", "0", self.tech.vdd)
        tb.add_isource("iin", "in", "0", self.i_ref)
        tb.add_vsource("vout", "out", "0", self.vout)
        return tb

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("vdd!",)),
            TuningTerminal("drain", nets=("out",)),
        ]

    def measured_ratio(self, op) -> float:
        return op.i("vout") / self.i_ref


class ActiveCurrentMirror(PmosCurrentMirror):
    """Active (load) PMOS mirror; C_out weighted medium (amplifier load)."""

    family = "active_current_mirror"

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec(
                "current_ratio",
                WEIGHT_HIGH,
                _eval_ratio,
                batch_evaluate=_eval_ratio_many,
            ),
            MetricSpec(
                "cout",
                WEIGHT_MEDIUM,
                _eval_cout,
                larger_is_better=False,
                batch_evaluate=_eval_cout_many,
            ),
        ]


class CascodeCurrentMirror(PassiveCurrentMirror):
    """NMOS cascode mirror: diode stack mirrored onto a cascoded output."""

    family = "cascode_current_mirror"

    def __init__(self, tech: Technology, base_fins: int = 240, ratio: int = 1, **kw):
        kw.setdefault("vout", 0.75 * tech.vdd)
        super().__init__(tech, base_fins, ratio, **kw)

    def templates(self) -> list[DeviceTemplate]:
        r = self.ratio
        return [
            DeviceTemplate("MREF", "n", {"d": "int_a", "g": "int_a", "s": "0"}),
            DeviceTemplate("MCREF", "n", {"d": "in", "g": "in", "s": "int_a"}),
            DeviceTemplate(
                "MOUT", "n", {"d": "int_b", "g": "int_a", "s": "0"}, m_ratio=r
            ),
            DeviceTemplate(
                "MCOUT", "n", {"d": "out", "g": "in", "s": "int_b"}, m_ratio=r
            ),
        ]

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec(
                "current_ratio",
                WEIGHT_HIGH,
                _eval_ratio,
                batch_evaluate=_eval_ratio_many,
            ),
            MetricSpec(
                "rout", WEIGHT_MEDIUM, _eval_rout, batch_evaluate=_eval_rout_many
            ),
            MetricSpec(
                "cout",
                WEIGHT_LOW,
                _eval_cout,
                larger_is_better=False,
                batch_evaluate=_eval_cout_many,
            ),
        ]

    def tuning_terminals(self) -> list[TuningTerminal]:
        return [
            TuningTerminal("source", nets=("0",)),
            TuningTerminal(
                "cascode", nets=("int_a", "int_b"), correlated_with=("drain",)
            ),
            TuningTerminal("drain", nets=("out",), correlated_with=("cascode",)),
        ]


class LowVoltageCascodeMirror(CascodeCurrentMirror):
    """Wide-swing (low-voltage) cascode mirror with an external Vbias."""

    family = "lv_cascode_current_mirror"

    def __init__(self, tech: Technology, base_fins: int = 240, ratio: int = 1, **kw):
        super().__init__(tech, base_fins, ratio, **kw)
        self.v_bias = 0.75 * tech.vdd

    def templates(self) -> list[DeviceTemplate]:
        r = self.ratio
        return [
            DeviceTemplate("MREF", "n", {"d": "int_a", "g": "in", "s": "0"}),
            DeviceTemplate("MCREF", "n", {"d": "in", "g": "vb", "s": "int_a"}),
            DeviceTemplate(
                "MOUT", "n", {"d": "int_b", "g": "in", "s": "0"}, m_ratio=r
            ),
            DeviceTemplate(
                "MCOUT", "n", {"d": "out", "g": "vb", "s": "int_b"}, m_ratio=r
            ),
        ]

    def bias_testbench(self, dut: Circuit) -> Circuit:
        tb = super().bias_testbench(dut)
        tb.add_vsource("vbias", "vb", "0", self.v_bias)
        return tb


# --- metric evaluators --------------------------------------------------


def _eval_ratio(prim: PassiveCurrentMirror, dut: Circuit, cache: dict):
    tb = prim.bias_testbench(dut)
    op = tbh.run_op(tb, prim.tech)
    return prim.measured_ratio(op), 1


def _eval_cout(prim: PassiveCurrentMirror, dut: Circuit, cache: dict):
    tb = prim.cout_testbench(dut)
    cout = tbh.port_capacitance(tb, prim.tech, "vout")
    return cout, 1


def _eval_rout(prim: PassiveCurrentMirror, dut: Circuit, cache: dict):
    tb = prim.cout_testbench(dut)
    rout = tbh.port_resistance(tb, prim.tech, "vout")
    return rout, 1


# --- batched metric evaluators ------------------------------------------
# Arithmetic-identical to the serial evaluators above; exceptions are
# returned per member so evaluate_many can drop that member to the serial
# path where the identical failure reproduces.


def _eval_ratio_many(
    prim: PassiveCurrentMirror, duts: list[Circuit], caches: list[dict]
) -> list:
    tbs = [prim.bias_testbench(dut) for dut in duts]
    out: list = []
    for op in tbh.run_op_many(tbs, prim.tech):
        if isinstance(op, Exception):
            out.append(op)
        else:
            out.append((prim.measured_ratio(op), 1))
    return out


def _eval_cout_many(
    prim: PassiveCurrentMirror, duts: list[Circuit], caches: list[dict]
) -> list:
    tbs = [prim.cout_testbench(dut) for dut in duts]
    return [
        res if isinstance(res, Exception) else (res, 1)
        for res in tbh.port_capacitance_many(tbs, prim.tech, "vout")
    ]


def _eval_rout_many(
    prim: PassiveCurrentMirror, duts: list[Circuit], caches: list[dict]
) -> list:
    tbs = [prim.cout_testbench(dut) for dut in duts]
    return [
        res if isinstance(res, Exception) else (res, 1)
        for res in tbh.port_resistance_many(tbs, prim.tech, "vout")
    ]
