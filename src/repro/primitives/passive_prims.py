"""Passive primitives: MOM capacitor, poly resistor, spiral inductor.

Table II row *CAPACITOR*: capacitance (α=1) and frequency (α=0.1), tuning
the RC at the terminals.  Passive layout variants trade aspect ratio
(finger count / segment folding) against terminal resistance and
parasitic capacitance; the models come from :mod:`repro.devices.passives`.

These classes implement the same ``metrics()`` / ``evaluate()`` /
``schematic_reference()`` interface as :class:`~repro.primitives.base.
MosPrimitive`, so the cost machinery applies unchanged; layout variants
are value-preserving re-foldings rather than (nfin, nf, m) factorizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.passives import MomCapacitor, PolyResistor, SpiralInductor
from repro.errors import OptimizationError
from repro.primitives.base import MetricSpec, WEIGHT_HIGH, WEIGHT_LOW, WEIGHT_MEDIUM
from repro.primitives import testbenches as tbh
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology


@dataclass(frozen=True)
class PassiveVariant:
    """One folding of a passive into a layout.

    Attributes:
        segments: Number of fingers/segments.
        aspect_ratio: Resulting bounding-box aspect ratio (width/height).
    """

    segments: int
    aspect_ratio: float


class _PassivePrimitive:
    """Shared machinery for the passive primitives."""

    family = "passive"

    def __init__(self, tech: Technology, name: str):
        self.tech = tech
        self.name = name
        self._schematic_reference: dict[str, float] | None = None

    def variants(self) -> list[PassiveVariant]:
        """Folding options; squarer foldings have more contact parasitics."""
        return [
            PassiveVariant(segments=n, aspect_ratio=n * n / 16.0)
            for n in (1, 2, 4, 8)
        ]

    def metrics(self) -> list[MetricSpec]:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def evaluate(self, dut: Circuit) -> tuple[dict[str, float], int]:
        values: dict[str, float] = {}
        sims = 0
        cache: dict = {}
        for metric in self.metrics():
            value, n = metric.evaluate(self, dut, cache)
            values[metric.name] = value
            sims += n
        return values, sims

    def schematic_reference(self) -> dict[str, float]:
        if self._schematic_reference is None:
            self._schematic_reference, _ = self.evaluate(self.schematic_circuit())
        return self._schematic_reference

    def schematic_circuit(self) -> Circuit:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def layout_circuit(self, variant: PassiveVariant) -> Circuit:
        raise NotImplementedError


class MomCapacitorPrimitive(_PassivePrimitive):
    """Metal-oxide-metal finger capacitor primitive."""

    family = "capacitor"

    def __init__(self, tech: Technology, value: float = 100.0e-15, name: str = "momcap"):
        super().__init__(tech, name)
        if value <= 0:
            raise OptimizationError("capacitor value must be > 0")
        self.value = value

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("capacitance", WEIGHT_HIGH, _eval_capacitance),
            MetricSpec("frequency", WEIGHT_LOW, _eval_corner_frequency),
        ]

    def schematic_circuit(self) -> Circuit:
        circuit = Circuit(f"{self.name}_schematic")
        circuit.ports = ["a", "b"]
        circuit.add_capacitor("c1", "a", "b", self.value)
        return circuit

    def layout_circuit(self, variant: PassiveVariant) -> Circuit:
        # More segments -> shorter fingers -> lower series R, but more
        # bottom-plate parasitic from the extra routing.
        model = MomCapacitor(
            value=self.value,
            q_factor=50.0 * variant.segments,
            bottom_plate_ratio=0.04 + 0.01 * variant.segments,
        )
        circuit = Circuit(f"{self.name}_seg{variant.segments}")
        circuit.ports = ["a", "b"]
        circuit.add_resistor("resr", "a", "a_i", max(model.series_resistance, 1e-3))
        circuit.add_capacitor("c1", "a_i", "b", self.value)
        circuit.add_capacitor("cbp", "b", "0", model.bottom_plate_capacitance)
        return circuit


class PolyResistorPrimitive(_PassivePrimitive):
    """Folded precision poly resistor primitive."""

    family = "resistor"

    def __init__(self, tech: Technology, value: float = 10.0e3, name: str = "polyres"):
        super().__init__(tech, name)
        if value <= 0:
            raise OptimizationError("resistor value must be > 0")
        self.value = value

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("resistance", WEIGHT_HIGH, _eval_resistance),
            MetricSpec(
                "parasitic_c", WEIGHT_LOW, _eval_shunt_cap, larger_is_better=False
            ),
        ]

    def schematic_circuit(self) -> Circuit:
        circuit = Circuit(f"{self.name}_schematic")
        circuit.ports = ["a", "b"]
        circuit.add_resistor("r1", "a", "b", self.value)
        return circuit

    def layout_circuit(self, variant: PassiveVariant) -> Circuit:
        model = PolyResistor(value=self.value, segments=variant.segments)
        circuit = Circuit(f"{self.name}_seg{variant.segments}")
        circuit.ports = ["a", "b"]
        circuit.add_resistor("r1", "a", "b", model.effective_resistance)
        circuit.add_capacitor("cp", "b", "0", model.parasitic_capacitance)
        return circuit


class SpiralInductorPrimitive(_PassivePrimitive):
    """Planar spiral inductor primitive (L and Q metrics)."""

    family = "inductor"

    def __init__(self, tech: Technology, value: float = 1.0e-9, name: str = "spiral"):
        super().__init__(tech, name)
        if value <= 0:
            raise OptimizationError("inductor value must be > 0")
        self.value = value

    def metrics(self) -> list[MetricSpec]:
        return [
            MetricSpec("inductance", WEIGHT_HIGH, _eval_inductance),
            MetricSpec("q_factor", WEIGHT_MEDIUM, _eval_q_factor),
        ]

    def schematic_circuit(self) -> Circuit:
        circuit = Circuit(f"{self.name}_schematic")
        circuit.ports = ["a", "b"]
        circuit.add_inductor("l1", "a", "b", self.value)
        # A tiny series R keeps Q finite for the schematic reference.
        return circuit

    def layout_circuit(self, variant: PassiveVariant) -> Circuit:
        model = SpiralInductor(value=self.value, q_factor=8.0 + variant.segments)
        circuit = Circuit(f"{self.name}_seg{variant.segments}")
        circuit.ports = ["a", "b"]
        circuit.add_inductor("l1", "a", "a_i", self.value)
        circuit.add_resistor("rs", "a_i", "b", model.series_resistance)
        circuit.add_capacitor("cs", "a", "0", model.shunt_capacitance)
        return circuit


# --- metric evaluators -------------------------------------------------------


def _impedance_probe(prim, dut: Circuit):
    """AC sweep with node ``b`` grounded and an AC source at ``a``."""
    tb = Circuit(f"{prim.name}_probe")
    tb.instantiate(dut, "dut", {p: p for p in dut.ports})
    tb.add_vsource("va", "a", "0", 0.0, ac_magnitude=1.0)
    tb.add_resistor("rterm", "b", "0", 1e-3)
    return tbh.run_ac(tb, prim.tech)


def _eval_capacitance(prim: MomCapacitorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    k = tbh.freq_index(ac.freqs, 1.0e8)
    return abs(float(np.imag(y[k]))) / (2.0 * math.pi * float(ac.freqs[k])), 1


def _eval_corner_frequency(prim: MomCapacitorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    # Corner where the series R starts to matter: f = 1/(2 pi R C).
    k_hi = len(ac.freqs) - 1
    r_series = max(float(np.real(1.0 / y[k_hi])), 1e-3)
    k = tbh.freq_index(ac.freqs, 1.0e8)
    c = abs(float(np.imag(y[k]))) / (2.0 * math.pi * float(ac.freqs[k]))
    return 1.0 / (2.0 * math.pi * r_series * max(c, 1e-18)), 1


def _eval_resistance(prim: PolyResistorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    return float(np.real(1.0 / y[0])), 1


def _eval_shunt_cap(prim: PolyResistorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    k = tbh.freq_index(ac.freqs, 1.0e9)
    z = 1.0 / y[k]
    # Residual reactive part referred to the port.
    return abs(float(np.imag(y[k]))) / (2.0 * math.pi * float(ac.freqs[k])), 1


def _eval_inductance(prim: SpiralInductorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    k = tbh.freq_index(ac.freqs, 1.0e9)
    z = 1.0 / y[k]
    return float(np.imag(z)) / (2.0 * math.pi * float(ac.freqs[k])), 1


def _eval_q_factor(prim: SpiralInductorPrimitive, dut: Circuit, cache: dict):
    op, ac = _impedance_probe(prim, dut)
    y = -ac.i("va")
    k = tbh.freq_index(ac.freqs, 5.0e9)
    z = 1.0 / y[k]
    real = max(abs(float(np.real(z))), 1e-6)
    return abs(float(np.imag(z))) / real, 1
