"""Shared testbench building blocks for primitive metrics.

Each helper wires a DUT netlist (schematic or extracted — both expose the
same port names) into a stimulated circuit and extracts one number, the
way the paper's per-metric SPICE testbenches do (Fig. 4).  All helpers
return ``(value, n_simulations)`` where a "simulation" is one analysis
run (op / ac sweep / transient), matching the accounting of Table V.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasureError
from repro.spice import measure
from repro.spice.ac import ac_analysis
from repro.spice.dc import dc_operating_point
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.spice.tran import transient
from repro.spice.waveforms import Pulse
from repro.tech.pdk import Technology

#: Frequency (Hz) at which port capacitances are read off ``Im(Y)/w``.
#: Low enough that series wire resistance does not shield the node
#: capacitance (400 ohm against 50 kOhm of 30 fF at 100 MHz).
CAP_PROBE_FREQUENCY = 1.0e8

#: Default AC sweep for primitive testbenches.
AC_START, AC_STOP, AC_PPD = 1.0e6, 1.0e11, 8


def attach_dut(tb: Circuit, dut: Circuit) -> None:
    """Instantiate the DUT in a testbench, ports mapped name-to-name."""
    tb.instantiate(dut, "dut", {p: p for p in dut.ports})


def run_ac(tb: Circuit, tech: Technology):
    """Operating point + AC sweep; returns (op, ac), costing 1 'sim'."""
    compiled = CompiledCircuit(tb, tech.rules)
    op = dc_operating_point(compiled)
    ac = ac_analysis(compiled, op, AC_START, AC_STOP, AC_PPD)
    return op, ac


def run_op(tb: Circuit, tech: Technology):
    """Operating point only."""
    compiled = CompiledCircuit(tb, tech.rules)
    return dc_operating_point(compiled)


def freq_index(freqs: np.ndarray, target: float) -> int:
    """Index of the sweep point closest to ``target`` (log distance)."""
    return int(np.argmin(np.abs(np.log10(freqs) - np.log10(target))))


def port_admittance(tb: Circuit, tech: Technology, source_name: str):
    """AC admittance seen by the AC voltage source ``source_name``.

    The branch current of a voltage source flows from its + terminal
    through the source, so the admittance looking *into the circuit* is
    ``-I/V``.
    """
    op, ac = run_ac(tb, tech)
    y = -ac.i(source_name) / 1.0
    return ac.freqs, y


def port_capacitance(tb: Circuit, tech: Technology, source_name: str) -> float:
    """Capacitance at an AC-driven port, from ``Im(Y)/w`` near 1 GHz."""
    freqs, y = port_admittance(tb, tech, source_name)
    k = freq_index(freqs, CAP_PROBE_FREQUENCY)
    return abs(float(np.imag(y[k]))) / (2.0 * np.pi * float(freqs[k]))


def port_resistance(tb: Circuit, tech: Technology, source_name: str) -> float:
    """Small-signal resistance at an AC-driven port, ``1/Re(Y)`` at f_min."""
    freqs, y = port_admittance(tb, tech, source_name)
    real = float(np.real(y[0]))
    if real < 0.0:
        # Negative-resistance structures (cross-coupled pairs) report the
        # magnitude; callers know the sign from the topology.
        real = abs(real)
    if real == 0.0:
        raise MeasureError(f"zero real admittance at {source_name!r}")
    return 1.0 / real


def transfer_current(
    tb: Circuit, tech: Technology, out_sources: list[str], signs: list[float]
):
    """AC transfer current: signed sum of V-source branch currents.

    Used by Gm testbenches (AC voltage at a gate, AC current measured
    through the drain bias sources).  Returns (freqs, complex current).
    """
    op, ac = run_ac(tb, tech)
    total = np.zeros(len(ac.freqs), dtype=complex)
    for name, sign in zip(out_sources, signs):
        total = total + sign * ac.i(name)
    return ac.freqs, total


def run_transient(
    tb: Circuit,
    tech: Technology,
    t_stop: float,
    dt: float,
    ics: dict[str, float] | None = None,
):
    """Transient run; returns the TranResult, costing 1 'sim'."""
    compiled = CompiledCircuit(tb, tech.rules)
    op = dc_operating_point(compiled, force=ics)
    return transient(compiled, t_stop=t_stop, dt=dt, op=op)


#: Offset-bisection resolution (V): results below this are reported 0.0.
_OFFSET_TOL = 1e-7


def dc_offset_bisection(
    build_tb,
    tech: Technology,
    response,
    lo: float = -0.05,
    hi: float = 0.05,
) -> float:
    """Input-referred offset via bisection on a DC response.

    Args:
        build_tb: Callable ``(x) -> Circuit`` building the testbench with
            differential input ``x``.
        tech: Technology node.
        response: Callable ``(op) -> float`` extracting the quantity to
            null (e.g. differential output current).
        lo, hi: Bisection bracket (V).

    Returns:
        The input voltage nulling the response; magnitudes below the
        bisection tolerance report as exactly ``0.0``.
    """

    def evaluate(x: float) -> float:
        compiled = CompiledCircuit(build_tb(x), tech.rules)
        op = dc_operating_point(compiled)
        return response(op)

    offset = measure.find_dc_zero(evaluate, lo, hi, tolerance=_OFFSET_TOL)
    # An offset below the bisection resolution is indistinguishable from
    # zero.  Snap it so downstream consumers (the cost function's
    # zero-schematic-reference branch) see a true zero: a perfectly
    # symmetric circuit must measure 0.0 regardless of which LU backend
    # solved it — pivoting-order noise at the 1e-16 level otherwise
    # walks the bisection to an arbitrary sub-tolerance midpoint.
    return 0.0 if abs(offset) < _OFFSET_TOL else offset


def solve_gate_bias(
    tech: Technology,
    build_tb,
    current_of,
    i_target: float,
    lo: float = 0.0,
    hi: float | None = None,
) -> float:
    """Find the gate bias that sets a device current to ``i_target``.

    This stands in for the paper's "DC bias conditions ... as input from
    circuit-level schematic simulations": gate-biased primitives derive
    their bias from a target current instead of a hard-coded voltage.

    Args:
        tech: Technology node.
        build_tb: Callable ``(v) -> Circuit`` building the schematic
            testbench at gate bias ``v``.
        current_of: Callable ``(op) -> float`` extracting the device
            current.
        i_target: Target current (A).
        lo, hi: Search bracket; ``hi`` defaults to VDD.

    Returns:
        The bias voltage.
    """
    hi = tech.vdd if hi is None else hi

    def evaluate(v: float) -> float:
        compiled = CompiledCircuit(build_tb(v), tech.rules)
        op = dc_operating_point(compiled)
        return current_of(op) - i_target

    return measure.find_dc_zero(evaluate, lo, hi, tolerance=1e-6)


def standard_pulse(v_low: float, v_high: float, delay: float = 5.0e-11) -> Pulse:
    """The input pulse used by delay testbenches."""
    return Pulse(
        v1=v_low, v2=v_high, delay=delay, rise=5e-12, fall=5e-12, width=2e-9, period=0.0
    )
