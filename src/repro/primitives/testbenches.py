"""Shared testbench building blocks for primitive metrics.

Each helper wires a DUT netlist (schematic or extracted — both expose the
same port names) into a stimulated circuit and extracts one number, the
way the paper's per-metric SPICE testbenches do (Fig. 4).  All helpers
return ``(value, n_simulations)`` where a "simulation" is one analysis
run (op / ac sweep / transient), matching the accounting of Table V.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, MeasureError, SingularMatrixError
from repro.spice import measure
from repro.spice.ac import ac_analysis, ac_analysis_many
from repro.spice.dc import (
    dc_operating_point,
    dc_operating_points,
    newton_operating_points,
)
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.spice.tran import transient
from repro.spice.waveforms import Pulse
from repro.tech.pdk import Technology

#: Frequency (Hz) at which port capacitances are read off ``Im(Y)/w``.
#: Low enough that series wire resistance does not shield the node
#: capacitance (400 ohm against 50 kOhm of 30 fF at 100 MHz).
CAP_PROBE_FREQUENCY = 1.0e8

#: Default AC sweep for primitive testbenches.
AC_START, AC_STOP, AC_PPD = 1.0e6, 1.0e11, 8


def attach_dut(tb: Circuit, dut: Circuit) -> None:
    """Instantiate the DUT in a testbench, ports mapped name-to-name."""
    tb.instantiate(dut, "dut", {p: p for p in dut.ports})


def run_ac(tb: Circuit, tech: Technology):
    """Operating point + AC sweep; returns (op, ac), costing 1 'sim'."""
    compiled = CompiledCircuit(tb, tech.rules)
    op = dc_operating_point(compiled)
    ac = ac_analysis(compiled, op, AC_START, AC_STOP, AC_PPD)
    return op, ac


def run_op(tb: Circuit, tech: Technology):
    """Operating point only."""
    compiled = CompiledCircuit(tb, tech.rules)
    return dc_operating_point(compiled)


def freq_index(freqs: np.ndarray, target: float) -> int:
    """Index of the sweep point closest to ``target`` (log distance)."""
    return int(np.argmin(np.abs(np.log10(freqs) - np.log10(target))))


def port_admittance(tb: Circuit, tech: Technology, source_name: str):
    """AC admittance seen by the AC voltage source ``source_name``.

    The branch current of a voltage source flows from its + terminal
    through the source, so the admittance looking *into the circuit* is
    ``-I/V``.
    """
    op, ac = run_ac(tb, tech)
    y = -ac.i(source_name) / 1.0
    return ac.freqs, y


def port_capacitance(tb: Circuit, tech: Technology, source_name: str) -> float:
    """Capacitance at an AC-driven port, from ``Im(Y)/w`` near 1 GHz."""
    freqs, y = port_admittance(tb, tech, source_name)
    k = freq_index(freqs, CAP_PROBE_FREQUENCY)
    return abs(float(np.imag(y[k]))) / (2.0 * np.pi * float(freqs[k]))


def port_resistance(tb: Circuit, tech: Technology, source_name: str) -> float:
    """Small-signal resistance at an AC-driven port, ``1/Re(Y)`` at f_min."""
    freqs, y = port_admittance(tb, tech, source_name)
    real = float(np.real(y[0]))
    if real < 0.0:
        # Negative-resistance structures (cross-coupled pairs) report the
        # magnitude; callers know the sign from the topology.
        real = abs(real)
    if real == 0.0:
        raise MeasureError(f"zero real admittance at {source_name!r}")
    return 1.0 / real


def transfer_current(
    tb: Circuit, tech: Technology, out_sources: list[str], signs: list[float]
):
    """AC transfer current: signed sum of V-source branch currents.

    Used by Gm testbenches (AC voltage at a gate, AC current measured
    through the drain bias sources).  Returns (freqs, complex current).
    """
    op, ac = run_ac(tb, tech)
    total = np.zeros(len(ac.freqs), dtype=complex)
    for name, sign in zip(out_sources, signs):
        total = total + sign * ac.i(name)
    return ac.freqs, total


# -- batched variants ---------------------------------------------------------
#
# Each ``*_many`` helper measures K testbenches at once through the
# stacked solver paths (:func:`~repro.spice.dc.dc_operating_points`,
# :func:`~repro.spice.ac.ac_analysis_many`), with failures *captured per
# member*: the returned list holds the serial helper's value or the
# exception it would have raised, so one diverging member never hides
# the rest of the batch.  Values are bitwise identical to calling the
# serial helper per member.


def run_op_many(tbs: list[Circuit], tech: Technology) -> list:
    """Batched :func:`run_op`: operating point (or exception) per member."""
    compileds = [CompiledCircuit(tb, tech.rules) for tb in tbs]
    return dc_operating_points(compileds)


def run_ac_many(tbs: list[Circuit], tech: Technology) -> list:
    """Batched :func:`run_ac`: ``(op, ac)`` (or exception) per member."""
    compileds = [CompiledCircuit(tb, tech.rules) for tb in tbs]
    ops = dc_operating_points(compileds)
    out: list = [op if isinstance(op, Exception) else None for op in ops]
    live = [i for i in range(len(tbs)) if out[i] is None]
    acs = ac_analysis_many(
        [compileds[i] for i in live],
        [ops[i] for i in live],
        AC_START,
        AC_STOP,
        AC_PPD,
    )
    for i, ac in zip(live, acs):
        out[i] = ac if isinstance(ac, Exception) else (ops[i], ac)
    return out


def port_admittance_many(
    tbs: list[Circuit], tech: Technology, source_name: str
) -> list:
    """Batched :func:`port_admittance`: ``(freqs, y)`` or exception."""
    out: list = []
    for res in run_ac_many(tbs, tech):
        if isinstance(res, Exception):
            out.append(res)
        else:
            _op, ac = res
            out.append((ac.freqs, -ac.i(source_name) / 1.0))
    return out


def port_capacitance_many(
    tbs: list[Circuit], tech: Technology, source_name: str
) -> list:
    """Batched :func:`port_capacitance`: float or exception per member."""
    out: list = []
    for res in port_admittance_many(tbs, tech, source_name):
        if isinstance(res, Exception):
            out.append(res)
            continue
        freqs, y = res
        k = freq_index(freqs, CAP_PROBE_FREQUENCY)
        out.append(
            abs(float(np.imag(y[k]))) / (2.0 * np.pi * float(freqs[k]))
        )
    return out


def port_resistance_many(
    tbs: list[Circuit], tech: Technology, source_name: str
) -> list:
    """Batched :func:`port_resistance`: float or exception per member."""
    out: list = []
    for res in port_admittance_many(tbs, tech, source_name):
        if isinstance(res, Exception):
            out.append(res)
            continue
        freqs, y = res
        real = float(np.real(y[0]))
        if real < 0.0:
            real = abs(real)
        if real == 0.0:
            out.append(MeasureError(f"zero real admittance at {source_name!r}"))
            continue
        out.append(1.0 / real)
    return out


def transfer_current_many(
    tbs: list[Circuit],
    tech: Technology,
    out_sources: list[str],
    signs: list[float],
) -> list:
    """Batched :func:`transfer_current`: ``(freqs, current)`` or exception."""
    out: list = []
    for res in run_ac_many(tbs, tech):
        if isinstance(res, Exception):
            out.append(res)
            continue
        _op, ac = res
        total = np.zeros(len(ac.freqs), dtype=complex)
        for name, sign in zip(out_sources, signs):
            total = total + sign * ac.i(name)
        out.append((ac.freqs, total))
    return out


def run_transient(
    tb: Circuit,
    tech: Technology,
    t_stop: float,
    dt: float,
    ics: dict[str, float] | None = None,
):
    """Transient run; returns the TranResult, costing 1 'sim'."""
    compiled = CompiledCircuit(tb, tech.rules)
    op = dc_operating_point(compiled, force=ics)
    return transient(compiled, t_stop=t_stop, dt=dt, op=op)


#: Offset-bisection resolution (V): results below this are reported 0.0.
_OFFSET_TOL = 1e-7


def dc_offset_bisection(
    build_tb,
    tech: Technology,
    response,
    lo: float = -0.05,
    hi: float = 0.05,
) -> float:
    """Input-referred offset via bisection on a DC response.

    Args:
        build_tb: Callable ``(x) -> Circuit`` building the testbench with
            differential input ``x``.
        tech: Technology node.
        response: Callable ``(op) -> float`` extracting the quantity to
            null (e.g. differential output current).
        lo, hi: Bisection bracket (V).

    Returns:
        The input voltage nulling the response; magnitudes below the
        bisection tolerance report as exactly ``0.0``.
    """

    def evaluate(x: float) -> float:
        compiled = CompiledCircuit(build_tb(x), tech.rules)
        op = dc_operating_point(compiled)
        return response(op)

    offset = measure.find_dc_zero(evaluate, lo, hi, tolerance=_OFFSET_TOL)
    # An offset below the bisection resolution is indistinguishable from
    # zero.  Snap it so downstream consumers (the cost function's
    # zero-schematic-reference branch) see a true zero: a perfectly
    # symmetric circuit must measure 0.0 regardless of which LU backend
    # solved it — pivoting-order noise at the 1e-16 level otherwise
    # walks the bisection to an arbitrary sub-tolerance midpoint.
    return 0.0 if abs(offset) < _OFFSET_TOL else offset


def dc_offset_bisection_many(
    build_tbs: list,
    tech: Technology,
    response,
    lo: float = -0.05,
    hi: float = 0.05,
) -> list:
    """Batched :func:`dc_offset_bisection`: K bisections in lock-step.

    Each bisection round solves every live member's testbench through
    one stacked Newton call, and — since successive bisection inputs
    change only independent-source values — each member's system is
    *compiled once*: later rounds rebuild the (cheap) netlist, verify it
    is :meth:`~repro.spice.mna.CompiledCircuit.structurally_like` the
    compiled one, and restamp only the right-hand side.  A member the
    fast path cannot serve (structure drift, plain-Newton divergence
    where the serial solver would climb its homotopy ladder) drops to a
    per-evaluation serial solve with identical results.

    Returns one entry per member: the offset (snapped to 0.0 below the
    bisection resolution, exactly like the serial helper), or the
    captured exception the serial helper would have raised
    (:class:`~repro.errors.MeasureError` on a bracket without a sign
    change, solver errors otherwise).
    """
    count = len(build_tbs)
    compileds: list[CompiledCircuit | None] = [None] * count
    serial_member = [False] * count

    def serial_eval(tb: Circuit):
        try:
            op = dc_operating_point(CompiledCircuit(tb, tech.rules))
        except (ConvergenceError, SingularMatrixError) as exc:
            return exc
        return response(op)

    def evaluate_many(indices: list[int], xs: list[float]) -> list:
        out: list = [None] * len(indices)
        stacked_js: list[int] = []
        stacked_compileds: list[CompiledCircuit] = []
        stacked_rhs: list[np.ndarray] = []
        for j, (i, x) in enumerate(zip(indices, xs)):
            tb = build_tbs[i](x)
            if serial_member[i]:
                out[j] = serial_eval(tb)
                continue
            compiled = compileds[i]
            if compiled is None:
                compiled = CompiledCircuit(tb, tech.rules)
                compileds[i] = compiled
                rhs = compiled.source_rhs(t=None, scale=1.0)
            elif compiled.structurally_like(tb):
                rhs = compiled.source_rhs_like(tb)
            else:
                serial_member[i] = True
                out[j] = serial_eval(tb)
                continue
            stacked_js.append(j)
            stacked_compileds.append(compiled)
            stacked_rhs.append(rhs)
        if stacked_js:
            ops = newton_operating_points(
                stacked_compileds, rhs_srcs=stacked_rhs
            )
            for j, op in zip(stacked_js, ops):
                if op is None:
                    # Plain Newton diverged; the serial path would climb
                    # the gmin/source-stepping ladder from here.
                    out[j] = serial_eval(build_tbs[indices[j]](xs[j]))
                else:
                    out[j] = response(op)
        return out

    roots = measure.find_dc_zero_many(
        evaluate_many, count, lo, hi, tolerance=_OFFSET_TOL
    )
    return [
        root
        if isinstance(root, Exception)
        else (0.0 if abs(root) < _OFFSET_TOL else root)
        for root in roots
    ]


def solve_gate_bias(
    tech: Technology,
    build_tb,
    current_of,
    i_target: float,
    lo: float = 0.0,
    hi: float | None = None,
) -> float:
    """Find the gate bias that sets a device current to ``i_target``.

    This stands in for the paper's "DC bias conditions ... as input from
    circuit-level schematic simulations": gate-biased primitives derive
    their bias from a target current instead of a hard-coded voltage.

    Args:
        tech: Technology node.
        build_tb: Callable ``(v) -> Circuit`` building the schematic
            testbench at gate bias ``v``.
        current_of: Callable ``(op) -> float`` extracting the device
            current.
        i_target: Target current (A).
        lo, hi: Search bracket; ``hi`` defaults to VDD.

    Returns:
        The bias voltage.
    """
    hi = tech.vdd if hi is None else hi

    def evaluate(v: float) -> float:
        compiled = CompiledCircuit(build_tb(v), tech.rules)
        op = dc_operating_point(compiled)
        return current_of(op) - i_target

    return measure.find_dc_zero(evaluate, lo, hi, tolerance=1e-6)


def standard_pulse(v_low: float, v_high: float, delay: float = 5.0e-11) -> Pulse:
    """The input pulse used by delay testbenches."""
    return Pulse(
        v1=v_low, v2=v_high, delay=delay, rise=5e-12, fall=5e-12, width=2e-9, period=0.0
    )
