"""Paper-style table formatting.

The benchmarks print their results as aligned text tables mirroring the
paper's tables; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

from repro.units import si_format


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_metric(value: float, unit: str) -> str:
    """One metric with an SI prefix (e.g. ``"4.8 GHz"``)."""
    return si_format(value, unit)


def percent(reference: float, value: float) -> float:
    """Relative deviation in percent."""
    if reference == 0:
        return 0.0 if value == 0 else float("inf")
    return abs(reference - value) / abs(reference) * 100.0
