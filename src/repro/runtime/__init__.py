"""Fault-tolerant evaluation runtime.

Wraps every simulation-backed evaluation of the optimization flow with a
structured failure taxonomy (:mod:`~repro.runtime.failures`), bounded
retries and per-stage budgets (:mod:`~repro.runtime.policy`), sweep
checkpointing for crash/resume (:mod:`~repro.runtime.checkpoint`), and a
deterministic fault-injection harness (:mod:`~repro.runtime.faults`),
and worker supervision with graceful shutdown
(:mod:`~repro.runtime.supervise`).

See ``docs/robustness.md`` for the failure-code catalog and the
degradation ladder.
"""

from repro.runtime.batched import BatchSpec, resolve_batch
from repro.runtime.checkpoint import SweepJournal
from repro.runtime.evalcache import (
    EvalCache,
    analysis_signature,
    content_key,
    evaluate_circuit_cached,
)
from repro.runtime.failures import (
    BAD_METRIC,
    CONV_DC,
    CONV_TRAN,
    EVAL_TIMEOUT,
    FAILURE_CODES,
    SINGULAR_MNA,
    WORKER_LOST,
    EvalFailure,
    FailureLog,
    classify_failure,
    is_eval_failure,
)
from repro.runtime.faults import FaultInjector, FaultSpec, inject
from repro.runtime.parallel import ParallelEvalRuntime, resolve_jobs
from repro.runtime.policy import BatchTask, EvalBatch, EvalRuntime, RetryPolicy
from repro.runtime.supervise import (
    SupervisedPool,
    flush_all,
    graceful_shutdown,
    register_flushable,
)

__all__ = [
    "BAD_METRIC",
    "CONV_DC",
    "CONV_TRAN",
    "EVAL_TIMEOUT",
    "FAILURE_CODES",
    "SINGULAR_MNA",
    "WORKER_LOST",
    "BatchSpec",
    "BatchTask",
    "EvalBatch",
    "EvalCache",
    "EvalFailure",
    "EvalRuntime",
    "FailureLog",
    "FaultInjector",
    "FaultSpec",
    "ParallelEvalRuntime",
    "RetryPolicy",
    "SupervisedPool",
    "SweepJournal",
    "analysis_signature",
    "classify_failure",
    "content_key",
    "evaluate_circuit_cached",
    "flush_all",
    "graceful_shutdown",
    "inject",
    "is_eval_failure",
    "register_flushable",
    "resolve_batch",
    "resolve_jobs",
]
