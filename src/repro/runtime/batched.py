"""Vectorized multi-variant evaluation — the ``--batch`` fast path.

Selection and tuning sweeps evaluate many *same-pattern* variants: the
netlists share one MNA structure and differ only in device values.  The
serial path rebuilds and resolves each variant independently; this module
lets a call site describe each evaluation as *build circuit → simulate →
finish* (a :class:`BatchSpec` on its
:class:`~repro.runtime.policy.BatchTask`) so the simulate step can run
**stacked across variants**: one
:class:`~repro.spice.kernel.BatchedSystemTemplate` Newton solve per
iteration instead of K, one stacked AC sweep instead of K (see
docs/performance.md, "Batched solves").

Determinism contract: everything observable — metric values, journals,
failure logs, evalcache keys and hit/store sequences, reports — is
byte-identical to the serial path for any batch size.  The machinery
guarantees this by construction:

* the batched solvers replay the serial floating-point operations
  exactly (stacked LAPACK ``gesv`` is bitwise equal to per-slice solves;
  per-member masking freezes converged members without changing the
  stragglers' arithmetic);
* cache lookups still happen at *consumption* in call-site order — the
  precompute phase only peeks (:meth:`EvalCache.__contains__`, which
  takes no statistics) to decide which members need simulation;
* any member the fast path cannot handle — circuit construction raised,
  a batched evaluation failed, a predicted cache hit did not materialize
  — falls back to the member's original serial thunk, which recomputes
  the identical result (or raises the identical error);
* the path disengages entirely (returning the ordinary lazy-serial
  batch) under fault injection, per-evaluation deadlines, or an explicit
  Newton iteration budget, where batching would change observable
  behavior.

Retry attempts (``attempt > 0``) always run the original serial thunk:
perturbed initial guesses are per-member state the lockstep solver does
not model.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.runtime import context, faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.policy import BatchTask, EvalRuntime

#: Environment hook for the vectorized-sweep width (like ``REPRO_JOBS``).
BATCH_ENV = "REPRO_BATCH"

_warned_bad_batch_env = False


def resolve_batch(batch: int | None = None, default: int | None = 1) -> int:
    """Resolve the vectorized-sweep width: explicit arg, then
    ``REPRO_BATCH``, then ``default`` (all clamped to >= 1).

    Width 1 disables the fast path entirely; any larger width changes
    only wall-clock, never results.  An unparseable environment value is
    ignored with a one-time warning.
    """
    global _warned_bad_batch_env
    if batch is not None:
        return max(1, int(batch))
    env = os.environ.get(BATCH_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if not _warned_bad_batch_env:
                _warned_bad_batch_env = True
                warnings.warn(
                    f"{BATCH_ENV}={env!r} is not an integer; ignoring it",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return max(1, int(default or 1))


@dataclass
class BatchSpec:
    """How one evaluation decomposes for the vectorized fast path.

    Attributes:
        primitive: The :class:`~repro.primitives.base.MosPrimitive`
            whose metric testbenches measure the circuit (also the cache
            key namespace).
        build: Zero-argument callable returning ``(dut_circuit, site)``
            — the netlist to simulate plus any call-site context the
            ``finish`` step needs (e.g. the generated layout).  May
            raise; a raising member falls back to its serial thunk.
        finish: Callable ``(site, values, simulations, cache_key) ->
            result`` assembling the evaluation result exactly as the
            serial thunk would from the same measured values.
        weight_override: Metric weight overrides (part of the cache key).
    """

    primitive: Any
    build: Callable[[], tuple[Any, Any]]
    finish: Callable[[Any, dict, int, str | None], Any]
    weight_override: dict | None = None


@dataclass
class _Member:
    """Precomputed state of one batch member.

    ``result`` is ``(values, simulations)`` when the stacked simulation
    produced the member's numbers, or None — either a predicted cache
    hit (resolved by a real ``cache.get`` at consumption) or a member
    the fast path gave up on (resolved by the serial thunk).
    """

    site: Any
    key: str | None
    result: tuple[dict, int] | None = None


def maybe_batched(
    runtime: "EvalRuntime", tasks: "list[BatchTask]", stage: str
):
    """The vectorized batch for ``tasks``, or None when it must not engage.

    Disengagement conditions (each would make batching observable):
    fault injection active (faults key on evaluation order/keys),
    a per-evaluation deadline (precomputed results would dodge it), an
    explicit Newton iteration budget (threaded through per-evaluation
    context the lockstep solver does not consult), a width of 1, or
    fewer than two live batchable tasks.
    """
    if runtime.batch <= 1:
        return None
    if faults.active() is not None:
        return None
    policy = runtime.policy
    if policy.deadline_s is not None or policy.newton_max_iterations is not None:
        return None
    live = 0
    for task in tasks:
        if task.batch_spec is None:
            continue
        if (
            runtime.journal is not None
            and runtime.journal.lookup(task.key) is not None
        ):
            continue
        live += 1
    if live <= 1:
        return None
    return BatchedEvalBatch(runtime, tasks, stage)


def _batch_class():
    # Deferred: policy imports this module lazily, so importing policy at
    # module scope here would still be safe — but keeping it deferred
    # makes the (absence of a) cycle obvious.
    from repro.runtime.policy import EvalBatch

    return EvalBatch


class BatchedEvalBatch:
    """An :class:`~repro.runtime.policy.EvalBatch` whose simulations ran
    stacked at construction time.

    Consumption (`consume`) still drives everything observable through
    :meth:`EvalRuntime.evaluate` in call-site order — journaling, retry
    accounting, failure logs and cache traffic are the serial code
    paths; only the simulation work inside the first attempt's thunk is
    answered from the precomputed stack.
    """

    def __init__(self, runtime: "EvalRuntime", tasks, stage: str):
        from repro.spice import kernel  # deferred: repro.spice import cycle

        self.runtime = runtime
        self.tasks = tasks
        self.stage = stage
        self._members: dict[int, _Member] = {}

        cache = runtime.cache
        sim_indices: list[int] = []
        sim_circuits: list[Any] = []
        known: set[str] = set()
        for i, task in enumerate(tasks):
            spec = task.batch_spec
            if spec is None:
                continue
            if (
                runtime.journal is not None
                and runtime.journal.lookup(task.key) is not None
            ):
                continue
            try:
                circuit, site = spec.build()
            except Exception:
                # The serial thunk rebuilds and raises identically at
                # consumption (e.g. an absorbed LayoutError).
                continue
            key = None
            if cache is not None:
                key = cache.key_for(spec.primitive, circuit, spec.weight_override)
                if key in known or key in cache:
                    # Predicted hit: resolved by a real get at consumption.
                    self._members[i] = _Member(site, key)
                    continue
                known.add(key)
            self._members[i] = _Member(site, key)
            sim_indices.append(i)
            sim_circuits.append(circuit)

        # Stacked simulation, chunked to the configured width and grouped
        # by primitive (one evaluate_many call covers one metric set).
        with kernel.collect(runtime.solver_stats):
            start = 0
            while start < len(sim_indices):
                primitive = tasks[sim_indices[start]].batch_spec.primitive
                end = start + 1
                while (
                    end < len(sim_indices)
                    and end - start < runtime.batch
                    and tasks[sim_indices[end]].batch_spec.primitive
                    is primitive
                ):
                    end += 1
                outcomes = primitive.evaluate_many(sim_circuits[start:end])
                for i, outcome in zip(sim_indices[start:end], outcomes):
                    self._members[i].result = outcome
                start = end

    def __len__(self) -> int:
        return len(self.tasks)

    def consume(self, index: int) -> Any | None:
        """Result of task ``index``, serial-identical in every observable."""
        task = self.tasks[index]
        runtime = self.runtime
        member = self._members.get(index)
        if member is None:
            return _batch_class()(runtime, self.tasks, self.stage).consume(index)

        def fast_thunk():
            ctx = context.current()
            if ctx is not None and ctx.attempt > 0:
                return task.thunk()
            spec = task.batch_spec
            cache = runtime.cache
            if member.key is not None and cache is not None:
                hit = cache.get(member.key)
                if hit is not None:
                    return spec.finish(member.site, hit["values"], 0, member.key)
                if member.result is None:
                    return task.thunk()
                values, sims = member.result
                cache.put(member.key, values, sims)
                return spec.finish(member.site, values, sims, member.key)
            if member.result is None:
                return task.thunk()
            values, sims = member.result
            return spec.finish(member.site, values, sims, member.key)

        return runtime.evaluate(
            task.key,
            fast_thunk,
            self.stage,
            validate=task.validate,
            to_payload=task.to_payload,
            from_payload=task.from_payload,
            retries=task.retries,
        )
