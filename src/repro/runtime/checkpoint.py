"""Sweep checkpointing: a JSONL journal of completed evaluations.

Each completed evaluation — successful *or* exhausted-after-retries —
appends one self-contained JSON line::

    {"key": "sel:4x2x1:ABBA:-", "status": "ok",
     "payload": {"values": {...}, "cost": 12.3, "simulations": 4}}
    {"key": "sel:8x1x1:ABAB:-", "status": "failed",
     "failures": [{"code": "CONV-DC", ...}]}

Append-plus-flush keeps the journal crash-consistent: killing a sweep
mid-evaluation loses at most the in-flight evaluation.  On resume the
journal is replayed into a key -> entry map; the runtime answers cached
keys without re-simulating and re-records journaled failures into the
live :class:`~repro.runtime.failures.FailureLog` so resumed reports
account for every failure of the whole logical run.

A third status, ``"pruned"``, records candidates the surrogate guide
(:mod:`repro.surrogate`) skipped without simulating.  Pruned entries are
decisions, not results: :meth:`SweepJournal.lookup` reports them as
not-completed (so a surrogate-off rerun evaluates them normally) and
:meth:`SweepJournal.is_pruned` answers them separately so a resumed
surrogate run repeats the pruning without re-consulting the model.

A crash mid-append leaves a *torn tail*: a final line that is not valid
JSON.  Resume **truncates** the torn tail (recording how many bytes were
cut on :attr:`SweepJournal.truncated_tail`) before reopening the file
for append, so the resumed journal is clean JSONL end-to-end — a second
crash/resume cycle sees no artifact of the first.  An unreadable
*interior* line is different: it means the file was corrupted some other
way, and silently dropping completed work would be worse than stopping,
so it raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.runtime import supervise
from repro.runtime.failures import EvalFailure

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_PRUNED = "pruned"


class SweepJournal:
    """Append-only JSONL journal of completed evaluations.

    Args:
        path: Journal file path (parent directories are created).
        resume: Replay an existing journal when True; truncate and start
            fresh when False.
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict] = {}
        #: Bytes cut off the journal tail on resume (0 for a clean file).
        self.truncated_tail = 0
        if resume and self.path.exists():
            self._replay()
        elif not resume:
            self.path.write_text("")
        self._file = self.path.open("a", encoding="utf-8")
        supervise.register_flushable(self)

    def _replay(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        nonempty = [i for i, chunk in enumerate(lines) if chunk.strip()]
        last = nonempty[-1] if nonempty else -1
        offset = 0
        good_end = 0  # byte offset just past the last well-formed line
        for i, chunk in enumerate(lines):
            end = offset + len(chunk) + (1 if i < len(lines) - 1 else 0)
            stripped = chunk.strip()
            if not stripped:
                offset = end
                continue
            try:
                entry = json.loads(stripped.decode("utf-8"))
                key = entry["key"]
                status = entry["status"]
            except (
                UnicodeDecodeError,
                json.JSONDecodeError,
                KeyError,
                TypeError,
            ):
                # A torn *final* line is the expected crash artifact:
                # truncate it so the resumed journal appends to clean
                # JSONL.  A torn *interior* line means some other
                # corruption; skipping it would drop completed work.
                if i == last:
                    self.truncated_tail = len(raw) - good_end
                    break
                raise CheckpointError(
                    f"{self.path}:{i + 1}: unreadable journal entry"
                ) from None
            if status not in (STATUS_OK, STATUS_FAILED, STATUS_PRUNED):
                raise CheckpointError(
                    f"{self.path}:{i + 1}: unknown status {status!r}"
                )
            self._entries[key] = entry
            offset = end
            good_end = end
        if self.truncated_tail:
            with self.path.open("rb+") as handle:
                handle.truncate(good_end)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str) -> dict | None:
        """The journal entry for ``key``, or None if not completed.

        Pruned entries are *not* completed evaluations — they carry no
        payload and no failures — so they are reported as None here and
        answered through :meth:`is_pruned` instead.  A later run with
        the surrogate disabled therefore evaluates them normally.
        """
        entry = self._entries.get(key)
        if entry is not None and entry["status"] == STATUS_PRUNED:
            return None
        return entry

    def is_pruned(self, key: str) -> bool:
        """True when ``key`` was journaled as surrogate-pruned."""
        entry = self._entries.get(key)
        return entry is not None and entry["status"] == STATUS_PRUNED

    def journaled_failures(self, key: str) -> list[EvalFailure]:
        """Failures journaled for ``key`` (empty for successes)."""
        entry = self._entries.get(key)
        if entry is None:
            return []
        return [EvalFailure.from_dict(f) for f in entry.get("failures", ())]

    # -- writes ----------------------------------------------------------

    def _append(self, entry: dict) -> None:
        self._entries[entry["key"]] = entry
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def record_success(
        self, key: str, payload: dict, failures: list[EvalFailure] | None = None
    ) -> None:
        """Journal a completed successful evaluation.

        ``failures`` carries any retried-then-recovered attempts so a
        resumed run replays the *complete* failure accounting of the
        logical run, not just its exhausted evaluations.
        """
        entry: dict = {"key": key, "status": STATUS_OK, "payload": payload}
        if failures:
            entry["failures"] = [f.to_dict() for f in failures]
        self._append(entry)

    def record_failure(self, key: str, failures: list[EvalFailure]) -> None:
        """Journal an evaluation that exhausted its retry budget."""
        self._append(
            {
                "key": key,
                "status": STATUS_FAILED,
                "failures": [f.to_dict() for f in failures],
            }
        )

    def record_pruned(self, key: str) -> None:
        """Journal a candidate the surrogate pruned without simulating.

        Pruned entries carry no payload: they record only the *decision*
        so a resumed run repeats it without re-consulting the model.
        Idempotent — re-recording an already-pruned key is a no-op, and a
        key with a completed (``ok``/``failed``) entry is never
        downgraded to pruned.
        """
        if key not in self._entries:
            self._append({"key": key, "status": STATUS_PRUNED})

    def flush(self) -> None:
        """Force buffered appends to disk (signal-handler durability hook).

        Every :meth:`_append` already flushes and fsyncs, so this is
        normally a no-op — it exists so
        :func:`repro.runtime.supervise.graceful_shutdown` can flush all
        registered sinks without knowing their types.
        """
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
