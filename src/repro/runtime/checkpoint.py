"""Sweep checkpointing: a JSONL journal of completed evaluations.

Each completed evaluation — successful *or* exhausted-after-retries —
appends one self-contained JSON line::

    {"key": "sel:4x2x1:ABBA:-", "status": "ok",
     "payload": {"values": {...}, "cost": 12.3, "simulations": 4}}
    {"key": "sel:8x1x1:ABAB:-", "status": "failed",
     "failures": [{"code": "CONV-DC", ...}]}

Append-plus-flush keeps the journal crash-consistent: killing a sweep
mid-evaluation loses at most the in-flight evaluation.  On resume the
journal is replayed into a key -> entry map; the runtime answers cached
keys without re-simulating and re-records journaled failures into the
live :class:`~repro.runtime.failures.FailureLog` so resumed reports
account for every failure of the whole logical run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.runtime.failures import EvalFailure

STATUS_OK = "ok"
STATUS_FAILED = "failed"


class SweepJournal:
    """Append-only JSONL journal of completed evaluations.

    Args:
        path: Journal file path (parent directories are created).
        resume: Replay an existing journal when True; truncate and start
            fresh when False.
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict] = {}
        if resume and self.path.exists():
            self._replay()
        elif not resume:
            self.path.write_text("")
        self._file = self.path.open("a", encoding="utf-8")

    def _replay(self) -> None:
        for lineno, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                status = entry["status"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn final line is the expected crash artifact; a torn
                # *interior* line means the file was corrupted some other
                # way and silently skipping it would drop completed work.
                if lineno == self._line_count():
                    continue
                raise CheckpointError(
                    f"{self.path}:{lineno}: unreadable journal entry"
                ) from None
            if status not in (STATUS_OK, STATUS_FAILED):
                raise CheckpointError(
                    f"{self.path}:{lineno}: unknown status {status!r}"
                )
            self._entries[key] = entry

    def _line_count(self) -> int:
        return len(self.path.read_text(encoding="utf-8").splitlines())

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str) -> dict | None:
        """The journal entry for ``key``, or None if not completed."""
        return self._entries.get(key)

    def journaled_failures(self, key: str) -> list[EvalFailure]:
        """Failures journaled for ``key`` (empty for successes)."""
        entry = self._entries.get(key)
        if entry is None:
            return []
        return [EvalFailure.from_dict(f) for f in entry.get("failures", ())]

    # -- writes ----------------------------------------------------------

    def _append(self, entry: dict) -> None:
        self._entries[entry["key"]] = entry
        self._file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def record_success(
        self, key: str, payload: dict, failures: list[EvalFailure] | None = None
    ) -> None:
        """Journal a completed successful evaluation.

        ``failures`` carries any retried-then-recovered attempts so a
        resumed run replays the *complete* failure accounting of the
        logical run, not just its exhausted evaluations.
        """
        entry: dict = {"key": key, "status": STATUS_OK, "payload": payload}
        if failures:
            entry["failures"] = [f.to_dict() for f in failures]
        self._append(entry)

    def record_failure(self, key: str, failures: list[EvalFailure]) -> None:
        """Journal an evaluation that exhausted its retry budget."""
        self._append(
            {
                "key": key,
                "status": STATUS_FAILED,
                "failures": [f.to_dict() for f in failures],
            }
        )

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
