"""Ambient evaluation context.

The retry machinery needs two side channels into the solver stack without
threading parameters through every call:

* the current *evaluation key* and *attempt number*, so the fault
  injector can make per-key deterministic decisions and so retries can
  differ from first attempts;
* a *retry perturbation* amplitude, so a retried DC solve starts from a
  slightly perturbed initial guess instead of deterministically failing
  the same way.

Both live in a context variable, so nested evaluations and (future)
thread pools stay isolated.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass


@dataclass(frozen=True)
class EvalContext:
    """The evaluation currently running, if any.

    Attributes:
        key: Stable evaluation key (also the journal key).
        stage: Optimization stage name.
        attempt: Zero-based retry attempt.
        perturbation: Relative amplitude for perturbing initial guesses
            (0 on the first attempt, scaled up per retry).
        newton_max_iterations: Explicit Newton iteration budget from
            :class:`~repro.runtime.policy.RetryPolicy`, honored exactly
            by the DC solver (even 0, or values below its size
            heuristic); None keeps the solver's own heuristic.
    """

    key: str = ""
    stage: str = ""
    attempt: int = 0
    perturbation: float = 0.0
    newton_max_iterations: int | None = None


_current: ContextVar[EvalContext | None] = ContextVar(
    "repro_eval_context", default=None
)


def current() -> EvalContext | None:
    """The active evaluation context (None outside the runtime)."""
    return _current.get()


@contextmanager
def evaluation(ctx: EvalContext):
    """Run a block with ``ctx`` as the active evaluation context."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
