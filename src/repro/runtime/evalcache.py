"""Content-addressed evaluation cache.

Post-layout evaluations are pure functions of the flattened netlist and
the analysis that measures it: the simulator is deterministic, so two
evaluations of byte-identical (netlist, analysis, weight) triples return
identical metric values.  The optimization flow *re-builds* identical
netlists all the time — the first point of every tuning sweep regenerates
the untuned layout selection already scored, reconciliation re-simulates
wire counts the port sweeps explored, and repeated runs over ``--run-dir``
rebuild whole sweeps — so keying evaluations by content instead of by
stage collapses that duplicate simulation work.

The cache has two tiers:

* an in-memory LRU (:class:`EvalCache`), bounded by entry count, that
  serves repeats within one process, and
* an optional on-disk tier (one JSON file per key under
  ``<run_dir>/evalcache/`` or a shared ``--cache-dir``) that serves
  repeats across runs — e.g. the same circuit built twice, or a sweep
  re-run after a crash without a journal.

The disk tier is built to be shared by **concurrent processes** and to
survive crashes mid-write:

* writes are atomic ``tmp+rename`` with per-process tmp names, so two
  simultaneous runs racing on one key both land a complete file;
* every entry embeds a SHA-256 payload checksum; a corrupt entry
  (truncation, bit-flip, partial write from a pre-checksum version) is
  *quarantined* — moved to ``<dir>/quarantine/`` and treated as a miss
  — rather than served or crashed on;
* a size-accounted LRU eviction pass (``max_disk_bytes``, the CLI's
  ``--cache-max-mb``) deletes the stalest entries under an advisory
  ``flock`` so concurrent evictors never double-delete;
* any disk failure (``ENOSPC``, permissions, a directory that cannot be
  created) downgrades the cache to memory-only — recorded once on
  :attr:`EvalCache.downgrade_reason`, never raised.

Keys are SHA-256 hashes of a canonical serialization of (flattened
netlist, analysis signature, weight overrides); see :func:`content_key`.
Instance *names* of circuits are excluded (wrapper circuits embed wire
counts in their names) but element names, nodes, model cards and every
numeric parameter participate, so any sizing (nfin/nf/m), pattern or wire
change produces a different key.

Two deliberate bypasses keep cached runs equivalent to uncached ones:

* **Fault injection** — injected faults are keyed on the *evaluation*
  key, not the content key, so a content hit could swallow a fault that
  the uncached run would see.  When a
  :class:`~repro.runtime.faults.FaultInjector` whose spec
  :attr:`~repro.runtime.faults.FaultSpec.affects_values` is active the
  cache is bypassed entirely; such fault-injected runs behave
  identically with and without a cache.  Kill-only chaos specs (worker
  SIGKILLs never change values) keep the cache enabled so chaos runs
  stay byte-comparable to clean ones.
* **Non-finite results** — a poisoned evaluation (NaN metrics) is never
  stored: retries with perturbed guesses must re-simulate, not replay
  the poison.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

try:  # POSIX-only advisory locking; the cache degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from repro.runtime import faults, supervise
from repro.spice.netlist import Circuit

#: Default in-memory LRU capacity (entries, not bytes: one entry is a
#: small dict of metric floats).
DEFAULT_MAXSIZE = 4096


def _canon(value):
    """Canonical JSON-able form of netlist values (order-stable)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            {
                f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        ]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        # repr round-trips doubles exactly; formatting would alias
        # nearby values into one key.
        return f"f:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return f"{type(value).__name__}:{value!r}"


def canonical_netlist(circuit: Circuit) -> list:
    """Order-stable, name-independent serialization of a flat netlist.

    The circuit's own name is excluded (wrapper circuits encode wire
    counts in their names; the wire count already shows up in the R/C
    values).  Element names, nodes and every electrical parameter are
    included in insertion order — netlist construction is deterministic,
    so insertion order is part of the content.
    """
    return [
        [list(circuit.ports)],
        [_canon(element) for element in circuit.elements],
    ]


def analysis_signature(primitive) -> dict:
    """What, besides the netlist, determines an evaluation's values.

    The metric testbenches wrap the DUT with bias sources built from the
    primitive's public scalar state (vcm/vout/i_tail/..., refreshed by
    bias calibration), so that state — plus the metric list and the
    technology's supply — is part of the cache key.  The primitive's
    *instance name* is excluded: two differently-named instances with
    identical state measure identically.
    """
    scalars = {
        k: _canon(v)
        for k, v in sorted(vars(primitive).items())
        if not k.startswith("_")
        and k != "name"
        and isinstance(v, (bool, int, float, str))
    }
    return {
        "class": type(primitive).__qualname__,
        "state": scalars,
        "metrics": [[m.name, _canon(m.weight)] for m in primitive.metrics()],
        "vdd": _canon(float(getattr(primitive.tech, "vdd", 0.0))),
    }


def content_key(
    circuit: Circuit,
    analysis: dict,
    weight_override: dict[str, float] | None = None,
) -> str:
    """SHA-256 content key of one (netlist, analysis, weights) triple."""
    document = {
        "netlist": canonical_netlist(circuit),
        "analysis": analysis,
        "weights": _canon(weight_override or {}),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`EvalCache`.

    ``hits``/``stored`` are deterministic for a given logical run (they
    track the consumed evaluation sequence, which is identical for any
    ``--jobs``); ``misses`` additionally counts lookups whose evaluation
    later failed, so it may differ between worker counts and is reported
    for diagnostics only.

    Every :meth:`EvalCache.get` call counts exactly one ``lookups`` and
    exactly one of ``hits``/``misses`` — a quarantined corrupt disk
    entry is one miss (plus one ``corrupt``), never double-counted — so
    ``hits + misses == lookups`` always holds.  Containment peeks
    (``key in cache``) take no statistics and are not lookups.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stored: int = 0
    evicted: int = 0
    #: Disk entries that failed their checksum and were quarantined.
    corrupt: int = 0
    #: Disk entries deleted by the size-cap eviction pass.
    disk_evicted: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class _Entry:
    values: dict[str, float]
    simulations: int


#: Bytes per ``--cache-max-mb`` unit.
MB = 1024 * 1024

#: Quarantine subdirectory for corrupt disk entries (excluded from
#: lookups and from the eviction size accounting).
QUARANTINE_DIR = "quarantine"


def payload_checksum(values: dict[str, float], simulations: int) -> str:
    """SHA-256 checksum of one disk entry's payload.

    Computed over a canonical JSON form (sorted keys, coerced types), so
    a read-back entry verifies iff its values and simulation count
    survived the disk byte-for-byte.
    """
    blob = json.dumps(
        {
            "simulations": int(simulations),
            "values": {str(k): float(v) for k, v in sorted(values.items())},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class EvalCache:
    """Two-tier (memory LRU + optional disk) evaluation cache.

    The disk tier is crash-safe and shareable between concurrent
    processes (see the module docstring).  Any disk-tier failure — the
    directory cannot be created, a write hits ``ENOSPC`` or a permission
    wall — *downgrades* the cache to memory-only instead of raising:
    :attr:`disk_dir` becomes None and :attr:`downgrade_reason` records
    the first cause for the degradation ladder to surface.

    Args:
        maxsize: In-memory entry bound; least-recently-used entries are
            evicted first.
        disk_dir: Directory for the on-disk tier (created here, once);
            None keeps the cache memory-only.
        max_disk_bytes: Optional size cap for the disk tier; when the
            (estimated) total entry size exceeds it, stalest-first
            entries are deleted under an advisory lock until the tier
            fits.  None leaves the disk tier unbounded.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        disk_dir: str | os.PathLike | None = None,
        max_disk_bytes: int | None = None,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        #: First disk failure that forced a memory-only downgrade, or
        #: None while the disk tier (if any) is healthy.
        self.downgrade_reason: str | None = None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        # Forked evaluation workers inherit this cache object, and their
        # speculative work must leave no trace outside their process:
        # only the owning (parent) process writes the disk tier.  This
        # also keeps the disk tier in lock-step with the journal (both
        # written at consumption).  Concurrent *parent* processes each
        # own their instance, so all of them write — safely, via
        # per-process tmp names and atomic renames.
        self._owner_pid = os.getpid()
        self._disk_bytes = 0
        if self.disk_dir is not None:
            try:
                self.disk_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                self._downgrade(
                    f"evalcache: cannot create {self.disk_dir} ({exc}); "
                    "continuing memory-only"
                )
            else:
                if self.max_disk_bytes is not None:
                    self._disk_bytes = self._scan_disk_bytes()
        supervise.register_flushable(self)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` would hit — memory, or a disk entry that
        passes its checksum (a corrupt entry is quarantined, not
        reported)."""
        return key in self._entries or self._read_disk(key) is not None

    def flush(self) -> None:
        """Durability hook for graceful shutdown (see
        :func:`repro.runtime.supervise.graceful_shutdown`).

        The disk tier is write-through with atomic renames, so there is
        no buffered state to push; the hook exists so shutdown code can
        flush every registered durability sink uniformly.
        """

    # -- disk tier -------------------------------------------------------

    def _downgrade(self, reason: str) -> None:
        """Drop the disk tier, recording the first cause."""
        if self.downgrade_reason is None:
            self.downgrade_reason = reason
        self.disk_dir = None

    @contextlib.contextmanager
    def _disk_lock(self):
        """Advisory cross-process lock over the disk directory.

        Only the eviction pass takes it (entry reads/writes are safe
        lock-free via checksums and atomic renames); without ``fcntl``
        the lock is a no-op and eviction merely tolerates races.
        """
        if fcntl is None or self.disk_dir is None:
            yield
            return
        try:
            handle = open(self.disk_dir / ".lock", "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        finally:
            handle.close()

    def _scan_disk_bytes(self) -> int:
        """Measured size of the disk tier's entries (quarantine and
        bookkeeping files excluded)."""
        total = 0
        if self.disk_dir is None:
            return total
        try:
            paths = list(self.disk_dir.glob("*.json"))
        except OSError:
            return total
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                continue  # raced with a concurrent evictor
        return total

    def _quarantine(self, path: Path) -> None:
        """Move a checksum-failing entry aside so no process serves it."""
        self.stats.corrupt += 1
        if self.disk_dir is None:
            return
        try:
            qdir = self.disk_dir / QUARANTINE_DIR
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # racing processes may both quarantine; one wins

    def _read_disk(self, key: str) -> _Entry | None:
        """Verified disk entry for ``key``, or None.

        Corrupt entries (torn writes, bit-flips, pre-checksum formats)
        are quarantined and reported as misses.  Pure with respect to
        cache statistics and the memory tier; callers account.
        """
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.json"
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._downgrade(
                f"evalcache: disk read failed ({exc}); continuing memory-only"
            )
            return None
        try:
            data = json.loads(raw)
            values = {str(k): float(v) for k, v in data["values"].items()}
            sims = int(data.get("simulations", 0))
            if data["checksum"] != payload_checksum(values, sims):
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path)
            return None
        return _Entry(values, sims)

    def _write_disk(self, key: str, values: dict[str, float], sims: int) -> None:
        """Atomically publish one entry (crash- and concurrency-safe).

        The tmp name embeds the pid so concurrent writers never collide;
        ``os.replace`` makes the final entry appear whole or not at all.
        A failed write (``ENOSPC``, permissions) downgrades the cache to
        memory-only rather than failing the evaluation that produced the
        result.
        """
        if self.disk_dir is None:
            return
        path = self.disk_dir / f"{key}.json"
        try:
            if path.exists():
                return
            payload = {
                "values": {str(k): float(v) for k, v in values.items()},
                "simulations": int(sims),
                "checksum": payload_checksum(values, sims),
            }
            blob = json.dumps(payload, sort_keys=True)
            tmp = self.disk_dir / f".{key}.{os.getpid()}.tmp"
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except (OSError, UnboundLocalError):
                pass
            self._downgrade(
                f"evalcache: disk write failed ({exc}); continuing memory-only"
            )
            return
        if self.max_disk_bytes is not None:
            self._disk_bytes += len(blob)
            if self._disk_bytes > self.max_disk_bytes:
                self._evict_disk()

    def _evict_disk(self) -> None:
        """Stalest-first eviction until the disk tier fits its cap.

        Runs under the advisory directory lock so two concurrent caches
        over one directory don't both scan a stale listing; entry
        deletions tolerate races regardless (a concurrently-removed file
        is simply skipped).
        """
        with self._disk_lock():
            if self.disk_dir is None or self.max_disk_bytes is None:
                return
            entries = []
            try:
                paths = list(self.disk_dir.glob("*.json"))
            except OSError:
                return
            for path in paths:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            entries.sort(key=lambda item: (item[0], item[2].name))
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.max_disk_bytes:
                    break
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    continue
                total -= size
                self.stats.disk_evicted += 1
            self._disk_bytes = total

    # -- memory tier -----------------------------------------------------

    def _remember(self, key: str, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evicted += 1

    # -- queries ---------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached ``{"values", "simulations"}`` payload, or None.

        A memory hit refreshes the entry's LRU position; a disk hit
        promotes the entry into the memory tier.  A corrupt disk entry
        is quarantined and counts as exactly one miss.
        """
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return {"values": dict(entry.values), "simulations": entry.simulations}
        disk = self._read_disk(key)
        if disk is not None:
            self._remember(key, disk)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return {"values": dict(disk.values), "simulations": disk.simulations}
        self.stats.misses += 1
        return None

    def put(self, key: str, values: dict[str, float], simulations: int) -> None:
        """Store one evaluation result (write-through to the disk tier).

        Non-finite values are refused: a poisoned result must be
        re-simulated by the retry machinery, not replayed from cache.
        """
        if any(not math.isfinite(v) for v in values.values()):
            return
        if key in self._entries:
            return
        self._remember(key, _Entry(dict(values), int(simulations)))
        self.stats.stored += 1
        if self.disk_dir is not None and os.getpid() == self._owner_pid:
            self._write_disk(key, values, int(simulations))

    def key_for(
        self,
        primitive,
        circuit: Circuit,
        weight_override: dict[str, float] | None = None,
    ) -> str:
        """Content key of evaluating ``circuit`` with ``primitive``'s
        metric testbenches."""
        return content_key(
            circuit, analysis_signature(primitive), weight_override
        )


def evaluate_circuit_cached(
    primitive,
    circuit: Circuit,
    cache: EvalCache | None,
    weight_override: dict[str, float] | None = None,
) -> tuple[dict[str, float], int, str | None]:
    """Run ``primitive.evaluate(circuit)`` through the content cache.

    Returns ``(values, simulations, content_key)``; a cache hit costs 0
    simulations.  ``content_key`` is None when the cache is bypassed —
    no cache configured, or a *value-affecting* fault injector is active
    (injected solver/metric faults key on evaluation keys, so serving
    content hits would change which faults fire; see the module
    docstring).  Kill-only chaos specs do not bypass.
    """
    injector = faults.active()
    if cache is None or (injector is not None and injector.spec.affects_values):
        values, sims = primitive.evaluate(circuit)
        return values, sims, None
    key = cache.key_for(primitive, circuit, weight_override)
    hit = cache.get(key)
    if hit is not None:
        return hit["values"], 0, key
    values, sims = primitive.evaluate(circuit)
    cache.put(key, values, sims)
    return values, sims, key
