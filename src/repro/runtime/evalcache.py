"""Content-addressed evaluation cache.

Post-layout evaluations are pure functions of the flattened netlist and
the analysis that measures it: the simulator is deterministic, so two
evaluations of byte-identical (netlist, analysis, weight) triples return
identical metric values.  The optimization flow *re-builds* identical
netlists all the time — the first point of every tuning sweep regenerates
the untuned layout selection already scored, reconciliation re-simulates
wire counts the port sweeps explored, and repeated runs over ``--run-dir``
rebuild whole sweeps — so keying evaluations by content instead of by
stage collapses that duplicate simulation work.

The cache has two tiers:

* an in-memory LRU (:class:`EvalCache`), bounded by entry count, that
  serves repeats within one process, and
* an optional on-disk tier (one JSON file per key under
  ``<run_dir>/evalcache/``) that serves repeats across runs — e.g. the
  same circuit built twice, or a sweep re-run after a crash without a
  journal.

Keys are SHA-256 hashes of a canonical serialization of (flattened
netlist, analysis signature, weight overrides); see :func:`content_key`.
Instance *names* of circuits are excluded (wrapper circuits embed wire
counts in their names) but element names, nodes, model cards and every
numeric parameter participate, so any sizing (nfin/nf/m), pattern or wire
change produces a different key.

Two deliberate bypasses keep cached runs equivalent to uncached ones:

* **Fault injection** — injected faults are keyed on the *evaluation*
  key, not the content key, so a content hit could swallow a fault that
  the uncached run would see.  When a
  :class:`~repro.runtime.faults.FaultInjector` is active the cache is
  bypassed entirely; fault-injected runs behave identically with and
  without a cache.
* **Non-finite results** — a poisoned evaluation (NaN metrics) is never
  stored: retries with perturbed guesses must re-simulate, not replay
  the poison.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.runtime import faults
from repro.spice.netlist import Circuit

#: Default in-memory LRU capacity (entries, not bytes: one entry is a
#: small dict of metric floats).
DEFAULT_MAXSIZE = 4096


def _canon(value):
    """Canonical JSON-able form of netlist values (order-stable)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            {
                f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        ]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        # repr round-trips doubles exactly; formatting would alias
        # nearby values into one key.
        return f"f:{value!r}"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return f"{type(value).__name__}:{value!r}"


def canonical_netlist(circuit: Circuit) -> list:
    """Order-stable, name-independent serialization of a flat netlist.

    The circuit's own name is excluded (wrapper circuits encode wire
    counts in their names; the wire count already shows up in the R/C
    values).  Element names, nodes and every electrical parameter are
    included in insertion order — netlist construction is deterministic,
    so insertion order is part of the content.
    """
    return [
        [list(circuit.ports)],
        [_canon(element) for element in circuit.elements],
    ]


def analysis_signature(primitive) -> dict:
    """What, besides the netlist, determines an evaluation's values.

    The metric testbenches wrap the DUT with bias sources built from the
    primitive's public scalar state (vcm/vout/i_tail/..., refreshed by
    bias calibration), so that state — plus the metric list and the
    technology's supply — is part of the cache key.  The primitive's
    *instance name* is excluded: two differently-named instances with
    identical state measure identically.
    """
    scalars = {
        k: _canon(v)
        for k, v in sorted(vars(primitive).items())
        if not k.startswith("_")
        and k != "name"
        and isinstance(v, (bool, int, float, str))
    }
    return {
        "class": type(primitive).__qualname__,
        "state": scalars,
        "metrics": [[m.name, _canon(m.weight)] for m in primitive.metrics()],
        "vdd": _canon(float(getattr(primitive.tech, "vdd", 0.0))),
    }


def content_key(
    circuit: Circuit,
    analysis: dict,
    weight_override: dict[str, float] | None = None,
) -> str:
    """SHA-256 content key of one (netlist, analysis, weights) triple."""
    document = {
        "netlist": canonical_netlist(circuit),
        "analysis": analysis,
        "weights": _canon(weight_override or {}),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`EvalCache`.

    ``hits``/``stored`` are deterministic for a given logical run (they
    track the consumed evaluation sequence, which is identical for any
    ``--jobs``); ``misses`` additionally counts lookups whose evaluation
    later failed, so it may differ between worker counts and is reported
    for diagnostics only.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stored: int = 0
    evicted: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class _Entry:
    values: dict[str, float]
    simulations: int


class EvalCache:
    """Two-tier (memory LRU + optional disk) evaluation cache.

    Args:
        maxsize: In-memory entry bound; least-recently-used entries are
            evicted first.  The disk tier, when present, is unbounded.
        disk_dir: Directory for the on-disk tier (created on first
            write); None keeps the cache memory-only.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        disk_dir: str | os.PathLike | None = None,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        # Forked evaluation workers inherit this cache object, and their
        # speculative work must leave no trace outside their process:
        # only the owning (parent) process writes the disk tier.  This
        # also keeps the disk tier in lock-step with the journal (both
        # written at consumption) and prevents concurrent workers from
        # racing on the write-temp file.
        self._owner_pid = os.getpid()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None

    # -- tiers -----------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.json"
        return path if path.exists() else None

    def _remember(self, key: str, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evicted += 1

    # -- queries ---------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached ``{"values", "simulations"}`` payload, or None.

        A memory hit refreshes the entry's LRU position; a disk hit
        promotes the entry into the memory tier.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return {"values": dict(entry.values), "simulations": entry.simulations}
        path = self._disk_path(key)
        if path is not None:
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                values = {str(k): float(v) for k, v in data["values"].items()}
                sims = int(data.get("simulations", 0))
            except (OSError, ValueError, KeyError, TypeError):
                # A torn write from a killed run; treat as a miss.
                self.stats.misses += 1
                return None
            self._remember(key, _Entry(values, sims))
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return {"values": dict(values), "simulations": sims}
        self.stats.misses += 1
        return None

    def put(self, key: str, values: dict[str, float], simulations: int) -> None:
        """Store one evaluation result (write-through to the disk tier).

        Non-finite values are refused: a poisoned result must be
        re-simulated by the retry machinery, not replayed from cache.
        """
        if any(not math.isfinite(v) for v in values.values()):
            return
        if key in self._entries:
            return
        self._remember(key, _Entry(dict(values), int(simulations)))
        self.stats.stored += 1
        if self.disk_dir is not None and os.getpid() == self._owner_pid:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self.disk_dir / f"{key}.json"
            if not path.exists():
                tmp = path.with_suffix(".tmp")
                tmp.write_text(
                    json.dumps(
                        {"values": dict(values), "simulations": int(simulations)}
                    ),
                    encoding="utf-8",
                )
                os.replace(tmp, path)

    def key_for(
        self,
        primitive,
        circuit: Circuit,
        weight_override: dict[str, float] | None = None,
    ) -> str:
        """Content key of evaluating ``circuit`` with ``primitive``'s
        metric testbenches."""
        return content_key(
            circuit, analysis_signature(primitive), weight_override
        )


def evaluate_circuit_cached(
    primitive,
    circuit: Circuit,
    cache: EvalCache | None,
    weight_override: dict[str, float] | None = None,
) -> tuple[dict[str, float], int, str | None]:
    """Run ``primitive.evaluate(circuit)`` through the content cache.

    Returns ``(values, simulations, content_key)``; a cache hit costs 0
    simulations.  ``content_key`` is None when the cache is bypassed —
    no cache configured, or a fault injector is active (injected faults
    key on evaluation keys, so serving content hits would change which
    faults fire; see the module docstring).
    """
    if cache is None or faults.active() is not None:
        values, sims = primitive.evaluate(circuit)
        return values, sims, None
    key = cache.key_for(primitive, circuit, weight_override)
    hit = cache.get(key)
    if hit is not None:
        return hit["values"], 0, key
    values, sims = primitive.evaluate(circuit)
    cache.put(key, values, sims)
    return values, sims, key
