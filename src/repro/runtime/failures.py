"""Structured failure taxonomy for the evaluation runtime.

Every simulation-backed evaluation that fails is recorded as an
:class:`EvalFailure` with a *stable* failure code instead of aborting the
sweep.  The codes are part of the public contract (tests, journals and
operator dashboards key on them):

========================  ====================================================
Code                      Meaning
========================  ====================================================
``CONV-DC``               DC operating point did not converge (Newton plus
                          gmin/source stepping all failed).
``CONV-TRAN``             A transient time step failed even after the
                          bounded step-halving cascade.
``SINGULAR-MNA``          The MNA system stayed singular after the
                          Tikhonov-regularized least-squares fallback.
``EVAL-TIMEOUT``          One evaluation exceeded its wall-clock deadline.
``BAD-METRIC``            A measured metric came back NaN/inf (or a metric
                          testbench raised a measurement error).
``WORKER-LOST``           An evaluation worker process died (SIGKILL, OOM,
                          segfault) and the task was quarantined after
                          killing a replacement worker too.
========================  ====================================================

Failures are accumulated on a per-run :class:`FailureLog` that the
optimizer attaches to its report; it serializes to plain dicts so the
checkpoint journal can replay it across a resume.  The log also carries
the run's *downgrade ledger* — one entry per graceful-degradation step
taken (parallel pool replaced or abandoned for serial execution, disk
cache fallen back to memory-only, journal tail truncated), recorded once
each and surfaced through ``summary()``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field

from repro.errors import MeasureError, ReproError, SimulationError

CONV_DC = "CONV-DC"
CONV_TRAN = "CONV-TRAN"
SINGULAR_MNA = "SINGULAR-MNA"
EVAL_TIMEOUT = "EVAL-TIMEOUT"
BAD_METRIC = "BAD-METRIC"
WORKER_LOST = "WORKER-LOST"

#: Every stable failure code, in documentation order.
FAILURE_CODES = (
    CONV_DC,
    CONV_TRAN,
    SINGULAR_MNA,
    EVAL_TIMEOUT,
    BAD_METRIC,
    WORKER_LOST,
)


@dataclass(frozen=True)
class EvalFailure:
    """One failed evaluation attempt.

    Attributes:
        code: Stable failure code (one of :data:`FAILURE_CODES`).
        stage: Optimization stage (``"selection"``, ``"tuning"``,
            ``"port_constraints"``, ...).
        key: The evaluation key (stable across resumes).
        message: Human-readable detail from the underlying error.
        attempt: Zero-based retry attempt that failed.
        injected: Whether the failure came from the fault injector.
    """

    code: str
    stage: str
    key: str
    message: str = ""
    attempt: int = 0
    injected: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EvalFailure":
        return cls(**data)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its stable failure code.

    Library errors carry ``failure_code`` themselves; NumPy's
    ``LinAlgError`` (raised below the library's error boundary) maps to
    ``SINGULAR-MNA``; anything else measurement-shaped maps to
    ``BAD-METRIC``.
    """
    code = getattr(exc, "failure_code", None)
    if code:
        return code
    import numpy as np

    if isinstance(exc, np.linalg.LinAlgError):
        return SINGULAR_MNA
    if isinstance(exc, (ArithmeticError, ValueError)):
        return BAD_METRIC
    raise TypeError(f"cannot classify {type(exc).__name__} as an EvalFailure")


def is_eval_failure(exc: BaseException) -> bool:
    """True when ``exc`` is an absorbable evaluation failure.

    Simulation/measurement errors and singular linear algebra are
    expected outcomes of a sweep; netlist/technology/layout errors are
    programming or configuration bugs and keep propagating.
    """
    import numpy as np

    return isinstance(
        exc, (SimulationError, MeasureError, np.linalg.LinAlgError)
    ) or (
        not isinstance(exc, ReproError)
        and isinstance(exc, (FloatingPointError, ZeroDivisionError))
    )


@dataclass
class FailureLog:
    """Accumulated evaluation failures of one run (or one report)."""

    failures: list[EvalFailure] = field(default_factory=list)
    #: Stages whose failure fraction crossed the policy ceiling.
    degraded_stages: list[str] = field(default_factory=list)
    #: Graceful-degradation steps the run took (each recorded once):
    #: pool replacement / serial fallback, disk-cache memory-only
    #: fallback, journal tail truncation.
    downgrades: list[str] = field(default_factory=list)

    def record(self, failure: EvalFailure) -> None:
        self.failures.append(failure)

    def mark_degraded(self, stage: str) -> None:
        if stage not in self.degraded_stages:
            self.degraded_stages.append(stage)

    def mark_downgrade(self, event: str) -> None:
        """Record one graceful-degradation step, deduplicated by text."""
        if event not in self.downgrades:
            self.downgrades.append(event)

    def extend(self, other: "FailureLog") -> None:
        self.failures.extend(other.failures)
        for stage in other.degraded_stages:
            self.mark_degraded(stage)
        for event in other.downgrades:
            self.mark_downgrade(event)

    def __len__(self) -> int:
        return len(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures) or bool(self.downgrades)

    def count(self, code: str | None = None, stage: str | None = None) -> int:
        """Number of recorded failures, optionally filtered."""
        return sum(
            1
            for f in self.failures
            if (code is None or f.code == code)
            and (stage is None or f.stage == stage)
        )

    def by_code(self) -> dict[str, int]:
        """Failure count per code, insertion-ordered."""
        return dict(Counter(f.code for f in self.failures))

    def failed_keys(self, stage: str | None = None) -> set[str]:
        """Keys that recorded at least one failure."""
        return {
            f.key
            for f in self.failures
            if stage is None or f.stage == stage
        }

    def summary(self) -> str:
        """One-line human summary, e.g. ``"3 failures: CONV-DC=2, BAD-METRIC=1"``."""
        if not self.failures and not self.downgrades:
            return "no failures"
        if self.failures:
            parts = ", ".join(
                f"{c}={n}" for c, n in sorted(self.by_code().items())
            )
            text = f"{len(self.failures)} failures: {parts}"
        else:
            text = "no failures"
        if self.degraded_stages:
            text += f" (degraded stages: {', '.join(self.degraded_stages)})"
        if self.downgrades:
            text += f" (downgraded: {'; '.join(self.downgrades)})"
        return text

    def to_dict(self) -> dict:
        return {
            "failures": [f.to_dict() for f in self.failures],
            "degraded_stages": list(self.degraded_stages),
            "downgrades": list(self.downgrades),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureLog":
        log = cls()
        for item in data.get("failures", ()):
            log.record(EvalFailure.from_dict(item))
        for stage in data.get("degraded_stages", ()):
            log.mark_degraded(stage)
        for event in data.get("downgrades", ()):
            log.mark_downgrade(event)
        return log
