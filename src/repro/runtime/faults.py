"""Deterministic fault injection for the evaluation runtime.

The harness lets tests (and chaos drills) inject the full failure
taxonomy — non-convergent DC/transient solves, singular MNA matrices,
NaN metrics and slow evaluations — at the same boundaries where real
failures appear, without monkeypatching solver internals.

Decisions are *keyed*, not sequenced: whether a given (kind, evaluation
key, attempt) trips is a pure function of the injector seed, so the same
faults fire regardless of evaluation order, caching, or checkpoint
resume.  That property is what lets the resume tests assert bit-identical
reports.

Hook points (each consults :func:`active` and is a no-op when no
injector is installed):

* :func:`repro.spice.dc.dc_operating_point` — ``CONV-DC`` and
  ``SINGULAR-MNA``;
* :func:`repro.spice.tran.transient` — ``CONV-TRAN``;
* :meth:`repro.primitives.base.MosPrimitive.evaluate` — ``BAD-METRIC``
  (poisons one measured value with NaN);
* :meth:`repro.runtime.policy.EvalRuntime.evaluate` — ``EVAL-TIMEOUT``
  (adds phantom elapsed seconds to the measured wall clock);
* :func:`repro.runtime.parallel._worker_run` — ``WORKER-LOST`` (the
  chaos harness: a worker process SIGKILLs *itself* at keyed task
  indices, exercising pool supervision, replacement and poison-task
  quarantine; see :mod:`repro.runtime.supervise`).
"""

from __future__ import annotations

import hashlib
import os
import signal
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.errors import ConvergenceError, SingularMatrixError
from repro.runtime import context
from repro.runtime.failures import (
    BAD_METRIC,
    CONV_DC,
    CONV_TRAN,
    EVAL_TIMEOUT,
    SINGULAR_MNA,
    WORKER_LOST,
)


@dataclass(frozen=True)
class FaultSpec:
    """Injection rates per failure kind (all in [0, 1]).

    Attributes:
        dc_fail_rate: Probability a DC solve raises ``CONV-DC``.
        tran_fail_rate: Probability a transient run raises ``CONV-TRAN``.
        singular_rate: Probability a DC solve raises ``SINGULAR-MNA``.
        bad_metric_rate: Probability one metric of an evaluation is
            poisoned to NaN (``BAD-METRIC``).
        slow_eval_rate: Probability an evaluation is slowed by
            ``slow_eval_seconds`` of phantom wall clock (``EVAL-TIMEOUT``
            when the policy sets a shorter deadline).
        slow_eval_seconds: Phantom delay added to slow evaluations.
        recover_on_retry: When True, faults only fire on attempt 0, so a
            single retry always recovers (exercises the retry path
            deterministically).
        worker_kill_rate: Probability a *worker process* SIGKILLs itself
            before running a task (chaos: exercises pool supervision).
            The decision is keyed on the task key only, so the same
            tasks die for any pool size or dispatch order.
        worker_kill_keys: Explicit task keys whose workers are killed
            (in addition to the rate draw) — deterministic chaos
            scripting for tests.
        worker_kill_times: How many *dispatch attempts* of a doomed task
            kill their worker.  1 means the supervised re-dispatch
            recovers; >= the supervisor's death budget makes the task a
            quarantined poison task.
    """

    dc_fail_rate: float = 0.0
    tran_fail_rate: float = 0.0
    singular_rate: float = 0.0
    bad_metric_rate: float = 0.0
    slow_eval_rate: float = 0.0
    slow_eval_seconds: float = 60.0
    recover_on_retry: bool = False
    worker_kill_rate: float = 0.0
    worker_kill_keys: tuple[str, ...] = ()
    worker_kill_times: int = 1

    def rate(self, kind: str) -> float:
        return {
            CONV_DC: self.dc_fail_rate,
            CONV_TRAN: self.tran_fail_rate,
            SINGULAR_MNA: self.singular_rate,
            BAD_METRIC: self.bad_metric_rate,
            EVAL_TIMEOUT: self.slow_eval_rate,
            WORKER_LOST: self.worker_kill_rate,
        }[kind]

    @property
    def affects_values(self) -> bool:
        """Whether any injected fault can change *evaluation results*.

        Worker kills never alter values — the killed attempt is
        re-dispatched or quarantined, so a kill-only spec is safe to
        combine with the content cache (value-affecting specs bypass it;
        see :mod:`repro.runtime.evalcache`).
        """
        return any(
            rate > 0.0
            for rate in (
                self.dc_fail_rate,
                self.tran_fail_rate,
                self.singular_rate,
                self.bad_metric_rate,
                self.slow_eval_rate,
            )
        )


class FaultInjector:
    """Keyed deterministic fault source.

    Args:
        spec: Injection rates.
        seed: Seed mixed into every decision hash.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        #: Faults actually fired, per failure code.
        self.counters: dict[str, int] = {}
        #: (kind, key) pairs that fired, for exact accounting in tests.
        self.fired: list[tuple[str, str]] = []

    # -- decisions -------------------------------------------------------

    def _draw(self, kind: str, key: str, attempt: int) -> float:
        token = f"{self.seed}|{kind}|{key}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Whether the fault ``kind`` fires for (key, attempt).

        Pure — does not update counters; :meth:`trip` does.
        """
        rate = self.spec.rate(kind)
        if rate <= 0.0:
            return False
        if self.spec.recover_on_retry and attempt > 0:
            return False
        return self._draw(kind, key, attempt) < rate

    def trip(self, kind: str) -> bool:
        """Decide for the *current* evaluation context and record a hit."""
        ctx = context.current()
        key = ctx.key if ctx else "<no-context>"
        attempt = ctx.attempt if ctx else 0
        if not self.decide(kind, key, attempt):
            return False
        self.counters[kind] = self.counters.get(kind, 0) + 1
        self.fired.append((kind, key))
        return True

    def extra_elapsed(self) -> float:
        """Phantom seconds to add to the current evaluation's wall clock."""
        if self.trip(EVAL_TIMEOUT):
            return self.spec.slow_eval_seconds
        return 0.0

    def merge_fired(self, events: list[tuple[str, str]]) -> None:
        """Fold fault events observed elsewhere into this injector.

        The parallel engine runs each worker attempt under a throwaway
        injector clone (same spec and seed, so decisions are identical)
        and merges the clone's fired events back into the parent — but
        only for *consumed* attempts, so the parent's counters match a
        serial run exactly.
        """
        for kind, key in events:
            self.counters[kind] = self.counters.get(kind, 0) + 1
            self.fired.append((kind, key))

    # -- worker chaos ----------------------------------------------------

    def should_kill_worker(self, key: str, dispatch_attempt: int) -> bool:
        """Whether the worker running ``key`` should SIGKILL itself.

        Keyed on the task key alone (not the dispatch attempt), so a
        doomed task dies on every dispatch up to ``worker_kill_times``
        and then recovers — deterministic for any pool size, dispatch
        order, or supervision history.
        """
        if dispatch_attempt >= self.spec.worker_kill_times:
            return False
        if key in self.spec.worker_kill_keys:
            return True
        rate = self.spec.worker_kill_rate
        if rate <= 0.0:
            return False
        return self._draw(WORKER_LOST, key, 0) < rate

    def maybe_kill_worker(self, key: str, dispatch_attempt: int) -> None:
        """SIGKILL the current process when the chaos draw says so.

        Called from worker processes only (the parent never consults
        it); SIGKILL is deliberate — it models OOM kills and segfaults,
        which give the supervisor no chance to clean up.
        """
        if self.should_kill_worker(key, dispatch_attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    # -- solver-boundary hooks ------------------------------------------

    def check_dc(self, circuit_name: str) -> None:
        """Raise the injected DC-solve failure, if any."""
        if self.trip(CONV_DC):
            raise ConvergenceError(
                f"injected DC non-convergence for {circuit_name!r}",
                code=CONV_DC,
            )
        if self.trip(SINGULAR_MNA):
            raise SingularMatrixError(
                f"injected singular MNA matrix for {circuit_name!r}"
            )

    def check_tran(self, circuit_name: str) -> None:
        """Raise the injected transient failure, if any."""
        if self.trip(CONV_TRAN):
            raise ConvergenceError(
                f"injected transient non-convergence for {circuit_name!r}",
                code=CONV_TRAN,
            )

    def poison_metrics(self, values: dict[str, float]) -> dict[str, float]:
        """Replace one metric with NaN when the BAD-METRIC fault fires."""
        if values and self.trip(BAD_METRIC):
            victim = sorted(values)[0]
            values = dict(values)
            values[victim] = float("nan")
        return values


_active: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)


def active() -> FaultInjector | None:
    """The installed fault injector (None in production runs)."""
    return _active.get()


def install(injector: FaultInjector | None):
    """Install ``injector`` without a ``with`` block; returns the reset
    token for :func:`restore`.

    Worker processes use this to swap in a per-attempt injector clone
    around code that may *raise* — an explicit token survives the
    exception path where a context manager's body would not have run.
    """
    return _active.set(injector)


def restore(token) -> None:
    """Undo a previous :func:`install`."""
    _active.reset(token)


@contextmanager
def inject(spec: FaultSpec, seed: int = 0):
    """Install a :class:`FaultInjector` for the duration of a block."""
    injector = FaultInjector(spec, seed=seed)
    token = _active.set(injector)
    try:
        yield injector
    finally:
        _active.reset(token)
