"""Process-pool parallel evaluation engine.

Every fan-out point of the optimization flow — selection variants,
terminal-sweep points, port sweeps, reconcile gap re-simulations — is a
batch of *independent* evaluations, expressed as
:class:`~repro.runtime.policy.BatchTask` lists and consumed strictly in
call-site order.  :class:`ParallelEvalRuntime` overrides
:meth:`~repro.runtime.policy.EvalRuntime.evaluate_batch` to dispatch
whole batches to a fork-based process pool, then *replays* each worker's
recorded attempts in the parent at consumption time.

Determinism is the design center: a run with ``--jobs 8`` must produce a
byte-identical report (and journal) to ``--jobs 1``.  The replay scheme
achieves this by making workers **speculative and stateless** and the
parent the only bookkeeper:

* Workers run every attempt their task's retry budget allows, ignoring
  parent-side stage degradation (which depends on evaluation *order*),
  and record each attempt — success payload or failure — plus the fault
  events a per-attempt injector clone observed.
* The parent consumes outcomes in call-site order and replays only the
  prefix of attempts the serial runtime would have run given its state
  *at consumption time* (one attempt once the stage is degraded).
  Failures are recorded, journaled and counted exactly as the serial
  path records them; unconsumed speculative work leaves no trace.
* The content cache is reconciled at replay: a payload whose content key
  is already in the parent's cache is zeroed to a hit (the serial run
  would have hit), otherwise the worker's result is stored — so
  simulation accounting is independent of which worker computed what.

Workers are forked per batch *after* the tasks are registered in module
state, so closures (primitives, schematic references, the journal-less
runtime policy) are inherited by memory snapshot and never pickled; only
plain-data outcomes cross the process boundary.

Dispatch runs under a :class:`~repro.runtime.supervise.SupervisedPool`:
workers drop heartbeat markers per task, a wall-clock watchdog SIGKILLs
hung workers (``RetryPolicy.task_timeout_s``), broken pools are rebuilt
with the unfinished tasks re-dispatched, poison tasks are quarantined as
recorded ``WORKER-LOST`` failures, and a pool that keeps dying degrades
the runtime to serial execution — every downgrade recorded once on the
run's :class:`~repro.runtime.failures.FailureLog`.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EvalTimeoutError, MeasureError
from repro.runtime import context, faults, supervise
from repro.runtime.failures import (
    EvalFailure,
    classify_failure,
    is_eval_failure,
)
from repro.runtime.policy import BatchTask, EvalBatch, EvalRuntime

_warned_bad_jobs_env = False


def resolve_jobs(jobs: int | None = None, default: int | None = 1) -> int:
    """Resolve a worker count: explicit arg, then ``REPRO_JOBS``, then
    ``default`` (all clamped to >= 1).

    The CLI passes ``default=os.cpu_count()``; library entry points
    default to 1 so programmatic users opt in explicitly.  The
    environment hook lets CI run the whole test suite under ``--jobs 2``
    without threading a flag through every fixture.  ``REPRO_JOBS=0`` or
    a negative value clamps to 1 (serial); an unparseable value is
    ignored with a one-time warning instead of silently.
    """
    global _warned_bad_jobs_env
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if not _warned_bad_jobs_env:
                _warned_bad_jobs_env = True
                warnings.warn(
                    f"REPRO_JOBS={env!r} is not an integer; ignoring it",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return max(1, int(default or 1))


@dataclass
class AttemptRecord:
    """One worker-side evaluation attempt, as replayable data.

    Attributes:
        ok: Whether the attempt produced a valid result.
        payload: The serialized result (``to_payload``) when ok.
        failure: The :class:`EvalFailure` dict when not ok.
        fired: Fault events ``(kind, key)`` the attempt's injector clone
            observed, merged into the parent injector iff the attempt is
            consumed.
    """

    ok: bool
    payload: Any = None
    failure: dict | None = None
    fired: list = field(default_factory=list)


@dataclass
class TaskOutcome:
    """Everything one worker observed running one task.

    ``kind`` is ``"eval"`` for a normal outcome (success or exhausted
    retries — ``attempts`` holds the evidence), ``"absorbed"`` for an
    exception the call site catches (re-raised at consumption), or
    ``"raised"`` for an unexpected exception (also re-raised).
    """

    kind: str
    attempts: list[AttemptRecord] = field(default_factory=list)
    error: BaseException | None = None


@dataclass
class _BatchState:
    """Module-global task registry inherited by forked workers."""

    tasks: list[BatchTask]
    stage: str
    policy: Any
    clock: Any
    #: Heartbeat scratch directory of the supervising pool (None when
    #: dispatch runs unsupervised, e.g. in unit tests).
    hb_dir: Any = None


_STATE: _BatchState | None = None


def _worker_run(index: int, dispatch_attempt: int = 0) -> TaskOutcome:
    """Run one task to completion in a worker process.

    Mirrors the attempt loop of :meth:`EvalRuntime.evaluate` with two
    deliberate differences: the full retry budget is always available
    (the parent truncates at replay if its stage degraded first), and
    every attempt runs under a fresh injector clone so its fault events
    can be reported per attempt.

    ``dispatch_attempt`` counts prior pool generations that died while
    this task was in flight; the supervisor passes it so the chaos
    harness can kill a task's worker a bounded number of times.  The
    heartbeat marker is written before the chaos kill hook runs, so a
    killed worker is always attributable to its task.
    """
    assert _STATE is not None, "worker forked without batch state"
    task = _STATE.tasks[index]
    supervise.heartbeat_start(_STATE.hb_dir, index)
    try:
        return _worker_attempts(task, dispatch_attempt)
    finally:
        supervise.heartbeat_finish(_STATE.hb_dir, index)


def _worker_attempts(task: BatchTask, dispatch_attempt: int) -> TaskOutcome:
    """The attempt loop of one worker-side task (see :func:`_worker_run`)."""
    assert _STATE is not None, "worker forked without batch state"
    stage = _STATE.stage
    policy = _STATE.policy
    clock = _STATE.clock
    parent_injector = faults.active()
    if parent_injector is not None:
        parent_injector.maybe_kill_worker(task.key, dispatch_attempt)

    budget = task.retries if task.retries is not None else policy.max_retries
    attempts = 1 + max(0, budget)
    records: list[AttemptRecord] = []
    for attempt in range(attempts):
        ctx = context.EvalContext(
            key=task.key,
            stage=stage,
            attempt=attempt,
            perturbation=policy.retry_perturbation * attempt,
        )
        probe = None
        token = None
        if parent_injector is not None:
            probe = faults.FaultInjector(
                parent_injector.spec, seed=parent_injector.seed
            )
            token = faults.install(probe)
        try:
            start = clock()
            try:
                with context.evaluation(ctx):
                    result = task.thunk()
                    injector = faults.active()
                    extra = injector.extra_elapsed() if injector else 0.0
                elapsed = (clock() - start) + extra
                deadline = policy.deadline_s
                if deadline is not None and elapsed > deadline:
                    raise EvalTimeoutError(
                        f"evaluation took {elapsed:.3g}s "
                        f"(deadline {deadline:.3g}s)"
                    )
                if task.validate is not None:
                    message = task.validate(result)
                    if message:
                        raise MeasureError(message)
            except Exception as exc:
                if task.absorb and isinstance(exc, task.absorb):
                    return TaskOutcome(
                        kind="absorbed", attempts=records, error=exc
                    )
                if not is_eval_failure(exc):
                    return TaskOutcome(
                        kind="raised", attempts=records, error=exc
                    )
                failure = EvalFailure(
                    code=classify_failure(exc),
                    stage=stage,
                    key=task.key,
                    message=str(exc),
                    attempt=attempt,
                    injected=bool(getattr(exc, "injected", False))
                    or "injected" in str(exc),
                )
                records.append(
                    AttemptRecord(
                        ok=False,
                        failure=failure.to_dict(),
                        fired=list(probe.fired) if probe else [],
                    )
                )
                continue
            payload = task.to_payload(result) if task.to_payload else result
            records.append(
                AttemptRecord(
                    ok=True,
                    payload=payload,
                    fired=list(probe.fired) if probe else [],
                )
            )
            return TaskOutcome(kind="eval", attempts=records)
        finally:
            if token is not None:
                faults.restore(token)
    return TaskOutcome(kind="eval", attempts=records)


class ParallelBatch(EvalBatch):
    """Batch results computed speculatively by a worker pool.

    ``outcomes`` maps task index to :class:`TaskOutcome`; indices absent
    from it (journaled keys, skipped at dispatch) fall back to the
    serial path, which answers them from the journal.
    """

    def __init__(
        self,
        runtime: "ParallelEvalRuntime",
        tasks: list[BatchTask],
        stage: str,
        outcomes: dict[int, TaskOutcome],
    ):
        super().__init__(runtime, tasks, stage)
        self.outcomes = outcomes

    def consume(self, index: int) -> Any | None:
        outcome = self.outcomes.get(index)
        if outcome is None:
            return super().consume(index)
        task = self.tasks[index]
        runtime = self.runtime
        if outcome.kind in ("absorbed", "raised"):
            assert outcome.error is not None
            allowed = runtime._attempts_allowed(task, self.stage)
            if len(outcome.attempts) < allowed:
                # The serial run reaches the raising attempt: replay the
                # failed attempts before it (recorded but not journaled,
                # exactly as a propagating exception leaves them), then
                # re-raise.
                injector = faults.active()
                for attempt in outcome.attempts:
                    if injector is not None and attempt.fired:
                        injector.merge_fired(attempt.fired)
                    runtime.failures.record(EvalFailure.from_dict(attempt.failure))
                raise outcome.error
            # The serial run's (smaller) attempt budget is exhausted
            # before the raising attempt: the exception is speculative
            # dead wood and the task resolves as an absorbed failure.
            outcome = TaskOutcome(kind="eval", attempts=outcome.attempts)
        return runtime._replay_outcome(task, self.stage, outcome)


class ParallelEvalRuntime(EvalRuntime):
    """An :class:`EvalRuntime` whose batches fan out to worker processes.

    Args:
        jobs: Worker-pool size; None resolves via :func:`resolve_jobs`
            (``REPRO_JOBS`` environment, else 1).  ``jobs <= 1`` keeps
            every batch lazily serial — the two modes are byte-identical
            in every observable output, so 1 is a safe library default.

    All other arguments match :class:`EvalRuntime`.
    """

    def __init__(self, *args, jobs: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.jobs = resolve_jobs(jobs, default=1)

    def evaluate_batch(self, tasks: list[BatchTask], stage: str) -> EvalBatch:
        if self.jobs <= 1:
            # Serial worker-wise, but the vectorized --batch fast path
            # (EvalRuntime.evaluate_batch) may still engage.
            return super().evaluate_batch(tasks, stage)
        pending = [
            i
            for i, task in enumerate(tasks)
            if self.journal is None or self.journal.lookup(task.key) is None
        ]
        if len(pending) <= 1:
            # Zero or one live evaluation: the pool's fork cost buys
            # nothing.
            return super().evaluate_batch(tasks, stage)
        outcomes = self._dispatch(tasks, pending, stage)
        if outcomes is None:
            return super().evaluate_batch(tasks, stage)
        return ParallelBatch(self, tasks, stage, outcomes)

    def _dispatch(
        self, tasks: list[BatchTask], pending: list[int], stage: str
    ) -> dict[int, TaskOutcome] | None:
        """Fan ``pending`` task indices out to a supervised fork pool.

        Returns None when fork is unavailable (non-POSIX platforms) so
        the caller degrades to the serial batch.  Worker crashes, hangs
        and kills never raise: the supervisor replaces the pool,
        re-dispatches survivors, and quarantined tasks come back as
        synthesized ``WORKER-LOST``/``EVAL-TIMEOUT`` failure outcomes.
        Indices the supervisor gave up on (pool-replacement budget
        exhausted) are simply absent from the returned map — the batch
        answers them through the serial path at consumption — and the
        runtime drops to ``jobs=1`` for the rest of the run, the bottom
        rung of the degradation ladder.
        """
        global _STATE
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            return None
        supervisor = supervise.SupervisedPool(
            _worker_run,
            pending,
            keys={i: tasks[i].key for i in pending},
            jobs=min(self.jobs, len(pending)),
            mp_context=mp_context,
            task_timeout_s=self.policy.task_timeout_s,
        )
        _STATE = _BatchState(
            tasks=tasks,
            stage=stage,
            policy=self.policy,
            clock=self.clock,
            hb_dir=supervisor.heartbeat_dir,
        )
        try:
            supervised = supervisor.run()
        finally:
            _STATE = None
        for event in supervised.events:
            self.failures.mark_downgrade(event)
        outcomes = supervised.outcomes
        for index, lost in supervised.lost.items():
            failure = EvalFailure(
                code=lost.code,
                stage=stage,
                key=tasks[index].key,
                message=lost.message,
                attempt=0,
            )
            outcomes[index] = TaskOutcome(
                kind="eval",
                attempts=[
                    AttemptRecord(ok=False, failure=failure.to_dict())
                ],
            )
        if supervised.serial_fallback:
            self.jobs = 1
        return outcomes

    # -- replay ------------------------------------------------------------

    def _attempts_allowed(self, task: BatchTask, stage: str) -> int:
        """How many attempts the serial runtime would run *right now*."""
        if self.stage_degraded(stage):
            return 1
        budget = (
            task.retries if task.retries is not None else self.policy.max_retries
        )
        return 1 + max(0, budget)

    def _replay_outcome(
        self, task: BatchTask, stage: str, outcome: TaskOutcome
    ) -> Any | None:
        """Re-enact a worker's attempts against the parent's state.

        The consumed prefix of attempts is exactly what the serial
        runtime would have run: the full budget normally, a single
        attempt once the stage is degraded.  Only consumed attempts
        touch the failure log, the journal, the injector counters and
        the cache — so consuming outcomes in call-site order reproduces
        the serial run byte for byte.
        """
        allowed = self._attempts_allowed(task, stage)
        injector = faults.active()
        recorded: list[EvalFailure] = []
        for attempt in outcome.attempts[:allowed]:
            if injector is not None and attempt.fired:
                injector.merge_fired(attempt.fired)
            if attempt.ok:
                payload = self._reconcile_cache(attempt.payload)
                self._finish_stage_eval(stage, failed=False)
                if self.journal is not None:
                    self.journal.record_success(
                        task.key, payload, failures=recorded
                    )
                return (
                    task.from_payload(payload) if task.from_payload else payload
                )
            failure = EvalFailure.from_dict(attempt.failure)
            recorded.append(failure)
            self.failures.record(failure)
        self._finish_stage_eval(stage, failed=True)
        if self.journal is not None:
            self.journal.record_failure(task.key, recorded)
        return None

    def _reconcile_cache(self, payload: Any) -> Any:
        """Align a worker payload with the parent's content cache.

        Workers query a fork-time *snapshot* of the cache, so their
        hit/miss pattern can differ from the serial run's (a miss on an
        entry a sibling task was about to store).  Replaying the lookup
        against the parent cache in consumption order restores serial
        semantics: already-known content becomes a 0-simulation hit,
        new content is stored.
        """
        if self.cache is None or not isinstance(payload, dict):
            return payload
        key = payload.get("cache_key")
        values = payload.get("values")
        if key is None or not isinstance(values, dict):
            return payload
        hit = self.cache.get(key)
        if hit is not None:
            payload = dict(payload)
            payload["values"] = hit["values"]
            payload["simulations"] = 0
        else:
            self.cache.put(
                key,
                {k: float(v) for k, v in values.items()},
                int(payload.get("simulations", 0)),
            )
        return payload
