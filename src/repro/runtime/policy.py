"""Retry/budget policy and the fault-tolerant evaluation wrapper.

:class:`EvalRuntime` wraps every simulation-backed evaluation of the
optimization flow.  A failing evaluation is retried (with a perturbed
initial guess), bounded by a per-evaluation wall-clock deadline, and —
when the retry budget is exhausted — *absorbed*: the failure is recorded
on a :class:`~repro.runtime.failures.FailureLog` and the sweep moves on.
The degradation ladder is::

    retry (perturbed guess)  ->  skip the option (scored as missing/inf)
    ->  empty bins fall back to untuned survivors  ->  the flow raises
    only when zero options survive a stage

A per-stage failure-fraction ceiling keeps a pathological stage from
burning its whole retry budget: once the ceiling is crossed the stage is
marked *degraded* and subsequent failures in it are not retried.

When a :class:`~repro.runtime.checkpoint.SweepJournal` is attached, every
completed evaluation (success or exhausted failure) is journaled, and
journaled keys are answered from the journal without re-simulation —
the crash/resume path of ``repro optimize --resume``.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import EvalTimeoutError, MeasureError
from repro.runtime import context, faults
from repro.runtime.checkpoint import STATUS_OK, SweepJournal
from repro.runtime.failures import (
    EvalFailure,
    FailureLog,
    classify_failure,
    is_eval_failure,
)


def _kernel():
    # Deferred: repro.spice.dc imports repro.runtime at module scope, so
    # the solver kernel must be resolved lazily to avoid an import cycle.
    from repro.spice import kernel

    return kernel


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and budget knobs for one run.

    Attributes:
        max_retries: Retries after the first failed attempt (0 disables
            retrying).  Retries re-run the evaluation with a perturbed
            initial guess so deterministic failures are not replayed
            verbatim.
        deadline_s: Per-evaluation wall-clock deadline in seconds; an
            evaluation that takes longer counts as ``EVAL-TIMEOUT`` and
            its result is discarded (None disables the deadline).
        stage_failure_ceiling: Fraction of failed evaluations in one
            stage above which the stage is marked degraded and stops
            spending retries (it still absorbs failures and keeps going).
        retry_perturbation: Relative initial-guess perturbation amplitude
            per retry attempt.
        task_timeout_s: Per-task wall-clock watchdog deadline for
            supervised worker pools (``--task-timeout``): a worker whose
            heartbeat exceeds this age is SIGKILLed, the pool replaced,
            and the task recorded as ``EVAL-TIMEOUT``.  Unlike
            ``deadline_s`` (measured *inside* the evaluation), this
            catches evaluations that hang and never return.  None
            disables the watchdog.
        newton_max_iterations: Explicit per-solve Newton iteration
            budget for deadline-driven runs.  Honored *exactly* by the
            DC solver — including 0 and values below its
            ``max(120, 2*num_nodes)`` size heuristic, which used to be
            an unconditional floor — so a shrunk budget actually fails
            fast instead of being silently clamped back up.  None keeps
            the heuristic (see docs/robustness.md).
    """

    max_retries: int = 1
    deadline_s: float | None = None
    stage_failure_ceiling: float = 0.5
    retry_perturbation: float = 1e-3
    task_timeout_s: float | None = None
    newton_max_iterations: int | None = None


@dataclass
class BatchTask:
    """One evaluation of a batch — the arguments of one
    :meth:`EvalRuntime.evaluate` call, captured as data.

    ``absorb`` lists exception types the *call site* catches around the
    evaluation (e.g. ``LayoutError`` during selection): a worker process
    returns them for deterministic re-raise at consumption instead of
    treating them as evaluation failures.

    ``batch_spec`` (a :class:`~repro.runtime.batched.BatchSpec`, when the
    call site can describe the evaluation as build-circuit + simulate +
    finish) opts the task into the vectorized multi-variant fast path of
    :mod:`repro.runtime.batched`; tasks without one always run their
    ``thunk`` serially.
    """

    key: str
    thunk: Callable[[], Any]
    validate: Callable[[Any], str | None] | None = None
    to_payload: Callable[[Any], dict] | None = None
    from_payload: Callable[[dict], Any] | None = None
    retries: int | None = None
    absorb: tuple[type, ...] = ()
    batch_spec: Any | None = None


class EvalBatch:
    """A batch of evaluations, consumed strictly in call-site order.

    The base implementation is *lazy serial*: nothing runs until
    :meth:`consume`, which simply forwards to
    :meth:`EvalRuntime.evaluate` — so early-stopping call sites (a
    tuning sweep that breaks once the cost curve turns) pay only for
    what they consume.  :class:`~repro.runtime.parallel
    .ParallelEvalRuntime` overrides batching with speculative
    process-pool dispatch; consumption order — and therefore failure
    logs, journals and stage accounting — is identical either way.

    Tasks never consumed are never accounted: not journaled, not
    recorded as failures, not counted against any stage.
    """

    def __init__(self, runtime: "EvalRuntime", tasks: list[BatchTask], stage: str):
        self.runtime = runtime
        self.tasks = tasks
        self.stage = stage

    def __len__(self) -> int:
        return len(self.tasks)

    def consume(self, index: int) -> Any | None:
        """Result of task ``index`` (None when absorbed as a failure)."""
        task = self.tasks[index]
        return self.runtime.evaluate(
            task.key,
            task.thunk,
            self.stage,
            validate=task.validate,
            to_payload=task.to_payload,
            from_payload=task.from_payload,
            retries=task.retries,
        )


class EvalRuntime:
    """Fault-tolerant wrapper around simulation-backed evaluations.

    Args:
        policy: Retry/budget policy (defaults to :class:`RetryPolicy`).
        journal: Optional sweep-checkpoint journal.
        failures: FailureLog to record into (a fresh one by default).
        clock: Monotonic clock, overridable for tests.
        cache: Optional content-addressed evaluation cache
            (:class:`~repro.runtime.evalcache.EvalCache`); call sites
            read it via :attr:`cache` to route circuit evaluations
            through :func:`~repro.runtime.evalcache
            .evaluate_circuit_cached`.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        journal: SweepJournal | None = None,
        failures: FailureLog | None = None,
        clock: Callable[[], float] = time.monotonic,
        cache: Any | None = None,
        batch: int | None = None,
    ):
        from repro.runtime.batched import resolve_batch  # deferred: cycle

        self.policy = policy or RetryPolicy()
        self.journal = journal
        self.failures = failures if failures is not None else FailureLog()
        self.clock = clock
        self.cache = cache
        #: Vectorized-sweep width: how many same-pattern variants one
        #: stacked solve covers (``--batch`` / ``REPRO_BATCH``; 1
        #: disables the fast path).
        self.batch = resolve_batch(batch)
        self._stage_total: Counter = Counter()
        self._stage_failed: Counter = Counter()
        #: Evaluations answered from the journal without re-simulating.
        self.cache_hits = 0
        #: Solver-kernel counters accumulated across every evaluation
        #: this runtime executes in-process.  A *profiling view*, not
        #: part of the determinism contract: journal replays and cache
        #: hits contribute nothing, and evaluations computed in worker
        #: processes are counted there, not here.
        self.solver_stats = _kernel().SolverStats()

    # -- stage accounting -------------------------------------------------

    def stage_failure_fraction(self, stage: str) -> float:
        total = self._stage_total[stage]
        return self._stage_failed[stage] / total if total else 0.0

    def stage_degraded(self, stage: str) -> bool:
        return stage in self.failures.degraded_stages

    def _finish_stage_eval(self, stage: str, failed: bool) -> None:
        self._stage_total[stage] += 1
        if failed:
            self._stage_failed[stage] += 1
            ceiling = self.policy.stage_failure_ceiling
            if self.stage_failure_fraction(stage) > ceiling:
                self.failures.mark_degraded(stage)

    # -- the wrapper -------------------------------------------------------

    def evaluate(
        self,
        key: str,
        thunk: Callable[[], Any],
        stage: str,
        validate: Callable[[Any], str | None] | None = None,
        to_payload: Callable[[Any], dict] | None = None,
        from_payload: Callable[[dict], Any] | None = None,
        retries: int | None = None,
    ) -> Any | None:
        """Run one evaluation under the retry/budget policy.

        Args:
            key: Stable evaluation key (journal key; must not collide
                across stages of one run).
            thunk: Zero-argument callable performing the evaluation.
            stage: Stage name for failure accounting.
            validate: Optional ``result -> error message`` check; a
                non-None message is recorded as ``BAD-METRIC``.
            to_payload: Serializes a successful result for the journal.
            from_payload: Rebuilds a result from a journaled payload
                (must not simulate).
            retries: Per-call retry-budget override (e.g. raised for a
                critical evaluation the whole stage depends on).

        Returns:
            The evaluation result, or None when the evaluation failed
            and was absorbed (the failure is on :attr:`failures`).
        """
        entry = self.journal.lookup(key) if self.journal is not None else None
        if entry is not None:
            self.cache_hits += 1
            # Replay the journaled failure accounting (for successes these
            # are retried-then-recovered attempts) so the resumed log
            # matches the uninterrupted run's exactly.
            for failure in self.journal.journaled_failures(key):
                self.failures.record(failure)
            if entry["status"] == STATUS_OK:
                self._finish_stage_eval(stage, failed=False)
                payload = entry["payload"]
                self._prime_cache(payload)
                return from_payload(payload) if from_payload else payload
            self._finish_stage_eval(stage, failed=True)
            return None

        budget = retries if retries is not None else self.policy.max_retries
        attempts = 1 + max(0, budget)
        if self.stage_degraded(stage):
            attempts = 1  # budget conservation: no retries once degraded
        recorded: list[EvalFailure] = []
        for attempt in range(attempts):
            ctx = context.EvalContext(
                key=key,
                stage=stage,
                attempt=attempt,
                perturbation=self.policy.retry_perturbation * attempt,
                newton_max_iterations=self.policy.newton_max_iterations,
            )
            start = self.clock()
            try:
                with context.evaluation(ctx):
                    with _kernel().collect(self.solver_stats):
                        result = thunk()
                    injector = faults.active()
                    extra = injector.extra_elapsed() if injector else 0.0
                elapsed = (self.clock() - start) + extra
                deadline = self.policy.deadline_s
                if deadline is not None and elapsed > deadline:
                    raise EvalTimeoutError(
                        f"evaluation took {elapsed:.3g}s "
                        f"(deadline {deadline:.3g}s)"
                    )
                if validate is not None:
                    message = validate(result)
                    if message:
                        raise MeasureError(message)
            except Exception as exc:
                if not is_eval_failure(exc):
                    raise
                failure = EvalFailure(
                    code=classify_failure(exc),
                    stage=stage,
                    key=key,
                    message=str(exc),
                    attempt=attempt,
                    injected=bool(getattr(exc, "injected", False))
                    or "injected" in str(exc),
                )
                recorded.append(failure)
                self.failures.record(failure)
                continue
            self._finish_stage_eval(stage, failed=False)
            if self.journal is not None:
                payload = to_payload(result) if to_payload else result
                self.journal.record_success(key, payload, failures=recorded)
            return result

        self._finish_stage_eval(stage, failed=True)
        if self.journal is not None:
            self.journal.record_failure(key, recorded)
        return None

    def _prime_cache(self, payload: Any) -> None:
        """Re-enact a journaled evaluation's content-cache traffic.

        Resuming replays journal entries without simulating, which would
        leave the cache missing the entries the interrupted run had
        stored — and later (non-journaled) evaluations would then
        re-simulate content the original run answered from cache.
        Replaying each journaled success against the cache (a hit for a
        0-simulation payload, a store otherwise) reconstructs the
        interrupted run's cache state and statistics exactly.
        """
        if self.cache is None or not isinstance(payload, dict):
            return
        key = payload.get("cache_key")
        values = payload.get("values")
        if key is None or not isinstance(values, dict):
            return
        simulations = int(payload.get("simulations", 0))
        if simulations == 0:
            self.cache.get(key)
        else:
            self.cache.put(
                key, {k: float(v) for k, v in values.items()}, simulations
            )

    # -- batching ----------------------------------------------------------

    def evaluate_batch(self, tasks: list[BatchTask], stage: str) -> EvalBatch:
        """Prepare a batch of independent evaluations of one stage.

        The caller must :meth:`~EvalBatch.consume` results in the same
        order a serial loop would evaluate them, and may stop early.
        The base runtime evaluates lazily at consumption — unless
        :attr:`batch` > 1 and the tasks carry batch specs, in which case
        the vectorized fast path of :mod:`repro.runtime.batched` engages
        (byte-identical results; see docs/performance.md).  See
        :class:`~repro.runtime.parallel.ParallelEvalRuntime` for the
        process-pool override.
        """
        from repro.runtime.batched import maybe_batched  # deferred: cycle

        fast = maybe_batched(self, tasks, stage)
        if fast is not None:
            return fast
        return EvalBatch(self, tasks, stage)
