"""Worker supervision and graceful shutdown for the evaluation engine.

The fork-pool engine (:mod:`repro.runtime.parallel`) originally trusted
its workers: a SIGKILLed worker (OOM killer, operator, chaos drill) broke
the whole ``ProcessPoolExecutor`` and took the run down with it, and a
hung SPICE solve wedged the pool forever.  This module supplies the
missing supervision layer:

* **Heartbeats** — each worker drops a small JSON marker
  (``<index>.hb``: pid + monotonic start time) into a scratch directory
  when it picks up a task and removes it when done.  The parent reads
  the markers to attribute pool breakage to the task(s) that were
  in flight, and to measure how long a running task has been silent.
* **Watchdog** — with a ``task_timeout_s`` deadline, a task whose
  heartbeat outlives the deadline is presumed hung: its worker is
  SIGKILLed, the pool replaced, and the task recorded as an
  ``EVAL-TIMEOUT`` failure (the in-evaluation ``deadline_s`` cannot
  catch a solve that never returns).
* **Pool replacement & quarantine** — a broken pool is rebuilt and the
  unfinished tasks re-dispatched.  A task that kills
  ``max_task_deaths`` fresh workers is a *poison task*: it degrades to
  a recorded ``WORKER-LOST`` failure instead of ever raising.  A run
  whose pool keeps dying (``max_pool_replacements`` exceeded) falls
  back to serial in-process execution — the bottom rung of the
  degradation ladder.
* **Graceful shutdown** — :func:`graceful_shutdown` installs
  SIGINT/SIGTERM handlers that flush every registered journal/cache
  (:func:`register_flushable`) and exit with the conventional
  ``128 + signum`` code, leaving a resumable ``--run-dir`` behind.

Everything here is deliberately *attribution-conservative*: when a pool
breaks with several tasks in flight, every in-flight task's death count
rises (the parent cannot know which one was fatal), so a poison task is
quarantined within two pool generations while innocent bystanders are
simply re-run.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import sys
import tempfile
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.runtime.failures import EVAL_TIMEOUT, WORKER_LOST

#: Downgrade-ledger texts (stable: tests and dedup key on them).
DOWNGRADE_POOL_REPLACED = "worker pool: worker lost; pool replaced"
DOWNGRADE_WATCHDOG_KILL = "worker pool: hung evaluation SIGKILLed by watchdog"
DOWNGRADE_SERIAL_FALLBACK = (
    "worker pool: replacement budget exhausted; remaining evaluations "
    "degraded to serial execution"
)
DOWNGRADE_POOL_UNAVAILABLE = (
    "worker pool: could not start; evaluations degraded to serial execution"
)


# -- heartbeats ----------------------------------------------------------


def heartbeat_start(hb_dir: str | os.PathLike | None, index: int) -> None:
    """Worker-side: mark task ``index`` as started (atomic tmp+rename).

    Written *before* any evaluation work — including the chaos
    kill hook — so the parent can always attribute a worker death to
    the task it was running.
    """
    if hb_dir is None:
        return
    path = Path(hb_dir) / f"{index}.hb"
    tmp = path.with_name(f".{index}.{os.getpid()}.tmp")
    try:
        tmp.write_text(
            json.dumps({"pid": os.getpid(), "start": time.monotonic()}),
            encoding="utf-8",
        )
        os.replace(tmp, path)
    except OSError:
        # A heartbeat is advisory; a worker that cannot write one still
        # evaluates (attribution just degrades to "no suspects").
        pass


def heartbeat_finish(hb_dir: str | os.PathLike | None, index: int) -> None:
    """Worker-side: clear task ``index``'s started marker."""
    if hb_dir is None:
        return
    try:
        (Path(hb_dir) / f"{index}.hb").unlink()
    except OSError:
        pass


def read_heartbeat(hb_dir: str | os.PathLike, index: int) -> dict | None:
    """Parent-side: the ``{"pid", "start"}`` marker of a started task."""
    path = Path(hb_dir) / f"{index}.hb"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return {"pid": int(data["pid"]), "start": float(data["start"])}
    except (OSError, ValueError, KeyError, TypeError):
        return None


# -- supervision ---------------------------------------------------------


@dataclass(frozen=True)
class LostTask:
    """Why one task was written off by the supervisor.

    Attributes:
        code: ``EVAL-TIMEOUT`` (watchdog kill) or ``WORKER-LOST``
            (poison-task quarantine) — stable failure-taxonomy codes.
        message: Human-readable detail for the failure record.
    """

    code: str
    message: str


@dataclass
class SupervisionResult:
    """Everything one supervised dispatch produced.

    Attributes:
        outcomes: Task index -> the worker function's return value.
        lost: Task index -> :class:`LostTask` for quarantined tasks
            (watchdog-killed or poison); disjoint from ``outcomes``.
        serial_fallback: Indices never completed because pool
            supervision gave up; the caller must run them serially.
        events: Downgrade-ledger lines (stable texts, deduplicated by
            the caller's :meth:`FailureLog.mark_downgrade`).
    """

    outcomes: dict[int, Any] = field(default_factory=dict)
    lost: dict[int, LostTask] = field(default_factory=dict)
    serial_fallback: list[int] = field(default_factory=list)
    events: list[str] = field(default_factory=list)


class SupervisedPool:
    """Run indexed tasks through a replaceable fork pool under a watchdog.

    Args:
        worker: Picklable ``(index, dispatch_attempt) -> outcome``
            callable executed in worker processes.  ``dispatch_attempt``
            counts prior pool generations that died while the task was
            in flight (0 on first dispatch).
        indices: Task indices to run, dispatched in the given order.
        keys: Optional ``index -> evaluation key`` map used only for
            failure messages.
        jobs: Worker-pool size (bounded by the number of unfinished
            tasks each generation).
        mp_context: Multiprocessing context (the engine passes the fork
            context so workers inherit the task registry).
        task_timeout_s: Wall-clock watchdog deadline per task; None
            disables the watchdog.
        poll_s: Parent poll interval for futures and heartbeats.
        max_task_deaths: Pool deaths a task may be implicated in before
            it is quarantined as ``WORKER-LOST``.
        max_pool_replacements: Pool rebuilds before the supervisor gives
            up and returns the remainder for serial execution.
    """

    def __init__(
        self,
        worker: Callable[[int, int], Any],
        indices: list[int],
        keys: dict[int, str] | None = None,
        *,
        jobs: int,
        mp_context,
        task_timeout_s: float | None = None,
        poll_s: float = 0.05,
        max_task_deaths: int = 2,
        max_pool_replacements: int = 3,
    ):
        self.worker = worker
        self.indices = list(indices)
        self.keys = dict(keys or {})
        self.jobs = max(1, jobs)
        self.mp_context = mp_context
        self.task_timeout_s = task_timeout_s
        self.poll_s = poll_s
        self.max_task_deaths = max_task_deaths
        self.max_pool_replacements = max_pool_replacements
        #: Scratch directory for heartbeat markers; the engine exposes
        #: it to workers through the fork-inherited batch state.
        self.heartbeat_dir = Path(tempfile.mkdtemp(prefix="repro-hb-"))

    def run(self) -> SupervisionResult:
        """Dispatch until every task completed, was quarantined, or the
        pool-replacement budget ran out.

        A pool breakage implicates every in-flight task (the parent
        cannot know which one was fatal), so implicated tasks are
        re-dispatched *in isolation* — one task per single-worker pool
        generation — before the clean remainder fans out again.  Only a
        task that dies alone twice is quarantined; innocent bystanders
        are re-run without ever reaching the death threshold, keeping
        quarantine decisions independent of scheduling races.
        """
        result = SupervisionResult()
        deaths = {i: 0 for i in self.indices}
        timed_out: set[int] = set()
        unfinished = list(self.indices)
        replacements = 0
        try:
            while unfinished:
                if replacements > self.max_pool_replacements:
                    result.events.append(DOWNGRADE_SERIAL_FALLBACK)
                    result.serial_fallback = unfinished
                    return result
                suspects = [i for i in unfinished if deaths[i] > 0]
                batch = suspects[:1] if suspects else unfinished
                broken = self._run_generation(batch, deaths, timed_out, result)
                if broken is None:  # pool could not start at all
                    result.events.append(DOWNGRADE_POOL_UNAVAILABLE)
                    result.serial_fallback = unfinished
                    return result
                if broken:
                    if not suspects:
                        replacements += 1
                    self._attribute_deaths(batch, deaths, timed_out, result)
                unfinished = [
                    i
                    for i in unfinished
                    if i not in result.outcomes and i not in result.lost
                ]
            return result
        finally:
            shutil.rmtree(self.heartbeat_dir, ignore_errors=True)

    # -- one pool generation --------------------------------------------

    def _run_generation(
        self,
        unfinished: list[int],
        deaths: dict[int, int],
        timed_out: set[int],
        result: SupervisionResult,
    ) -> bool | None:
        """Run one pool over ``unfinished``; True = pool broke, None =
        pool never started."""
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(unfinished)),
                mp_context=self.mp_context,
            )
            futures = {
                pool.submit(self.worker, i, deaths[i]): i for i in unfinished
            }
        except (OSError, RuntimeError, BrokenProcessPool):
            return None
        broken = False
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=self.poll_s, return_when=FIRST_COMPLETED
            )
            for future in done:
                index = futures[future]
                try:
                    result.outcomes[index] = future.result()
                except BrokenProcessPool:
                    broken = True
                except Exception:
                    # Executor infrastructure failure (a worker died
                    # while unpickling, the result queue tore): treat
                    # like a broken pool, not a task result.
                    broken = True
            if broken:
                break
            if self.task_timeout_s is not None and pending:
                self._kill_overdue(
                    {futures[f] for f in pending}, timed_out, result
                )
        if broken and pending:
            # Salvage results that finished before the pool broke —
            # anything already delivered is real; the rest re-dispatches.
            done, _ = wait(pending, timeout=0)
            for future in done:
                try:
                    result.outcomes[futures[future]] = future.result()
                except Exception:
                    pass
        pool.shutdown(wait=not broken, cancel_futures=True)
        return broken

    def _kill_overdue(
        self,
        in_flight: set[int],
        timed_out: set[int],
        result: SupervisionResult,
    ) -> None:
        """SIGKILL workers whose heartbeat outlived the task deadline.

        The kill breaks the pool; the main loop then attributes the
        death and records the task as ``EVAL-TIMEOUT`` (``timed_out``
        marks it so attribution picks the right code).
        """
        now = time.monotonic()
        for index in in_flight:
            if index in timed_out:
                continue
            beat = read_heartbeat(self.heartbeat_dir, index)
            if beat is None:
                continue
            if now - beat["start"] <= self.task_timeout_s:
                continue
            try:
                os.kill(beat["pid"], signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue  # finished (or reaped) between read and kill
            timed_out.add(index)
            if DOWNGRADE_WATCHDOG_KILL not in result.events:
                result.events.append(DOWNGRADE_WATCHDOG_KILL)

    def _attribute_deaths(
        self,
        unfinished: list[int],
        deaths: dict[int, int],
        timed_out: set[int],
        result: SupervisionResult,
    ) -> None:
        """Charge a pool breakage to the tasks that were in flight."""
        if DOWNGRADE_POOL_REPLACED not in result.events:
            result.events.append(DOWNGRADE_POOL_REPLACED)
        for index in unfinished:
            if index in result.outcomes or index in result.lost:
                continue
            started = read_heartbeat(self.heartbeat_dir, index) is not None
            if not started and index not in timed_out:
                continue
            heartbeat_finish(self.heartbeat_dir, index)
            deaths[index] += 1
            key = self.keys.get(index, f"task {index}")
            if index in timed_out:
                result.lost[index] = LostTask(
                    EVAL_TIMEOUT,
                    f"{key}: no result within {self.task_timeout_s:.3g}s; "
                    f"worker SIGKILLed by watchdog",
                )
            elif deaths[index] >= self.max_task_deaths:
                result.lost[index] = LostTask(
                    WORKER_LOST,
                    f"{key}: implicated in {deaths[index]} worker deaths; "
                    f"quarantined as a poison task",
                )


# -- graceful shutdown ---------------------------------------------------

_FLUSHABLES: "weakref.WeakSet" = weakref.WeakSet()


def register_flushable(obj: Any) -> None:
    """Register an object with a ``flush()`` method for signal flushing.

    Journals and caches self-register on construction; the weak set
    never keeps them alive, so a closed/collected journal simply drops
    out.
    """
    _FLUSHABLES.add(obj)


def flush_all() -> int:
    """Flush every registered journal/cache; returns how many flushed.

    Individual failures are swallowed — a shutdown handler must never
    raise past the signal frame.
    """
    flushed = 0
    for obj in list(_FLUSHABLES):
        try:
            obj.flush()
            flushed += 1
        except Exception:
            pass
    return flushed


@contextmanager
def graceful_shutdown(
    run_dir: str | os.PathLike | None = None,
    signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
):
    """Install SIGINT/SIGTERM handlers that flush and exit resumable.

    On signal, every registered journal/cache is flushed, a resume hint
    naming ``run_dir`` is printed to stderr, and the process exits with
    the conventional ``128 + signum`` code via :class:`SystemExit`
    (so ``finally`` blocks and context managers still unwind).  Outside
    the main thread — or on platforms without these signals — the
    context is a transparent no-op.
    """

    def _handler(signum, frame):
        flush_all()
        if run_dir is not None:
            print(
                f"\ninterrupted by signal {signum}: run state flushed; "
                f"resume with --run-dir {run_dir} --resume",
                file=sys.stderr,
            )
        raise SystemExit(128 + signum)

    previous: dict[int, Any] = {}
    for sig in signals:
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):
            break  # not the main thread / unsupported signal
    try:
        yield
    finally:
        for sig, prev in previous.items():
            signal.signal(sig, prev)
