"""A small but complete circuit simulator (MNA).

This package replaces the commercial SPICE engine the paper uses.  It
provides:

* a netlist data model (:mod:`repro.spice.netlist`,
  :mod:`repro.spice.elements`, :mod:`repro.spice.waveforms`),
* modified nodal analysis assembly (:mod:`repro.spice.mna`),
* DC operating point with gmin and source stepping (:mod:`repro.spice.dc`),
* small-signal AC sweeps (:mod:`repro.spice.ac`),
* transient analysis with Newton per step (:mod:`repro.spice.tran`),
* waveform measurements: gain, UGF, phase margin, 3dB bandwidth, delays,
  power, oscillation frequency (:mod:`repro.spice.measure`),
* the testbench abstraction used by primitive metric evaluation
  (:mod:`repro.spice.testbench`).

Primitive-level simulations are tiny (a handful of transistors plus a
parasitic network), which is exactly the regime the paper exploits: each
simulation costs milliseconds here, seconds in the paper.
"""

from repro.spice import kernel
from repro.spice.kernel import (
    SolverStats,
    SystemTemplate,
    backend_for,
    resolve_solver,
    set_default_solver,
)
from repro.spice.netlist import Circuit
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.waveforms import Dc, Pulse, Pwl, Sin
from repro.spice.mna import CompiledCircuit
from repro.spice.dc import OperatingPoint, dc_operating_point, dc_sweep
from repro.spice.ac import AcResult, ac_analysis
from repro.spice.tran import TranResult, transient
from repro.spice import measure
from repro.spice.montecarlo import MonteCarloResult, run_monte_carlo
from repro.spice.testbench import Testbench

__all__ = [
    "kernel",
    "SolverStats",
    "SystemTemplate",
    "backend_for",
    "resolve_solver",
    "set_default_solver",
    "Circuit",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Mosfet",
    "Dc",
    "Pulse",
    "Sin",
    "Pwl",
    "CompiledCircuit",
    "OperatingPoint",
    "dc_operating_point",
    "dc_sweep",
    "AcResult",
    "ac_analysis",
    "TranResult",
    "transient",
    "measure",
    "MonteCarloResult",
    "run_monte_carlo",
    "Testbench",
]
