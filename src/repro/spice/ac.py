"""Small-signal AC analysis.

The circuit is linearized at a DC operating point: MOSFETs contribute
their ``gm``/``gds`` as conductances and their Meyer capacitances to the
susceptance matrix; inductors contribute ``jwL`` branch impedances.  The
complex system ``(G + jwC) x = b`` is solved at each frequency of a
logarithmic sweep.

Both the conductance part ``G`` and the susceptance part (capacitances
plus the ``-L`` inductor branch entries) are frequency independent, so
they are assembled exactly once per sweep; each frequency point only
forms the ``G + jω·S`` combination — a vectorized array expression on
the dense backend, a data-vector combination on the shared CSC pattern
on the sparse one — and solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError, SimulationError, SingularMatrixError
from repro.spice import kernel
from repro.spice.dc import OperatingPoint
from repro.spice.mna import CompiledCircuit, solve_mna


@dataclass
class AcResult:
    """Result of an AC sweep.

    Attributes:
        compiled: The compiled circuit.
        freqs: Sweep frequencies (Hz).
        solutions: Complex solution matrix, shape (nfreq, size).
    """

    compiled: CompiledCircuit
    freqs: np.ndarray
    solutions: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage across the sweep (zeros for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.solutions[:, idx]

    def i(self, branch_name: str) -> np.ndarray:
        """Complex branch current (voltage source / VCVS / inductor)."""
        try:
            idx = self.compiled.branch_index[branch_name]
        except KeyError:
            raise NetlistError(f"{branch_name!r} is not a branch element") from None
        return self.solutions[:, idx]

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        """Complex differential voltage ``v(plus) - v(minus)``."""
        return self.v(plus) - self.v(minus)


def _ac_template(compiled: CompiledCircuit) -> "kernel.SystemTemplate":
    """The sparse AC system template (cached on the compiled circuit).

    Static part: linear conductances and all branch topology rows.
    Dynamic slots, in order: MOSFET small-signal conductances (fixed per
    sweep, set by the operating point) and the susceptance pattern —
    element capacitors, MOSFET capacitances, and the inductor branch
    diagonal (scaled by ``jω`` per frequency point).
    """

    def build() -> "kernel.SystemTemplate":
        mos_rows, mos_cols = compiled.mos_conductance_pattern()
        cap_rows, cap_cols = compiled.capacitor_pattern()
        mc_rows, mc_cols = compiled.mos_capacitance_pattern()
        ind = compiled.inductor_branch_indices()
        return kernel.SystemTemplate(
            compiled.size,
            compiled.static_conductance_triplets(),
            np.concatenate([mos_rows, cap_rows, mc_rows, ind]),
            np.concatenate([mos_cols, cap_cols, mc_cols, ind]),
            dtype=complex,
            backend=kernel.SPARSE,
        )

    return compiled.kernel_template(("ac", kernel.SPARSE), build)


def _susceptance_values(
    compiled: CompiledCircuit, op: OperatingPoint
) -> np.ndarray:
    """Frequency-independent susceptance values (multiply by ``jω``):
    element capacitances, MOSFET capacitances at the bias point, and the
    ``-L`` inductor branch entries (``a[br, br] -= jωL``)."""
    return np.concatenate(
        [
            compiled.capacitor_values(),
            compiled.mos_capacitance_values(op.mos_eval),
            -compiled.inductor_inductances(),
        ]
    )


def _dense_ac_parts(
    compiled: CompiledCircuit, op: OperatingPoint
) -> tuple[np.ndarray, np.ndarray]:
    """Dense once-per-sweep G/C split: the conductance core and the
    unscaled susceptance core (each frequency forms ``G + jω·S``)."""
    size = compiled.size
    g = compiled.conductance_linear().astype(complex)
    if op.mos_eval is not None:
        compiled.stamp_mosfets_ac(g, op.mos_eval)
    compiled.stamp_inductors_dc(g)  # the constant topology rows

    sus = compiled.capacitance_linear().astype(complex)
    sus += compiled.mos_capacitance(op.mos_eval, dtype=complex)
    ind = compiled.inductor_branch_indices()
    if len(ind):
        sus[ind, ind] -= compiled.inductor_inductances()
    return g[:size, :size], sus[:size, :size]


def ac_analysis(
    compiled: CompiledCircuit,
    op: OperatingPoint,
    f_start: float = 1.0e3,
    f_stop: float = 1.0e11,
    points_per_decade: int = 10,
    solver: str | None = None,
) -> AcResult:
    """Run a logarithmic AC sweep around the given operating point."""
    if f_start <= 0 or f_stop <= f_start:
        raise SimulationError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise SimulationError("points_per_decade must be >= 1")

    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    freqs = np.logspace(np.log10(f_start), np.log10(f_stop), n_points)

    stats = kernel.active()
    if stats is not None:
        stats.count_analysis("ac")
    backend = kernel.backend_for(compiled.size, solver)
    size = compiled.size
    rhs = compiled.ac_source_rhs()
    solutions = np.zeros((len(freqs), size), dtype=complex)

    if backend == kernel.SPARSE:
        template = _ac_template(compiled)
        mos_vals = compiled.mos_conductance_values(op.mos_eval)
        sus_vals = _susceptance_values(compiled, op)
        # Two data vectors on the shared CSC pattern, built once: the
        # full conductance part and the unscaled susceptance part.
        g_data = template.static_data + template.dyn_data(
            np.concatenate([mos_vals, np.zeros(len(sus_vals))])
        )
        sus_data = template.dyn_data(
            np.concatenate([np.zeros(len(mos_vals)), sus_vals])
        )
        for k, freq in enumerate(freqs):
            omega = 2.0 * np.pi * freq
            try:
                solutions[k], _recovered = template.solve_data(
                    g_data + (1j * omega) * sus_data, rhs
                )
            except SingularMatrixError as exc:
                raise SingularMatrixError(
                    f"AC solve failed at {freq:.3g} Hz: {exc}"
                ) from exc
        return AcResult(compiled=compiled, freqs=freqs, solutions=solutions)

    # Dense path: both parts assembled once, sliced to the core.
    g_core, sus_core = _dense_ac_parts(compiled, op)
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        try:
            solutions[k], _recovered = solve_mna(
                g_core + (1j * omega) * sus_core, rhs[:size]
            )
        except SingularMatrixError as exc:
            raise SingularMatrixError(
                f"AC solve failed at {freq:.3g} Hz: {exc}"
            ) from exc

    return AcResult(compiled=compiled, freqs=freqs, solutions=solutions)


def ac_analysis_many(
    compileds: list[CompiledCircuit],
    ops: list[OperatingPoint],
    f_start: float = 1.0e3,
    f_stop: float = 1.0e11,
    points_per_decade: int = 10,
    solver: str | None = None,
) -> list:
    """Batched :func:`ac_analysis` over many (circuit, bias) pairs.

    Dense-backend members of equal size are stacked into one
    ``(K, nfreq, N, N)`` array and solved with a single batched LAPACK
    call — the once-per-sweep G/C split is still assembled per member,
    only the frequency loop is fused — which is bitwise identical to the
    serial per-frequency solves.  Sparse-backend members (and any member
    whose stacked slice comes back singular or non-finite) run through
    the serial :func:`ac_analysis` unchanged.

    Failures are captured per member: the returned list holds an
    :class:`AcResult` or the exception the serial call would have raised
    (:class:`~repro.errors.SingularMatrixError`).
    """
    results: list = [None] * len(compileds)
    if not compileds:
        return results

    def serial(i: int) -> None:
        try:
            results[i] = ac_analysis(
                compileds[i], ops[i], f_start, f_stop,
                points_per_decade, solver,
            )
        except SingularMatrixError as exc:
            results[i] = exc

    groups: dict[int, list[int]] = {}
    for i, compiled in enumerate(compileds):
        if kernel.backend_for(compiled.size, solver) == kernel.SPARSE:
            serial(i)
        else:
            groups.setdefault(compiled.size, []).append(i)

    if f_start <= 0 or f_stop <= f_start:
        raise SimulationError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise SimulationError("points_per_decade must be >= 1")
    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    freqs = np.logspace(np.log10(f_start), np.log10(f_stop), n_points)
    omegas = 2.0 * np.pi * freqs
    stats = kernel.active()

    for size in sorted(groups):
        members = groups[size]
        if stats is not None:
            for _ in members:
                stats.count_analysis("ac")
        g = np.stack([_dense_ac_parts(compileds[i], ops[i])[0] for i in members])
        sus = np.stack(
            [_dense_ac_parts(compileds[i], ops[i])[1] for i in members]
        )
        rhs = np.stack([compileds[i].ac_source_rhs()[:size] for i in members])
        # Chunk over members so the (K, F, N, N) stack stays bounded.
        bytes_per_member = len(freqs) * size * size * 16
        chunk = max(1, int(128e6 // max(1, bytes_per_member)))
        for start in range(0, len(members), chunk):
            part = members[start : start + chunk]
            gk = g[start : start + chunk]
            sk = sus[start : start + chunk]
            bk = rhs[start : start + chunk]
            if stats is not None:
                t0 = kernel._clock()
            a = (
                gk[:, None, :, :]
                + (1j * omegas)[None, :, None, None] * sk[:, None, :, :]
            )
            try:
                x = np.linalg.solve(a, bk[:, None, :, None])[..., 0]
                finite = np.all(np.isfinite(x), axis=(1, 2))
            except np.linalg.LinAlgError:
                x = None
                finite = np.zeros(len(part), dtype=bool)
            clean = int(np.count_nonzero(finite))
            if stats is not None:
                stats.solve_s += kernel._clock() - t0
                stats.solves += clean * len(freqs)
                stats.backends[kernel.DENSE] = (
                    stats.backends.get(kernel.DENSE, 0) + clean * len(freqs)
                )
                stats.batched_solves += 1
                stats.batch_members += len(part) * len(freqs)
                stats.batch_fallbacks += (len(part) - clean) * len(freqs)
            for j, i in enumerate(part):
                if finite[j]:
                    results[i] = AcResult(
                        compiled=compileds[i], freqs=freqs, solutions=x[j]
                    )
                else:
                    serial(i)
    return results
