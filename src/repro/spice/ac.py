"""Small-signal AC analysis.

The circuit is linearized at a DC operating point: MOSFETs contribute
their ``gm``/``gds`` as conductances and their Meyer capacitances to the
susceptance matrix; inductors contribute ``jwL`` branch impedances.  The
complex system ``(G + jwC) x = b`` is solved at each frequency of a
logarithmic sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError, SimulationError, SingularMatrixError
from repro.spice.dc import OperatingPoint
from repro.spice.mna import CompiledCircuit, solve_mna


@dataclass
class AcResult:
    """Result of an AC sweep.

    Attributes:
        compiled: The compiled circuit.
        freqs: Sweep frequencies (Hz).
        solutions: Complex solution matrix, shape (nfreq, size).
    """

    compiled: CompiledCircuit
    freqs: np.ndarray
    solutions: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage across the sweep (zeros for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.solutions[:, idx]

    def i(self, branch_name: str) -> np.ndarray:
        """Complex branch current (voltage source / VCVS / inductor)."""
        try:
            idx = self.compiled.branch_index[branch_name]
        except KeyError:
            raise NetlistError(f"{branch_name!r} is not a branch element") from None
        return self.solutions[:, idx]

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        """Complex differential voltage ``v(plus) - v(minus)``."""
        return self.v(plus) - self.v(minus)


def ac_analysis(
    compiled: CompiledCircuit,
    op: OperatingPoint,
    f_start: float = 1.0e3,
    f_stop: float = 1.0e11,
    points_per_decade: int = 10,
) -> AcResult:
    """Run a logarithmic AC sweep around the given operating point."""
    if f_start <= 0 or f_stop <= f_start:
        raise SimulationError("need 0 < f_start < f_stop")
    if points_per_decade < 1:
        raise SimulationError("points_per_decade must be >= 1")

    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    freqs = np.logspace(np.log10(f_start), np.log10(f_stop), n_points)

    size = compiled.size
    g = compiled.conductance_linear().astype(complex)
    if op.mos_eval is not None:
        compiled.stamp_mosfets_ac(g, op.mos_eval)

    c = compiled.capacitance_linear().astype(complex)
    c += compiled.mos_capacitance(op.mos_eval, dtype=complex)

    rhs = compiled.ac_source_rhs()

    # Inductor branch rows: v_a - v_b - jwL * i = 0 (the jwL part is
    # frequency dependent; the topology entries are constant).
    ind_rows: list[tuple[int, int, int, float]] = []
    for ind in compiled.inductors:
        br = compiled.branch_index[ind.name]
        na, nb = compiled.index_of(ind.a), compiled.index_of(ind.b)
        g[na, br] += 1.0
        g[nb, br] -= 1.0
        g[br, na] += 1.0
        g[br, nb] -= 1.0
        ind_rows.append((br, na, nb, ind.value))

    solutions = np.zeros((len(freqs), size), dtype=complex)
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        a = g + 1j * omega * c
        for br, _na, _nb, value in ind_rows:
            a[br, br] -= 1j * omega * value
        try:
            solutions[k], _recovered = solve_mna(a[:size, :size], rhs[:size])
        except SingularMatrixError as exc:
            raise SingularMatrixError(
                f"AC solve failed at {freq:.3g} Hz: {exc}"
            ) from exc

    return AcResult(compiled=compiled, freqs=freqs, solutions=solutions)
