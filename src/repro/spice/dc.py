"""DC operating-point analysis and DC sweeps.

The solver is damped Newton-Raphson on the MNA system with two standard
homotopies layered on top:

1. **gmin stepping** — a shunt conductance from every node to ground is
   swept from large to negligible, each solve warm-starting the next;
2. **source stepping** — if gmin stepping fails, all independent sources
   are ramped from 10% to 100%.

``force`` lets callers pin chosen nodes near given voltages through a
large conductance during the solve — the *nodeset* mechanism used to break
the symmetry of oscillators before transient analysis.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.devices.mosfet import MosEval
from repro.errors import ConvergenceError, NetlistError, SingularMatrixError
from repro.runtime import context as eval_context
from repro.runtime import faults
from repro.spice import kernel
from repro.spice.mna import CompiledCircuit

#: Maximum node-voltage update per Newton iteration (V).
VOLTAGE_LIMIT = 0.3

#: Convergence tolerance on node voltages (V).
VNTOL = 1.0e-9

#: Relative convergence tolerance.
RELTOL = 1.0e-6

#: Conductance used to pin nodes listed in ``force`` (S).
FORCE_CONDUCTANCE = 1.0e3

#: Residual gmin left on every node for numerical robustness (S).
GMIN_FLOOR = 1.0e-12


@dataclass
class OperatingPoint:
    """Converged DC solution.

    Attributes:
        compiled: The compiled circuit the solution belongs to.
        x: Solution vector (node voltages then branch currents).
        mos_eval: Vectorized MOSFET evaluation at the solution (or None).
        recovery: Recovery paths the solve needed, in order — empty for
            a plain Newton solve, otherwise tags such as
            ``"gmin-stepping"``, ``"source-stepping"`` and
            ``"tikhonov"`` (singular-matrix fallback).
    """

    compiled: CompiledCircuit
    x: np.ndarray
    mos_eval: MosEval | None
    recovery: tuple[str, ...] = field(default=())

    def v(self, node: str) -> float:
        """Voltage of ``node`` (0.0 for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return 0.0
        return float(self.x[idx])

    def i(self, branch_name: str) -> float:
        """Branch current of a voltage source, VCVS or inductor.

        For a voltage source the current flows from its positive terminal
        through the source to its negative terminal (SPICE convention).
        """
        try:
            return float(self.x[self.compiled.branch_index[branch_name]])
        except KeyError:
            raise NetlistError(
                f"{branch_name!r} is not a branch element (vsource/vcvs/inductor)"
            ) from None

    def mos(self, name: str) -> dict[str, float]:
        """Per-device operating point (id, gm, gds, capacitances)."""
        if self.mos_eval is None:
            raise NetlistError("circuit has no MOSFETs")
        return self.compiled.mos_eval_by_name(self.mos_eval, name)

    def net_currents(self) -> dict[str, float]:
        """Worst-case DC current each net must carry (A), per net.

        Folds every MOSFET's drain current onto its drain and source
        nets (``id > 0`` flows drain -> source inside the device, so it
        leaves the net at the drain and enters it at the source) and
        returns ``max(total inflow, total outflow)`` per net — the
        static bound on the current the net's metal mesh must carry,
        however the flow actually closes (through a port, a supply or
        another device).  Gates and bulks carry no DC current.

        This is the branch-current source the static EM/IR audit
        (:mod:`repro.verify.emag`) consumes when an operating point is
        available; nets are sorted so the result is deterministic.
        """
        if self.mos_eval is None:
            return {}
        inflow: dict[str, float] = {}
        outflow: dict[str, float] = {}
        for elem in self.compiled.mos_elements:
            drain_amps = self.mos(elem.name)["id"]
            for net, flow in ((elem.d, -drain_amps), (elem.s, drain_amps)):
                if flow >= 0.0:
                    inflow[net] = inflow.get(net, 0.0) + flow
                else:
                    outflow[net] = outflow.get(net, 0.0) - flow
        return {
            net: max(inflow.get(net, 0.0), outflow.get(net, 0.0))
            for net in sorted(set(inflow) | set(outflow))
        }


def _dc_template(
    compiled: CompiledCircuit, backend: str
) -> "kernel.SystemTemplate":
    """The DC Newton system template (cached on the compiled circuit).

    Static part: linear conductances plus all branch topology rows
    (inductors are DC shorts, so their topology rows are the whole
    stamp).  Dynamic slots: the node diagonal (gmin stepping and
    ``force`` pins) followed by the MOSFET companion conductances.
    """

    def build() -> "kernel.SystemTemplate":
        diag = compiled.node_diag_indices()
        mos_rows, mos_cols = compiled.mos_conductance_pattern()
        return kernel.SystemTemplate(
            compiled.size,
            compiled.static_conductance_triplets(),
            np.concatenate([diag, mos_rows]),
            np.concatenate([diag, mos_cols]),
            dtype=float,
            backend=backend,
        )

    return compiled.kernel_template(("dc", backend), build)


def _newton_solve(
    compiled: CompiledCircuit,
    template: "kernel.SystemTemplate",
    x0: np.ndarray,
    gmin: float,
    source_scale: float,
    force: dict[str, float] | None,
    max_iterations: int | None = None,
    recovery: set[str] | None = None,
) -> np.ndarray | None:
    """One damped Newton solve; returns the solution or None.

    ``recovery`` (when given) collects the tags of any singular-matrix
    fallbacks used along the way.
    """
    if max_iterations is None:
        # Large circuits under heavy damping need more iterations: the
        # voltage limiter advances at most VOLTAGE_LIMIT per step.
        max_iterations = max(120, 2 * compiled.num_nodes)
    x = x0.copy()
    rhs_src = compiled.source_rhs(t=None, scale=source_scale)
    stats = kernel.active()

    diag_vals = np.full(compiled.num_nodes, gmin + GMIN_FLOOR)
    if force:
        for node, value in force.items():
            idx = compiled.index_of(node)
            if idx != compiled.ghost:
                diag_vals[idx] += FORCE_CONDUCTANCE
                # Scale the pinned target with the sources so source
                # stepping ramps a consistent bias.
                rhs_src[idx] += FORCE_CONDUCTANCE * value * source_scale

    limit = VOLTAGE_LIMIT
    prev_dv: np.ndarray | None = None
    for _ in range(max_iterations):
        if stats is not None:
            stats.newton_iterations += 1
        rhs = rhs_src.copy()
        ev = compiled.eval_mosfets(x)
        if ev is not None:
            compiled.stamp_mos_rhs(rhs, ev, x)

        try:
            x_new, recovered = template.solve(
                np.concatenate([diag_vals, compiled.mos_conductance_values(ev)]),
                rhs,
            )
        except SingularMatrixError:
            # Truly unsolvable step: bail out so the gmin/source-stepping
            # homotopies (which regularize the physics, not the algebra)
            # get their chance.
            return None
        if recovered is not None and recovery is not None:
            recovery.add(recovered)

        delta = x_new - x
        dv = delta[: compiled.num_nodes]
        max_dv = np.max(np.abs(dv)) if len(dv) else 0.0

        # Oscillation-aware damping: when the update direction flips
        # (Newton cycling between basins, e.g. a near-metastable latch),
        # shrink the step limit so the iteration settles into one basin.
        if prev_dv is not None and len(dv) and float(np.dot(dv, prev_dv)) < 0.0:
            limit = max(0.01, limit * 0.6)
        else:
            limit = min(VOLTAGE_LIMIT, limit * 1.3)
        prev_dv = dv.copy()

        if max_dv > limit:
            delta = delta * (limit / max_dv)
            x = x + delta
            continue
        x = x_new
        if max_dv < VNTOL + RELTOL * np.max(np.abs(x[: compiled.num_nodes]), initial=0.0):
            return x
    return None


def dc_operating_point(
    compiled: CompiledCircuit,
    x0: np.ndarray | None = None,
    force: dict[str, float] | None = None,
    solver: str | None = None,
) -> OperatingPoint:
    """Compute the DC operating point.

    Args:
        compiled: The compiled circuit.
        x0: Optional initial guess (warm start).
        force: Optional nodeset, mapping node names to voltages that are
            softly pinned during the solve (used to bias oscillators off
            their metastable point).
        solver: Optional solver-backend override (``"dense"``/
            ``"sparse"``/``"auto"``); defaults to the process-wide
            choice (``--solver`` / ``REPRO_SOLVER`` / auto by size).

    Raises:
        ConvergenceError: If Newton fails even after gmin and source
            stepping (failure code ``CONV-DC``).
        SingularMatrixError: Only via fault injection; organic singular
            steps are absorbed by the Tikhonov fallback or the
            homotopies.
    """
    injector = faults.active()
    if injector is not None:
        injector.check_dc(compiled.circuit.name)

    stats = kernel.active()
    if stats is not None:
        stats.count_analysis("dc")
    backend = kernel.backend_for(compiled.size, solver)
    template = _dc_template(compiled, backend)

    x = x0.copy() if x0 is not None else np.zeros(compiled.size)
    x = _perturb_retry_guess(x)
    recovery: set[str] = set()

    # Plain Newton first: cheap and usually sufficient with a warm start.
    solution = _newton_solve(
        compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
        recovery=recovery,
    )
    if solution is not None:
        return _finish(compiled, solution, recovery)

    # gmin stepping.
    recovery.add("gmin-stepping")
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        solution = _newton_solve(
            compiled, template, x, gmin=gmin, source_scale=1.0, force=force,
            recovery=recovery,
        )
        if solution is None:
            break
        x = solution
    else:
        solution = _newton_solve(
            compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
            recovery=recovery,
        )
        if solution is not None:
            return _finish(compiled, solution, recovery)

    # Source stepping fallback, with a supporting gmin that relaxes as
    # the sources ramp up.
    recovery.add("source-stepping")
    x = np.zeros(compiled.size)
    for scale in np.linspace(0.1, 1.0, 10):
        stepped = _newton_solve(
            compiled,
            template,
            x,
            gmin=1e-9 * (1.0 - scale) + 1e-12,
            source_scale=float(scale),
            force=force,
            recovery=recovery,
        )
        if stepped is None:
            raise ConvergenceError(
                f"DC operating point failed for circuit "
                f"{compiled.circuit.name!r} at source scale {scale:.2f}",
                code="CONV-DC",
            )
        x = stepped
    final = _newton_solve(
        compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
        recovery=recovery,
    )
    if final is None:
        raise ConvergenceError(
            f"DC operating point failed for circuit "
            f"{compiled.circuit.name!r} after source stepping",
            code="CONV-DC",
        )
    return _finish(compiled, final, recovery)


#: Order in which recovery tags are reported on an OperatingPoint.
_RECOVERY_ORDER = ("gmin-stepping", "source-stepping", "tikhonov")


def _perturb_retry_guess(x: np.ndarray) -> np.ndarray:
    """Perturb the initial guess on retry attempts.

    The evaluation runtime sets a nonzero perturbation amplitude on
    retries; a deterministic per-(key, attempt) perturbation keeps a
    retried solve from replaying the exact failing trajectory while
    remaining reproducible.
    """
    ctx = eval_context.current()
    if ctx is None or ctx.perturbation <= 0.0 or not len(x):
        return x
    seed = zlib.crc32(f"{ctx.key}|{ctx.attempt}".encode())
    rng = np.random.default_rng(seed)
    return x + ctx.perturbation * rng.standard_normal(len(x))


def _finish(
    compiled: CompiledCircuit, x: np.ndarray, recovery: set[str] | None = None
) -> OperatingPoint:
    tags = tuple(
        tag for tag in _RECOVERY_ORDER if recovery and tag in recovery
    )
    return OperatingPoint(
        compiled=compiled,
        x=x,
        mos_eval=compiled.eval_mosfets(x),
        recovery=tags,
    )


def dc_sweep(
    compiled: CompiledCircuit,
    source_name: str,
    values: np.ndarray,
) -> list[OperatingPoint]:
    """Sweep the DC level of one source, warm-starting each point.

    The named element must be a :class:`VoltageSource` or
    :class:`CurrentSource`; its waveform is replaced by a DC level and the
    circuit recompiled per sweep point (compilation is linear in element
    count, so this stays cheap for primitive-scale circuits).
    """
    from dataclasses import replace

    from repro.spice.elements import CurrentSource, VoltageSource
    from repro.spice.waveforms import Dc

    circuit = compiled.circuit
    element = circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise NetlistError(f"{source_name!r} is not an independent source")

    results: list[OperatingPoint] = []
    x_prev: np.ndarray | None = None
    try:
        for value in values:
            circuit.replace_element(
                source_name, replace(element, waveform=Dc(float(value)))
            )
            point_compiled = CompiledCircuit(circuit, compiled.rules)
            point = dc_operating_point(point_compiled, x0=x_prev)
            results.append(point)
            x_prev = point.x
    finally:
        circuit.replace_element(source_name, element)
    return results
