"""DC operating-point analysis and DC sweeps.

The solver is damped Newton-Raphson on the MNA system with two standard
homotopies layered on top:

1. **gmin stepping** — a shunt conductance from every node to ground is
   swept from large to negligible, each solve warm-starting the next;
2. **source stepping** — if gmin stepping fails, all independent sources
   are ramped from 10% to 100%.

``force`` lets callers pin chosen nodes near given voltages through a
large conductance during the solve — the *nodeset* mechanism used to break
the symmetry of oscillators before transient analysis.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.devices.mosfet import MosEval, evaluate_mosfets
from repro.errors import ConvergenceError, NetlistError, SingularMatrixError
from repro.runtime import context as eval_context
from repro.runtime import faults
from repro.spice import kernel
from repro.spice.mna import CompiledCircuit

#: Maximum node-voltage update per Newton iteration (V).
VOLTAGE_LIMIT = 0.3

#: Convergence tolerance on node voltages (V).
VNTOL = 1.0e-9

#: Relative convergence tolerance.
RELTOL = 1.0e-6

#: Conductance used to pin nodes listed in ``force`` (S).
FORCE_CONDUCTANCE = 1.0e3

#: Residual gmin left on every node for numerical robustness (S).
GMIN_FLOOR = 1.0e-12


@dataclass
class OperatingPoint:
    """Converged DC solution.

    Attributes:
        compiled: The compiled circuit the solution belongs to.
        x: Solution vector (node voltages then branch currents).
        mos_eval: Vectorized MOSFET evaluation at the solution (or None).
        recovery: Recovery paths the solve needed, in order — empty for
            a plain Newton solve, otherwise tags such as
            ``"gmin-stepping"``, ``"source-stepping"`` and
            ``"tikhonov"`` (singular-matrix fallback).
    """

    compiled: CompiledCircuit
    x: np.ndarray
    mos_eval: MosEval | None
    recovery: tuple[str, ...] = field(default=())

    def v(self, node: str) -> float:
        """Voltage of ``node`` (0.0 for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return 0.0
        return float(self.x[idx])

    def i(self, branch_name: str) -> float:
        """Branch current of a voltage source, VCVS or inductor.

        For a voltage source the current flows from its positive terminal
        through the source to its negative terminal (SPICE convention).
        """
        try:
            return float(self.x[self.compiled.branch_index[branch_name]])
        except KeyError:
            raise NetlistError(
                f"{branch_name!r} is not a branch element (vsource/vcvs/inductor)"
            ) from None

    def mos(self, name: str) -> dict[str, float]:
        """Per-device operating point (id, gm, gds, capacitances)."""
        if self.mos_eval is None:
            raise NetlistError("circuit has no MOSFETs")
        return self.compiled.mos_eval_by_name(self.mos_eval, name)

    def net_currents(self) -> dict[str, float]:
        """Worst-case DC current each net must carry (A), per net.

        Folds every MOSFET's drain current onto its drain and source
        nets (``id > 0`` flows drain -> source inside the device, so it
        leaves the net at the drain and enters it at the source) and
        returns ``max(total inflow, total outflow)`` per net — the
        static bound on the current the net's metal mesh must carry,
        however the flow actually closes (through a port, a supply or
        another device).  Gates and bulks carry no DC current.

        This is the branch-current source the static EM/IR audit
        (:mod:`repro.verify.emag`) consumes when an operating point is
        available; nets are sorted so the result is deterministic.
        """
        if self.mos_eval is None:
            return {}
        inflow: dict[str, float] = {}
        outflow: dict[str, float] = {}
        for elem in self.compiled.mos_elements:
            drain_amps = self.mos(elem.name)["id"]
            for net, flow in ((elem.d, -drain_amps), (elem.s, drain_amps)):
                if flow >= 0.0:
                    inflow[net] = inflow.get(net, 0.0) + flow
                else:
                    outflow[net] = outflow.get(net, 0.0) - flow
        return {
            net: max(inflow.get(net, 0.0), outflow.get(net, 0.0))
            for net in sorted(set(inflow) | set(outflow))
        }


def _dc_template(
    compiled: CompiledCircuit, backend: str
) -> "kernel.SystemTemplate":
    """The DC Newton system template (cached on the compiled circuit).

    Static part: linear conductances plus all branch topology rows
    (inductors are DC shorts, so their topology rows are the whole
    stamp).  Dynamic slots: the node diagonal (gmin stepping and
    ``force`` pins) followed by the MOSFET companion conductances.
    """

    def build() -> "kernel.SystemTemplate":
        diag = compiled.node_diag_indices()
        mos_rows, mos_cols = compiled.mos_conductance_pattern()
        return kernel.SystemTemplate(
            compiled.size,
            compiled.static_conductance_triplets(),
            np.concatenate([diag, mos_rows]),
            np.concatenate([diag, mos_cols]),
            dtype=float,
            backend=backend,
        )

    return compiled.kernel_template(("dc", backend), build)


def _effective_max_iterations(
    compiled: CompiledCircuit, explicit: int | None
) -> int:
    """The Newton iteration budget for one solve.

    Priority: an explicit ``max_iterations`` argument, then the
    :class:`~repro.runtime.policy.RetryPolicy` budget threaded through
    the evaluation context, then the size heuristic.  A policy budget is
    honored *exactly* — including 0 and values below the heuristic's
    floor of 120 — so deadline-driven runs that shrink the budget
    actually fail fast instead of being silently clamped back up
    (see docs/robustness.md).
    """
    if explicit is not None:
        return explicit
    ctx = eval_context.current()
    if ctx is not None and ctx.newton_max_iterations is not None:
        return max(0, int(ctx.newton_max_iterations))
    # Large circuits under heavy damping need more iterations: the
    # voltage limiter advances at most VOLTAGE_LIMIT per step.
    return max(120, 2 * compiled.num_nodes)


def _newton_solve(
    compiled: CompiledCircuit,
    template: "kernel.SystemTemplate",
    x0: np.ndarray,
    gmin: float,
    source_scale: float,
    force: dict[str, float] | None,
    max_iterations: int | None = None,
    recovery: set[str] | None = None,
) -> np.ndarray | None:
    """One damped Newton solve; returns the solution or None.

    ``recovery`` (when given) collects the tags of any singular-matrix
    fallbacks used along the way.
    """
    max_iterations = _effective_max_iterations(compiled, max_iterations)
    x = x0.copy()
    rhs_src = compiled.source_rhs(t=None, scale=source_scale)
    stats = kernel.active()

    diag_vals = np.full(compiled.num_nodes, gmin + GMIN_FLOOR)
    if force:
        for node, value in force.items():
            idx = compiled.index_of(node)
            if idx != compiled.ghost:
                diag_vals[idx] += FORCE_CONDUCTANCE
                # Scale the pinned target with the sources so source
                # stepping ramps a consistent bias.
                rhs_src[idx] += FORCE_CONDUCTANCE * value * source_scale

    limit = VOLTAGE_LIMIT
    prev_dv: np.ndarray | None = None
    for _ in range(max_iterations):
        if stats is not None:
            stats.newton_iterations += 1
        rhs = rhs_src.copy()
        ev = compiled.eval_mosfets(x)
        if ev is not None:
            compiled.stamp_mos_rhs(rhs, ev, x)

        try:
            x_new, recovered = template.solve(
                np.concatenate([diag_vals, compiled.mos_conductance_values(ev)]),
                rhs,
            )
        except SingularMatrixError:
            # Truly unsolvable step: bail out so the gmin/source-stepping
            # homotopies (which regularize the physics, not the algebra)
            # get their chance.
            return None
        if recovered is not None and recovery is not None:
            recovery.add(recovered)

        delta = x_new - x
        dv = delta[: compiled.num_nodes]
        max_dv = np.max(np.abs(dv)) if len(dv) else 0.0

        # Oscillation-aware damping: when the update direction flips
        # (Newton cycling between basins, e.g. a near-metastable latch),
        # shrink the step limit so the iteration settles into one basin.
        if prev_dv is not None and len(dv) and float(np.dot(dv, prev_dv)) < 0.0:
            limit = max(0.01, limit * 0.6)
        else:
            limit = min(VOLTAGE_LIMIT, limit * 1.3)
        prev_dv = dv.copy()

        if max_dv > limit:
            delta = delta * (limit / max_dv)
            x = x + delta
            continue
        x = x_new
        if max_dv < VNTOL + RELTOL * np.max(np.abs(x[: compiled.num_nodes]), initial=0.0):
            return x
    return None


def dc_operating_point(
    compiled: CompiledCircuit,
    x0: np.ndarray | None = None,
    force: dict[str, float] | None = None,
    solver: str | None = None,
) -> OperatingPoint:
    """Compute the DC operating point.

    Args:
        compiled: The compiled circuit.
        x0: Optional initial guess (warm start).
        force: Optional nodeset, mapping node names to voltages that are
            softly pinned during the solve (used to bias oscillators off
            their metastable point).
        solver: Optional solver-backend override (``"dense"``/
            ``"sparse"``/``"auto"``); defaults to the process-wide
            choice (``--solver`` / ``REPRO_SOLVER`` / auto by size).

    Raises:
        ConvergenceError: If Newton fails even after gmin and source
            stepping (failure code ``CONV-DC``).
        SingularMatrixError: Only via fault injection; organic singular
            steps are absorbed by the Tikhonov fallback or the
            homotopies.
    """
    injector = faults.active()
    if injector is not None:
        injector.check_dc(compiled.circuit.name)

    stats = kernel.active()
    if stats is not None:
        stats.count_analysis("dc")
    backend = kernel.backend_for(compiled.size, solver)
    template = _dc_template(compiled, backend)

    x = x0.copy() if x0 is not None else np.zeros(compiled.size)
    x = _perturb_retry_guess(x)
    recovery: set[str] = set()

    # Plain Newton first: cheap and usually sufficient with a warm start.
    solution = _newton_solve(
        compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
        recovery=recovery,
    )
    if solution is not None:
        return _finish(compiled, solution, recovery)

    # gmin stepping.
    recovery.add("gmin-stepping")
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        solution = _newton_solve(
            compiled, template, x, gmin=gmin, source_scale=1.0, force=force,
            recovery=recovery,
        )
        if solution is None:
            break
        x = solution
    else:
        solution = _newton_solve(
            compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
            recovery=recovery,
        )
        if solution is not None:
            return _finish(compiled, solution, recovery)

    # Source stepping fallback, with a supporting gmin that relaxes as
    # the sources ramp up.
    recovery.add("source-stepping")
    x = np.zeros(compiled.size)
    for scale in np.linspace(0.1, 1.0, 10):
        stepped = _newton_solve(
            compiled,
            template,
            x,
            gmin=1e-9 * (1.0 - scale) + 1e-12,
            source_scale=float(scale),
            force=force,
            recovery=recovery,
        )
        if stepped is None:
            raise ConvergenceError(
                f"DC operating point failed for circuit "
                f"{compiled.circuit.name!r} at source scale {scale:.2f}",
                code="CONV-DC",
            )
        x = stepped
    final = _newton_solve(
        compiled, template, x, gmin=0.0, source_scale=1.0, force=force,
        recovery=recovery,
    )
    if final is None:
        raise ConvergenceError(
            f"DC operating point failed for circuit "
            f"{compiled.circuit.name!r} after source stepping",
            code="CONV-DC",
        )
    return _finish(compiled, final, recovery)


#: Order in which recovery tags are reported on an OperatingPoint.
_RECOVERY_ORDER = ("gmin-stepping", "source-stepping", "tikhonov")


def _perturb_retry_guess(x: np.ndarray) -> np.ndarray:
    """Perturb the initial guess on retry attempts.

    The evaluation runtime sets a nonzero perturbation amplitude on
    retries; a deterministic per-(key, attempt) perturbation keeps a
    retried solve from replaying the exact failing trajectory while
    remaining reproducible.
    """
    ctx = eval_context.current()
    if ctx is None or ctx.perturbation <= 0.0 or not len(x):
        return x
    seed = zlib.crc32(f"{ctx.key}|{ctx.attempt}".encode())
    rng = np.random.default_rng(seed)
    return x + ctx.perturbation * rng.standard_normal(len(x))


def _finish(
    compiled: CompiledCircuit, x: np.ndarray, recovery: set[str] | None = None
) -> OperatingPoint:
    tags = tuple(
        tag for tag in _RECOVERY_ORDER if recovery and tag in recovery
    )
    return OperatingPoint(
        compiled=compiled,
        x=x,
        mos_eval=compiled.eval_mosfets(x),
        recovery=tags,
    )


# -- batched operating points -------------------------------------------------
#
# Library selection sweeps evaluate many near-identical variants whose
# netlists share one system pattern — only device values differ.  The
# helpers below stamp K such circuits into one
# :class:`~repro.spice.kernel.BatchedSystemTemplate` and run damped
# Newton across the batch in lockstep with per-member masking: converged
# members freeze, stragglers keep iterating, and every per-member
# floating-point operation (damping dot product, voltage limiting,
# convergence test) replays the serial :func:`_newton_solve` exactly, so
# results are bitwise identical to one-at-a-time solves.


class _DcGroup:
    """One template-compatible slice of a batch, stacked for solving."""

    def __init__(
        self,
        indices: list[int],
        compileds: list[CompiledCircuit],
        templates: list["kernel.SystemTemplate"],
    ):
        self.indices = indices
        self.compileds = compileds
        self.batched = kernel.BatchedSystemTemplate(templates)
        first = compileds[0]
        self.num_nodes = first.num_nodes
        self.size = first.size
        self.num_devices = len(first.mos_elements)
        if self.num_devices:
            stack = lambda name: np.stack(  # noqa: E731 - tiny local adapter
                [getattr(c, name) for c in compileds]
            )
            self._params = tuple(
                stack(name)
                for name in (
                    "_mos_pol", "_mos_vth", "_mos_n", "_mos_ispec",
                    "_mos_lam", "_mos_theta", "_mos_coxwl", "_mos_cov",
                    "_mos_cdb", "_mos_csb",
                )
            )
            self._mos_g = first._mos_g
            self._mos_d = first._mos_d
            self._mos_s = first._mos_s

    def eval_mosfets(self, x: np.ndarray, act: np.ndarray) -> MosEval | None:
        """Evaluate the active members' MOSFETs in one vectorized call.

        ``x`` is the ``(len(act), size)`` stacked solution of the
        still-live members, ``act`` their row indices into the group;
        the model is purely elementwise, so evaluating the stacked
        devices gives the same per-device values as serial calls.
        """
        if not self.num_devices:
            return None
        stats = kernel.active()
        t0 = kernel._clock() if stats is not None else 0.0
        xg = np.concatenate([x, np.zeros((len(x), 1))], axis=1)
        ev = evaluate_mosfets(
            *(p[act] for p in self._params),
            xg[:, self._mos_g],
            xg[:, self._mos_d],
            xg[:, self._mos_s],
        )
        if stats is not None:
            stats.device_eval_s += kernel._clock() - t0
        return ev


def _group_batch(
    compileds: list[CompiledCircuit], solver: str | None
) -> list[_DcGroup]:
    """Partition a batch into template-compatible groups (order kept)."""
    groups: list[list[int]] = []
    templates: list["kernel.SystemTemplate"] = []
    for i, compiled in enumerate(compileds):
        backend = kernel.backend_for(compiled.size, solver)
        template = _dc_template(compiled, backend)
        templates.append(template)
        for members in groups:
            if kernel.templates_compatible(templates[members[0]], template):
                members.append(i)
                break
        else:
            groups.append([i])
    return [
        _DcGroup(
            members,
            [compileds[i] for i in members],
            [templates[i] for i in members],
        )
        for members in groups
    ]


def _newton_solve_batch(
    group: _DcGroup,
    x0: np.ndarray,
    rhs_src: np.ndarray,
    max_iterations: int,
    recovery_sets: list[set],
) -> list[np.ndarray | None]:
    """Plain damped Newton over one group, masked per member.

    ``x0``/``rhs_src`` are ``(K, size)`` / ``(K, size+1)`` stacks;
    ``recovery_sets`` collects per-member ``"tikhonov"`` tags.  Returns
    the per-member solution or None (diverged / singular), exactly as K
    serial :func:`_newton_solve` calls with ``gmin=0`` would.
    """
    count = len(group.indices)
    nn = group.num_nodes
    stats = kernel.active()

    x = x0.copy()
    diag = np.full((count, nn), GMIN_FLOOR)
    limit = np.full(count, VOLTAGE_LIMIT)
    prev_dv: np.ndarray | None = None
    has_prev = np.zeros(count, dtype=bool)
    live = np.ones(count, dtype=bool)
    failed = np.zeros(count, dtype=bool)
    solutions: list[np.ndarray | None] = [None] * count
    dyn = np.zeros((count, nn + 6 * group.num_devices))
    rhs = np.zeros_like(rhs_src)

    for _ in range(max_iterations):
        act = np.flatnonzero(live)
        if not len(act):
            break
        if stats is not None:
            stats.newton_iterations += len(act)

        x_act = x[act]
        ev = group.eval_mosfets(x_act, act)
        if ev is not None:
            xg = np.concatenate([x_act, np.zeros((len(act), 1))], axis=1)
            d, g, s = group._mos_d, group._mos_g, group._mos_s
            gms = ev.gms
            ieq = (
                ev.ids
                - ev.gm * xg[:, g]
                - ev.gds * xg[:, d]
                - gms * xg[:, s]
            )
            member = np.arange(len(act))[:, None]
            rhs_act = rhs_src[act].copy()
            np.add.at(rhs_act, (member, d[None, :]), -ieq)
            np.add.at(rhs_act, (member, s[None, :]), ieq)
            rhs[act] = rhs_act
            dyn[act] = np.concatenate(
                [diag[act], ev.gds, ev.gm, gms, -ev.gds, -ev.gm, -gms],
                axis=1,
            )
        else:
            rhs[act] = rhs_src[act]
            dyn[act] = diag[act]

        x_new, recoveries, errors = group.batched.solve(dyn, rhs, live)
        for k in act:
            k = int(k)
            if errors[k] is not None:
                # The serial path bails out of plain Newton here so the
                # homotopies get their chance; mask the member out.
                live[k] = False
                failed[k] = True
            elif recoveries[k] is not None:
                recovery_sets[k].add(recoveries[k])
        act = np.flatnonzero(live)
        if not len(act):
            break

        delta = x_new[act] - x[act]
        dv = delta[:, :nn]
        max_dv = (
            np.max(np.abs(dv), axis=1) if nn else np.zeros(len(act))
        )

        # Oscillation-aware damping, per member (same scalar ops as the
        # serial loop; the dot product stays a per-row 1-D np.dot so the
        # summation order matches the serial path bitwise).
        flips = np.zeros(len(act), dtype=bool)
        if nn and prev_dv is not None:
            for j, k in enumerate(act):
                if has_prev[k] and float(np.dot(dv[j], prev_dv[k])) < 0.0:
                    flips[j] = True
        limit[act] = np.where(
            flips,
            np.maximum(0.01, limit[act] * 0.6),
            np.minimum(VOLTAGE_LIMIT, limit[act] * 1.3),
        )
        if prev_dv is None:
            prev_dv = np.zeros((count, nn))
        prev_dv[act] = dv
        has_prev[act] = True

        over = max_dv > limit[act]
        scale = np.where(over, limit[act] / np.where(max_dv > 0, max_dv, 1.0), 1.0)
        x[act] = np.where(
            over[:, None], x[act] + delta * scale[:, None], x_new[act]
        )

        vmax = (
            np.max(np.abs(x_new[act][:, :nn]), axis=1, initial=0.0)
            if nn
            else np.zeros(len(act))
        )
        converged = ~over & (max_dv < VNTOL + RELTOL * vmax)
        for j, k in enumerate(act):
            if converged[j]:
                k = int(k)
                solutions[k] = x[k].copy()
                live[k] = False
    return solutions


def newton_operating_points(
    compileds: list[CompiledCircuit],
    rhs_srcs: list[np.ndarray] | None = None,
    x0s: list[np.ndarray | None] | None = None,
    solver: str | None = None,
) -> list[OperatingPoint | None]:
    """Plain-Newton operating points for a batch of circuits.

    The batched half of :func:`dc_operating_points`: groups the circuits
    by template compatibility, runs the masked lockstep Newton per
    group, and finishes converged members into
    :class:`OperatingPoint` objects (with any ``"tikhonov"`` tag
    collected along the way).  Members that plain Newton cannot converge
    come back as None — the caller owns the gmin/source-stepping ladder
    (usually by falling back to the serial :func:`dc_operating_point`,
    which replays the identical failing trajectory first).

    ``rhs_srcs`` optionally overrides each member's DC source vector
    (``compiled.source_rhs(t=None)`` layout) — the compile-once path of
    the batched offset bisection, where successive inputs change only
    source values.  No fault injection, ``force`` pins or retry
    perturbation here: callers gate on those being absent.
    """
    stats = kernel.active()
    results: list[OperatingPoint | None] = [None] * len(compileds)
    if not compileds:
        return results
    for group in _group_batch(compileds, solver):
        count = len(group.indices)
        if stats is not None:
            for _ in range(count):
                stats.count_analysis("dc")
        x0 = np.stack(
            [
                np.zeros(group.size)
                if x0s is None or x0s[i] is None
                else np.asarray(x0s[i], dtype=float)
                for i in group.indices
            ]
        )
        rhs = np.stack(
            [
                group.compileds[j].source_rhs(t=None, scale=1.0)
                if rhs_srcs is None
                else np.asarray(rhs_srcs[i], dtype=float)
                for j, i in enumerate(group.indices)
            ]
        )
        recovery_sets: list[set] = [set() for _ in range(count)]
        max_iterations = _effective_max_iterations(group.compileds[0], None)
        solutions = _newton_solve_batch(
            group, x0, rhs, max_iterations, recovery_sets
        )
        for j, i in enumerate(group.indices):
            if solutions[j] is not None:
                results[i] = _finish(
                    group.compileds[j], solutions[j], recovery_sets[j]
                )
    return results


def dc_operating_points(
    compileds: list[CompiledCircuit],
    x0s: list[np.ndarray | None] | None = None,
    force: dict[str, float] | None = None,
    solver: str | None = None,
) -> list[OperatingPoint | Exception]:
    """Batched :func:`dc_operating_point` over many circuits.

    Bitwise-identical to calling :func:`dc_operating_point` per member:
    the vectorized lockstep Newton handles the common case, and any
    member it cannot converge (or any batch run under fault injection,
    ``force`` pins or a retry perturbation) goes through the serial path
    unchanged.  Failures are *captured per member* — the returned list
    holds an :class:`OperatingPoint` or the exception the serial call
    would have raised (:class:`~repro.errors.ConvergenceError` /
    :class:`~repro.errors.SingularMatrixError`), so one diverging member
    does not hide the others' results; callers re-raise at the member
    position when they want serial raise semantics.
    """
    ctx = eval_context.current()
    serial_only = (
        faults.active() is not None
        or bool(force)
        or (
            ctx is not None
            and (
                ctx.perturbation > 0.0
                # The lockstep kernel sizes its own budget; an explicit
                # per-evaluation budget must be honored serially.
                or ctx.newton_max_iterations is not None
            )
        )
    )
    results: list[OperatingPoint | Exception] = [None] * len(compileds)  # type: ignore[list-item]
    if serial_only:
        batched = [None] * len(compileds)
    else:
        batched = newton_operating_points(compileds, x0s=x0s, solver=solver)
    for i, compiled in enumerate(compileds):
        if batched[i] is not None:
            results[i] = batched[i]
            continue
        try:
            results[i] = dc_operating_point(
                compiled,
                x0=None if x0s is None else x0s[i],
                force=force,
                solver=solver,
            )
        except (ConvergenceError, SingularMatrixError) as exc:
            results[i] = exc
    return results


def dc_sweep(
    compiled: CompiledCircuit,
    source_name: str,
    values: np.ndarray,
) -> list[OperatingPoint]:
    """Sweep the DC level of one source, warm-starting each point.

    The named element must be a :class:`VoltageSource` or
    :class:`CurrentSource`; its waveform is replaced by a DC level and the
    circuit recompiled per sweep point (compilation is linear in element
    count, so this stays cheap for primitive-scale circuits).
    """
    from dataclasses import replace

    from repro.spice.elements import CurrentSource, VoltageSource
    from repro.spice.waveforms import Dc

    circuit = compiled.circuit
    element = circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise NetlistError(f"{source_name!r} is not an independent source")

    results: list[OperatingPoint] = []
    x_prev: np.ndarray | None = None
    try:
        for value in values:
            circuit.replace_element(
                source_name, replace(element, waveform=Dc(float(value)))
            )
            point_compiled = CompiledCircuit(circuit, compiled.rules)
            point = dc_operating_point(point_compiled, x0=x_prev)
            results.append(point)
            x_prev = point.x
    finally:
        circuit.replace_element(source_name, element)
    return results
