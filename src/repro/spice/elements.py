"""Circuit element definitions.

Elements are plain dataclasses holding node *names*; the MNA compiler
(:mod:`repro.spice.mna`) resolves names to matrix indices.  Current sign
conventions follow SPICE: a voltage source's branch current flows from its
positive node through the source to its negative node; a current source
pushes current from node ``a`` through itself into node ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice.waveforms import Dc, Waveform
from repro.tech.finfet import MosModelCard


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between nodes ``a`` and ``b``."""

    name: str
    a: str
    b: str
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise NetlistError(f"resistor {self.name}: value must be > 0")


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor between nodes ``a`` and ``b``."""

    name: str
    a: str
    b: str
    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise NetlistError(f"capacitor {self.name}: value must be >= 0")


@dataclass(frozen=True)
class Inductor:
    """Linear inductor between nodes ``a`` and ``b`` (adds a branch current)."""

    name: str
    a: str
    b: str
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise NetlistError(f"inductor {self.name}: value must be > 0")


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source from ``plus`` to ``minus``.

    ``ac_magnitude``/``ac_phase_deg`` define the small-signal stimulus used
    by AC analysis (they do not affect DC or transient).
    """

    name: str
    plus: str
    minus: str
    waveform: Waveform = field(default_factory=Dc)
    ac_magnitude: float = 0.0
    ac_phase_deg: float = 0.0


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source pushing current from ``a`` into ``b``."""

    name: str
    a: str
    b: str
    waveform: Waveform = field(default_factory=Dc)
    ac_magnitude: float = 0.0
    ac_phase_deg: float = 0.0


@dataclass(frozen=True)
class Vcvs:
    """Voltage-controlled voltage source (SPICE E element)."""

    name: str
    plus: str
    minus: str
    ctrl_plus: str
    ctrl_minus: str
    gain: float


@dataclass(frozen=True)
class Vccs:
    """Voltage-controlled current source (SPICE G element).

    Pushes ``gain * (v(ctrl_plus) - v(ctrl_minus))`` from ``a`` into ``b``.
    """

    name: str
    a: str
    b: str
    ctrl_plus: str
    ctrl_minus: str
    gain: float


@dataclass(frozen=True)
class Mosfet:
    """FinFET instance.

    Attributes:
        name: Instance name.
        d, g, s, b: Drain, gate, source and bulk node names (bulk is
            accepted for netlist fidelity; the fully-depleted model has no
            body effect, and junction capacitances connect to ``b``).
        card: Technology model card.
        geometry: (nfin, nf, m) sizing.
        lde: Layout-dependent-effect context (ideal for schematics).
        cdb_override: Drain junction capacitance override from extraction
            (accounts for diffusion sharing); None keeps the card default.
        csb_override: Source junction capacitance override.
        vth_mismatch: Additional deterministic threshold offset (V), used
            by Monte-Carlo/offset analyses.
    """

    name: str
    d: str
    g: str
    s: str
    b: str
    card: MosModelCard
    geometry: MosGeometry
    lde: LdeContext = field(default_factory=LdeContext.ideal)
    cdb_override: float | None = None
    csb_override: float | None = None
    vth_mismatch: float = 0.0


Element = (
    Resistor
    | Capacitor
    | Inductor
    | VoltageSource
    | CurrentSource
    | Vcvs
    | Vccs
    | Mosfet
)
