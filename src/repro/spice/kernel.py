"""The solver kernel: backend selection, pattern-reuse assembly, profiling.

Every analysis (DC Newton, transient time stepping, AC sweeps) reduces to
solving ``A x = b`` where ``A`` shares one fixed sparsity pattern across
iterations — only device values change.  This module provides the three
pieces the analyses build on:

* **Backend selection** — dense ``numpy.linalg`` versus sparse
  ``scipy.sparse`` CSC + SuperLU (:func:`backend_for`), auto-selected by
  system size with an override via the ``REPRO_SOLVER`` environment
  variable, the ``--solver`` CLI flag, or a per-call argument.
* **:class:`SystemTemplate`** — an MNA system compiled once per
  (circuit, analysis) into COO index triplets.  The static (topology)
  part is accumulated a single time; each Newton iteration or time step
  only writes device values into a preallocated array.  The sparse
  backend additionally reuses the symbolic CSC pattern (index/indptr
  arrays and the triplet→slot scatter map) across every solve, and both
  backends can return a reusable :class:`Factorization` for systems
  whose matrix is iteration-invariant (linear networks at fixed ``dt``).
* **:class:`SolverStats`** — lightweight per-analysis profiling counters
  (stamp/factor/solve/device-eval time, Newton iterations, transient
  steps versus the fixed-step baseline), collected through a context
  variable so the evaluation runtime can attribute kernel time to the
  evaluation that spent it without threading a parameter through every
  call (see :func:`collect`).

The singular-matrix recovery — Tikhonov-regularized normal equations —
lives here in exactly one place (:func:`tikhonov_rescue`) and is shared
by the dense and sparse backends, preserving the ``"tikhonov"`` recovery
tag the failure log reports.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.errors import SimulationError, SingularMatrixError

#: Solver choices.
DENSE = "dense"
SPARSE = "sparse"
AUTO = "auto"

_SOLVER_CHOICES = (AUTO, DENSE, SPARSE)

#: Environment variable overriding the solver backend for a whole run.
SOLVER_ENV = "REPRO_SOLVER"

#: Below this system size the dense backend wins: BLAS on a small dense
#: matrix beats SuperLU's per-factorization setup overhead.  Measured on
#: the library testbenches (tens of unknowns) versus the assembled
#: benchmark circuits (hundreds); see ``docs/performance.md``.
SPARSE_MIN_SIZE = 128

#: Relative Tikhonov regularization strength for singular-system recovery.
TIKHONOV_LAMBDA = 1.0e-10

#: Recovery-path tag for solves that needed the regularized fallback.
RECOVERY_TIKHONOV = "tikhonov"

#: Process-wide solver default set by the CLI's ``--solver`` flag (takes
#: precedence over the environment; per-call arguments beat both).
_configured_solver: str | None = None


def set_default_solver(solver: str | None) -> None:
    """Set the process-wide solver choice (``None`` restores auto)."""
    global _configured_solver
    if solver is not None and solver not in _SOLVER_CHOICES:
        raise SimulationError(
            f"unknown solver {solver!r}; choose from {', '.join(_SOLVER_CHOICES)}"
        )
    _configured_solver = solver


def resolve_solver(override: str | None = None) -> str:
    """The effective solver choice: argument > CLI default > env > auto."""
    for candidate, what in (
        (override, "solver argument"),
        (_configured_solver, "--solver"),
        (os.environ.get(SOLVER_ENV) or None, SOLVER_ENV),
    ):
        if candidate is not None:
            if candidate not in _SOLVER_CHOICES:
                raise SimulationError(
                    f"invalid {what} {candidate!r}; choose from "
                    f"{', '.join(_SOLVER_CHOICES)}"
                )
            return candidate
    return AUTO


def backend_for(size: int, solver: str | None = None) -> str:
    """Concrete backend (dense/sparse) for a system of ``size`` unknowns."""
    choice = resolve_solver(solver)
    if choice == AUTO:
        return SPARSE if size >= SPARSE_MIN_SIZE else DENSE
    return choice


# -- profiling ---------------------------------------------------------------


@dataclass
class SolverStats:
    """Per-analysis solver counters.

    Times are wall-clock seconds accumulated inside the kernel hot
    paths; counts are exact.  All fields add across evaluations, so one
    object can aggregate a whole optimization run.

    Attributes:
        stamp_s: Time assembling matrix values (COO accumulation, data
            scatter, dense stamping).
        factor_s: Time in LU factorizations (SuperLU ``splu`` / dense
            ``lu_factor``).  The dense one-shot path fuses factor+solve
            inside ``numpy.linalg.solve`` and reports under ``solve_s``.
        solve_s: Time in triangular solves / fused dense solves.
        device_eval_s: Time evaluating the MOSFET model.
        newton_iterations: Newton iterations across all solves.
        solves: Linear-system solves.
        factorizations: Explicit LU factorizations (pattern-reuse and
            reused-LU paths).
        lu_reuses: Solves answered by a previously computed
            factorization (the step-invariant linear part).
        tran_steps: Accepted transient steps.
        tran_rejected: Transient steps rejected by the LTE controller or
            a Newton failure (each retried at half the step).
        tran_fixed_steps: Steps the fixed-step baseline would have taken
            for the same analyses (``round(t_stop / dt)`` summed).
        batched_solves: Stacked solve calls issued by a
            :class:`BatchedSystemTemplate` (one per lockstep iteration,
            however many members it covered).
        batch_members: Member systems served by those stacked calls.
        batch_fallbacks: Members a stacked call handed to the
            per-member fallback (singular/non-finite slices).
        analyses: Analysis invocation counts keyed ``"dc"``/``"ac"``/
            ``"tran"``.
        backends: Solve counts keyed by backend (``"dense"``/``"sparse"``).
    """

    stamp_s: float = 0.0
    factor_s: float = 0.0
    solve_s: float = 0.0
    device_eval_s: float = 0.0
    newton_iterations: int = 0
    solves: int = 0
    factorizations: int = 0
    lu_reuses: int = 0
    tran_steps: int = 0
    tran_rejected: int = 0
    tran_fixed_steps: int = 0
    batched_solves: int = 0
    batch_members: int = 0
    batch_fallbacks: int = 0
    analyses: dict[str, int] = field(default_factory=dict)
    backends: dict[str, int] = field(default_factory=dict)

    def count_analysis(self, kind: str) -> None:
        self.analyses[kind] = self.analyses.get(kind, 0) + 1

    def count_backend(self, backend: str) -> None:
        self.backends[backend] = self.backends.get(backend, 0) + 1

    def merge(self, other: "SolverStats") -> None:
        """Add another stats object into this one."""
        self.stamp_s += other.stamp_s
        self.factor_s += other.factor_s
        self.solve_s += other.solve_s
        self.device_eval_s += other.device_eval_s
        self.newton_iterations += other.newton_iterations
        self.solves += other.solves
        self.factorizations += other.factorizations
        self.lu_reuses += other.lu_reuses
        self.tran_steps += other.tran_steps
        self.tran_rejected += other.tran_rejected
        self.tran_fixed_steps += other.tran_fixed_steps
        self.batched_solves += other.batched_solves
        self.batch_members += other.batch_members
        self.batch_fallbacks += other.batch_fallbacks
        for key, count in other.analyses.items():
            self.analyses[key] = self.analyses.get(key, 0) + count
        for key, count in other.backends.items():
            self.backends[key] = self.backends.get(key, 0) + count

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (times rounded to microseconds)."""
        return {
            "stamp_s": round(self.stamp_s, 6),
            "factor_s": round(self.factor_s, 6),
            "solve_s": round(self.solve_s, 6),
            "device_eval_s": round(self.device_eval_s, 6),
            "newton_iterations": self.newton_iterations,
            "solves": self.solves,
            "factorizations": self.factorizations,
            "lu_reuses": self.lu_reuses,
            "tran_steps": self.tran_steps,
            "tran_rejected": self.tran_rejected,
            "tran_fixed_steps": self.tran_fixed_steps,
            "batched_solves": self.batched_solves,
            "batch_members": self.batch_members,
            "batch_fallbacks": self.batch_fallbacks,
            "analyses": dict(sorted(self.analyses.items())),
            "backends": dict(sorted(self.backends.items())),
        }

    def __bool__(self) -> bool:
        return bool(self.solves or self.analyses)

    @classmethod
    def from_dict(cls, data: dict) -> "SolverStats":
        """Rebuild a stats object from an :meth:`as_dict` snapshot
        (unknown keys are ignored so old snapshots stay loadable)."""
        stats = cls()
        for name in (
            "stamp_s",
            "factor_s",
            "solve_s",
            "device_eval_s",
            "newton_iterations",
            "solves",
            "factorizations",
            "lu_reuses",
            "tran_steps",
            "tran_rejected",
            "tran_fixed_steps",
            "batched_solves",
            "batch_members",
            "batch_fallbacks",
        ):
            if name in data:
                setattr(stats, name, data[name])
        stats.analyses = dict(data.get("analyses", {}))
        stats.backends = dict(data.get("backends", {}))
        return stats


_active_stats: ContextVar[SolverStats | None] = ContextVar(
    "repro_solver_stats", default=None
)


def active() -> SolverStats | None:
    """The stats collector of the enclosing :func:`collect` block, if any."""
    return _active_stats.get()


@contextmanager
def collect(stats: SolverStats):
    """Accumulate kernel counters into ``stats`` for the enclosed block."""
    token = _active_stats.set(stats)
    try:
        yield stats
    finally:
        _active_stats.reset(token)


_clock = time.perf_counter


# -- shared singular-system recovery ----------------------------------------


def tikhonov_rescue(a: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a singular/ill-conditioned system by regularized least squares.

    The one recovery path shared by the dense and sparse backends:
    ``(AᴴA + λI) x = Aᴴ b`` with λ scaled to the matrix magnitude picks
    the minimum-norm least-squares solution.  ``a`` must be dense — the
    sparse backend densifies before rescue, which is fine because the
    rescue is rare and the systems are at most a few hundred unknowns.

    Raises:
        SingularMatrixError: When even the regularized solve yields a
            non-finite solution.
    """
    scale = float(np.max(np.abs(a))) if a.size else 0.0
    lam = TIKHONOV_LAMBDA * (scale if scale > 0.0 else 1.0)
    ah = a.conj().T
    try:
        x = np.linalg.solve(
            ah @ a + lam * np.eye(a.shape[0], dtype=a.dtype), ah @ rhs
        )
    except np.linalg.LinAlgError:
        x = None
    if x is None or not np.all(np.isfinite(x)):
        raise SingularMatrixError(
            "MNA system is singular even after Tikhonov regularization"
        )
    return x


def solve_dense(a: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, str | None]:
    """One dense solve with the shared Tikhonov fallback.

    Returns ``(x, None)`` for a clean direct solve, ``(x, "tikhonov")``
    when the regularized fallback was needed.
    """
    stats = active()
    if stats is not None:
        t0 = _clock()
    try:
        x = np.linalg.solve(a, rhs)
        if np.all(np.isfinite(x)):
            if stats is not None:
                stats.solve_s += _clock() - t0
                stats.solves += 1
                stats.count_backend(DENSE)
            return x, None
    except np.linalg.LinAlgError:
        pass
    x = tikhonov_rescue(a, rhs)
    if stats is not None:
        stats.solve_s += _clock() - t0
        stats.solves += 1
        stats.count_backend(DENSE)
    return x, RECOVERY_TIKHONOV


# -- factorizations ---------------------------------------------------------


class Factorization:
    """A reusable LU factorization of one assembled MNA matrix.

    Obtained from :meth:`SystemTemplate.factor`; ``solve`` may be called
    any number of times with different right-hand sides — the
    step-invariant-LU reuse path of linear transient networks.
    """

    def __init__(self, solve_fn, backend: str):
        self._solve = solve_fn
        self.backend = backend

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one right-hand side (no fallback: callers keep
        the template around for the rescue path)."""
        stats = active()
        if stats is not None:
            t0 = _clock()
        x = self._solve(rhs)
        if stats is not None:
            stats.solve_s += _clock() - t0
            stats.solves += 1
            stats.lu_reuses += 1
            stats.count_backend(self.backend)
        if not np.all(np.isfinite(x)):
            raise SingularMatrixError("factorized solve produced non-finite values")
        return x


# -- the assembly template ---------------------------------------------------


class SystemTemplate:
    """An MNA system compiled to COO triplets with a fixed pattern.

    Args:
        size: Number of unknowns (the ghost ground index is ``size``;
            triplets touching it are accepted and discarded).
        static: ``(rows, cols, values)`` of the constant part, stamped
            once at construction.
        dyn_rows / dyn_cols: Index arrays of the *dynamic* slots; every
            :meth:`solve` call supplies a matching values array.
        dtype: ``float`` or ``complex``.
        backend: ``"dense"`` or ``"sparse"``.

    The sparse backend converts the union pattern to CSC **once**
    (symbolic reuse): per solve it copies the prefilled static data
    vector, scatters the dynamic values through a precomputed slot map,
    wraps the arrays in a ``csc_matrix`` without re-sorting, and calls
    SuperLU.  The dense backend keeps a prefilled base matrix and
    scatters dynamic values with ``np.add.at``.
    """

    def __init__(
        self,
        size: int,
        static: tuple[np.ndarray, np.ndarray, np.ndarray],
        dyn_rows: np.ndarray,
        dyn_cols: np.ndarray,
        dtype=float,
        backend: str = DENSE,
    ):
        if backend not in (DENSE, SPARSE):
            raise SimulationError(f"unknown backend {backend!r}")
        self.size = size
        self.ghost = size
        self.dtype = dtype
        self.backend = backend
        s_rows, s_cols, s_vals = static
        s_rows = np.asarray(s_rows, dtype=np.intp)
        s_cols = np.asarray(s_cols, dtype=np.intp)
        s_vals = np.asarray(s_vals, dtype=dtype)
        self._dyn_rows = np.asarray(dyn_rows, dtype=np.intp)
        self._dyn_cols = np.asarray(dyn_cols, dtype=np.intp)

        if backend == DENSE:
            base = np.zeros((size + 1, size + 1), dtype=dtype)
            if len(s_vals):
                np.add.at(base, (s_rows, s_cols), s_vals)
            self._base = base
        else:
            self._build_sparse(s_rows, s_cols, s_vals)

    # -- sparse symbolic setup ------------------------------------------

    def _build_sparse(self, s_rows, s_cols, s_vals) -> None:
        n = self.size
        rows = np.concatenate([s_rows, self._dyn_rows])
        cols = np.concatenate([s_cols, self._dyn_cols])
        # Linearize in CSC order (column-major); ghost entries map to a
        # sentinel that sorts last and lands in a trash slot.
        keep = (rows < n) & (cols < n)
        lin = np.where(keep, cols * n + rows, n * n)
        uniq, slots = np.unique(lin, return_inverse=True)
        has_trash = bool(len(uniq)) and uniq[-1] == n * n
        nnz = len(uniq) - (1 if has_trash else 0)
        entries = uniq[:nnz]
        self._nnz = nnz
        self._indices = (entries % n).astype(np.int32)
        self._indptr = np.searchsorted(entries // n, np.arange(n + 1)).astype(
            np.int32
        )
        # Data vector has one extra trash slot so ghost-touching stamps
        # vectorize without branches.
        n_static = len(s_vals)
        self._static_slots = slots[:n_static]
        self._dyn_slots = slots[n_static:]
        static_data = np.zeros(nnz + 1, dtype=self.dtype)
        if n_static:
            np.add.at(static_data, self._static_slots, s_vals)
        self._static_data = static_data

    # -- assembly -------------------------------------------------------

    def dyn_data(self, dyn_vals: np.ndarray) -> np.ndarray:
        """Sparse only: the dynamic values accumulated into a data
        vector (same layout as :attr:`static_data`), without the static
        part.  Used by the AC sweep to precompute the frequency-scaled
        susceptance data once."""
        assert self.backend == SPARSE
        data = np.zeros(self._nnz + 1, dtype=self.dtype)
        if len(self._dyn_slots):
            np.add.at(data, self._dyn_slots, np.asarray(dyn_vals, dtype=self.dtype))
        return data

    @property
    def static_data(self) -> np.ndarray:
        """Sparse only: the prefilled static data vector."""
        assert self.backend == SPARSE
        return self._static_data

    def _csc(self, data: np.ndarray) -> scipy.sparse.csc_matrix:
        n = self.size
        mat = scipy.sparse.csc_matrix(
            (data[: self._nnz], self._indices, self._indptr), shape=(n, n)
        )
        return mat

    def _dense_matrix(self, dyn_vals: np.ndarray) -> np.ndarray:
        a = self._base.copy()
        if len(self._dyn_rows):
            np.add.at(a, (self._dyn_rows, self._dyn_cols), dyn_vals)
        return a[: self.size, : self.size]

    def dense_matrix(self, dyn_vals: np.ndarray) -> np.ndarray:
        """The fully assembled dense core matrix (rescue/debug path)."""
        if self.backend == DENSE:
            return self._dense_matrix(np.asarray(dyn_vals, dtype=self.dtype))
        data = self._static_data.copy()
        if len(self._dyn_slots):
            np.add.at(data, self._dyn_slots, np.asarray(dyn_vals, dtype=self.dtype))
        return self._csc(data).toarray()

    # -- solving --------------------------------------------------------

    def solve(
        self, dyn_vals: np.ndarray, rhs: np.ndarray
    ) -> tuple[np.ndarray, str | None]:
        """Assemble with ``dyn_vals`` and solve against ``rhs``.

        Returns ``(x, recovery)`` where ``recovery`` is ``None`` for a
        clean solve or ``"tikhonov"`` when the shared singular-system
        fallback was needed.  Raises :class:`SingularMatrixError` only
        when even the rescue fails.
        """
        dyn_vals = np.asarray(dyn_vals, dtype=self.dtype)
        rhs = np.asarray(rhs[: self.size], dtype=self.dtype)
        stats = active()

        if self.backend == DENSE:
            if stats is not None:
                t0 = _clock()
            a = self._dense_matrix(dyn_vals)
            if stats is not None:
                stats.stamp_s += _clock() - t0
            return solve_dense(a, rhs)

        if stats is not None:
            t0 = _clock()
        data = self._static_data.copy()
        if len(self._dyn_slots):
            np.add.at(data, self._dyn_slots, dyn_vals)
        if stats is not None:
            stats.stamp_s += _clock() - t0
        return self.solve_data(data, rhs)

    def solve_data(
        self, data: np.ndarray, rhs: np.ndarray
    ) -> tuple[np.ndarray, str | None]:
        """Sparse only: solve from an explicit (prefabricated) data vector."""
        assert self.backend == SPARSE
        rhs = np.asarray(rhs[: self.size], dtype=self.dtype)
        stats = active()
        try:
            if stats is not None:
                t0 = _clock()
            lu = scipy.sparse.linalg.splu(self._csc(data))
            if stats is not None:
                t1 = _clock()
                stats.factor_s += t1 - t0
                stats.factorizations += 1
            x = lu.solve(rhs)
            if stats is not None:
                stats.solve_s += _clock() - t1
                stats.solves += 1
                stats.count_backend(SPARSE)
            if np.all(np.isfinite(x)):
                return x, None
        except RuntimeError:
            # SuperLU reports exact singularity as RuntimeError.
            pass
        x = tikhonov_rescue(self._csc(data).toarray(), rhs)
        if stats is not None:
            stats.solves += 1
            stats.count_backend(SPARSE)
        return x, RECOVERY_TIKHONOV

    def factor(self, dyn_vals: np.ndarray) -> Factorization:
        """Factor once for reuse across right-hand sides.

        Raises:
            SingularMatrixError: When the matrix cannot be factorized;
                callers fall back to :meth:`solve` (which carries the
                Tikhonov rescue).
        """
        dyn_vals = np.asarray(dyn_vals, dtype=self.dtype)
        stats = active()
        if stats is not None:
            t0 = _clock()
        if self.backend == DENSE:
            a = self._dense_matrix(dyn_vals)
            try:
                lu, piv = scipy.linalg.lu_factor(a)
            except (ValueError, np.linalg.LinAlgError) as exc:
                raise SingularMatrixError(f"dense LU failed: {exc}") from exc
            if not np.all(np.isfinite(lu)):
                raise SingularMatrixError("dense LU produced non-finite factors")
            if stats is not None:
                stats.factor_s += _clock() - t0
                stats.factorizations += 1
            return Factorization(
                lambda rhs: scipy.linalg.lu_solve(
                    (lu, piv), np.asarray(rhs[: self.size], dtype=self.dtype)
                ),
                DENSE,
            )
        data = self._static_data.copy()
        if len(self._dyn_slots):
            np.add.at(data, self._dyn_slots, dyn_vals)
        try:
            lu = scipy.sparse.linalg.splu(self._csc(data))
        except RuntimeError as exc:
            raise SingularMatrixError(f"sparse LU failed: {exc}") from exc
        if stats is not None:
            stats.factor_s += _clock() - t0
            stats.factorizations += 1
        return Factorization(
            lambda rhs: lu.solve(np.asarray(rhs[: self.size], dtype=self.dtype)),
            SPARSE,
        )


def templates_compatible(a: SystemTemplate, b: SystemTemplate) -> bool:
    """Whether two templates can share one :class:`BatchedSystemTemplate`.

    Compatible means: same size, backend, dtype and identical symbolic
    structure (dynamic-slot pattern, and on the sparse backend the CSC
    pattern and scatter maps).  Static *values* may differ — each batch
    member keeps its own static data — but the static entry pattern must
    line up so the member scatter maps coincide.
    """
    if (
        a.size != b.size
        or a.backend != b.backend
        or a.dtype != b.dtype
        or not np.array_equal(a._dyn_rows, b._dyn_rows)
        or not np.array_equal(a._dyn_cols, b._dyn_cols)
    ):
        return False
    if a.backend == SPARSE:
        return (
            a._nnz == b._nnz
            and np.array_equal(a._indices, b._indices)
            and np.array_equal(a._indptr, b._indptr)
            and np.array_equal(a._static_slots, b._static_slots)
            and np.array_equal(a._dyn_slots, b._dyn_slots)
        )
    return a._base.shape == b._base.shape


class BatchedSystemTemplate:
    """K same-pattern MNA systems stamped and solved as one stack.

    Built from K pairwise-:func:`templates_compatible`
    :class:`SystemTemplate` objects — same symbolic structure, per-member
    static values (parasitics differ across library variants even when
    the pattern matches).  :meth:`solve` stamps all *active* members into
    a stacked ``(K, N, N)`` dense array (or a ``(K, nnz+1)`` data block of
    the shared CSC pattern, i.e. a block-diagonal sparse system) and
    solves them together.

    Determinism contract: for every member the result is **bitwise
    identical** to solving its own template serially.  The dense path
    relies on LAPACK ``gesv`` applying the same factorization per slice
    of a stacked batch as for a single system (asserted by
    ``tests/spice/test_kernel.py``); the sparse path factors per member
    on the shared symbolic pattern, exactly like the serial
    :meth:`SystemTemplate.solve_data`.  Members whose slice is singular
    or non-finite are re-solved through the serial fallback
    (:func:`solve_dense` / :meth:`SystemTemplate.solve_data`), which
    preserves the ``"tikhonov"`` recovery tag and the failure taxonomy
    (:class:`SingularMatrixError` is *captured per member*, never raised
    for the batch).
    """

    def __init__(self, templates: list[SystemTemplate]):
        if not templates:
            raise SimulationError("batched template needs at least one member")
        first = templates[0]
        for other in templates[1:]:
            if not templates_compatible(first, other):
                raise SimulationError(
                    "batched template members must share one system pattern"
                )
        self.templates = list(templates)
        self.count = len(templates)
        self.size = first.size
        self.dtype = first.dtype
        self.backend = first.backend
        self._dyn_rows = first._dyn_rows
        self._dyn_cols = first._dyn_cols
        if self.backend == DENSE:
            self._base = np.stack([t._base for t in templates])
        else:
            self._static_data = np.stack([t._static_data for t in templates])

    def solve(
        self,
        dyn_vals: np.ndarray,
        rhs: np.ndarray,
        active: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[str | None], list[SingularMatrixError | None]]:
        """Solve the active members against their right-hand sides.

        Args:
            dyn_vals: ``(K, D)`` dynamic values, one row per member.
            rhs: ``(K, >=size)`` right-hand sides (ghost column allowed).
            active: Optional ``(K,)`` boolean mask — inactive (converged
                or failed) members are skipped and their output row left
                at zero.

        Returns:
            ``(x, recoveries, errors)``: the ``(K, size)`` solution
            stack, a per-member recovery tag (``None`` or
            ``"tikhonov"``), and a per-member captured
            :class:`SingularMatrixError` (``None`` on success).
        """
        dyn_vals = np.asarray(dyn_vals, dtype=self.dtype)
        x_out = np.zeros((self.count, self.size), dtype=self.dtype)
        recoveries: list[str | None] = [None] * self.count
        errors: list[SingularMatrixError | None] = [None] * self.count
        if active is None:
            idx = np.arange(self.count)
        else:
            idx = np.flatnonzero(active)
        if not len(idx):
            return x_out, recoveries, errors
        if self.backend == DENSE:
            self._solve_dense(dyn_vals, rhs, idx, x_out, recoveries, errors)
        else:
            self._solve_sparse(dyn_vals, rhs, idx, x_out, recoveries, errors)
        return x_out, recoveries, errors

    def _solve_dense(self, dyn_vals, rhs, idx, x_out, recoveries, errors) -> None:
        stats = active()
        if stats is not None:
            t0 = _clock()
        a_full = self._base[idx]  # fancy indexing copies
        if len(self._dyn_rows):
            member = np.arange(len(idx))[:, None]
            np.add.at(
                a_full,
                (member, self._dyn_rows[None, :], self._dyn_cols[None, :]),
                dyn_vals[idx],
            )
        a = a_full[:, : self.size, : self.size]
        b = np.asarray(rhs, dtype=self.dtype)[idx, : self.size]
        if stats is not None:
            t1 = _clock()
            stats.stamp_s += t1 - t0
        fallback = np.ones(len(idx), dtype=bool)
        try:
            x = np.linalg.solve(a, b[..., None])[..., 0]
            fallback = ~np.all(np.isfinite(x), axis=1)
            x_out[idx[~fallback]] = x[~fallback]
        except np.linalg.LinAlgError:
            # One singular slice fails the whole LAPACK batch; redo every
            # member through the serial path so clean members still get
            # their (bitwise identical) direct solutions.
            pass
        clean = int(np.count_nonzero(~fallback))
        if stats is not None:
            stats.solve_s += _clock() - t1
            stats.solves += clean
            stats.batched_solves += 1
            stats.batch_members += len(idx)
            stats.batch_fallbacks += len(idx) - clean
            for _ in range(clean):
                stats.count_backend(DENSE)
        for j in np.flatnonzero(fallback):
            k = int(idx[j])
            try:
                x_out[k], recoveries[k] = solve_dense(a[j], b[j])
            except SingularMatrixError as exc:
                errors[k] = exc

    def _solve_sparse(self, dyn_vals, rhs, idx, x_out, recoveries, errors) -> None:
        stats = active()
        if stats is not None:
            t0 = _clock()
        data = self._static_data[idx].copy()
        first = self.templates[0]
        if len(first._dyn_slots):
            member = np.arange(len(idx))[:, None]
            np.add.at(data, (member, first._dyn_slots[None, :]), dyn_vals[idx])
        if stats is not None:
            stats.stamp_s += _clock() - t0
            stats.batched_solves += 1
            stats.batch_members += len(idx)
        for j, k in enumerate(idx):
            k = int(k)
            try:
                x_out[k], recoveries[k] = self.templates[k].solve_data(
                    data[j], rhs[k]
                )
            except SingularMatrixError as exc:
                errors[k] = exc
                if stats is not None:
                    stats.batch_fallbacks += 1


def coo_matvec(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
    size: int,
) -> np.ndarray:
    """``y = A @ x`` from COO triplets, without materializing ``A``.

    ``x`` has ``size`` entries; triplets may reference the ghost ground
    index ``size`` (reads 0, writes discarded).  Used for the transient
    history term ``C (2/dt x_prev + xdot_prev)``.
    """
    y = np.zeros(size + 1, dtype=np.result_type(vals, x))
    if len(vals):
        xg = np.append(x, 0.0)
        np.add.at(y, rows, vals * xg[cols])
    return y[:size]
