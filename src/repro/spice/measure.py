"""Measurement post-processing (the library's ``.measure`` statements).

All functions operate on :class:`~repro.spice.ac.AcResult` /
:class:`~repro.spice.tran.TranResult` data (or raw arrays) and raise
:class:`~repro.errors.MeasureError` when the requested feature does not
exist in the data (no crossing, no unity-gain point, ...).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MeasureError


def _finite(value: float, what: str) -> float:
    """Guard a scalar measurement against NaN/inf.

    A non-finite measurement would otherwise flow silently into
    :class:`~repro.core.cost.CostBreakdown` and poison per-bin ordering
    (NaN compares false against everything, so ``min`` keeps whichever
    option it saw first).  Raising :class:`~repro.errors.MeasureError`
    (failure code ``BAD-METRIC``) lets the evaluation runtime absorb the
    option instead.
    """
    if not math.isfinite(value):
        raise MeasureError(f"{what} is not finite ({value!r})")
    return float(value)


# --- AC measures -----------------------------------------------------------


def magnitude_db(h: np.ndarray) -> np.ndarray:
    """Magnitude of a complex transfer function in dB."""
    return 20.0 * np.log10(np.abs(h) + 1e-300)


def phase_deg(h: np.ndarray) -> np.ndarray:
    """Unwrapped phase of a complex transfer function in degrees."""
    return np.rad2deg(np.unwrap(np.angle(h)))


def low_frequency_gain(h: np.ndarray) -> float:
    """Gain magnitude at the first (lowest) sweep point."""
    return _finite(float(np.abs(h[0])), "low-frequency gain")


def low_frequency_gain_db(h: np.ndarray) -> float:
    """Gain in dB at the first (lowest) sweep point."""
    return 20.0 * math.log10(low_frequency_gain(h) + 1e-300)


def _log_interp_crossing(
    freqs: np.ndarray, values: np.ndarray, target: float
) -> float:
    """Frequency where ``values`` first crosses down through ``target``
    (log-f interpolation).

    The search starts at the first point at-or-above the target, so a
    response that *starts below* the target (a coarse sweep catching the
    rising edge of a band-pass shape, or a gain curve whose first point
    sits a hair under unity) still reports its downward crossing instead
    of failing on the first sample.  A response that never reaches the
    target at all is a measurement error, as is one that reaches it but
    never comes back down.
    """
    above = values >= target
    above_idx = np.flatnonzero(above)
    if not len(above_idx):
        raise MeasureError("response never reaches the target level")
    start = int(above_idx[0])
    for k in range(start + 1, len(freqs)):
        if not above[k]:
            f0, f1 = freqs[k - 1], freqs[k]
            v0, v1 = values[k - 1], values[k]
            if v0 == v1:
                return float(f0)
            frac = (v0 - target) / (v0 - v1)
            return _finite(
                float(10 ** (np.log10(f0) + frac * (np.log10(f1) - np.log10(f0)))),
                "crossing frequency",
            )
    raise MeasureError("response never crosses the target level in the sweep")


def unity_gain_frequency(freqs: np.ndarray, h: np.ndarray) -> float:
    """Frequency where ``|h|`` crosses 1 (requires |h(f_min)| > 1)."""
    return _log_interp_crossing(np.asarray(freqs), np.abs(h), 1.0)


def bandwidth_3db(freqs: np.ndarray, h: np.ndarray) -> float:
    """-3dB bandwidth relative to the low-frequency gain."""
    mag = np.abs(h)
    return _log_interp_crossing(np.asarray(freqs), mag, mag[0] / math.sqrt(2.0))


def phase_margin(freqs: np.ndarray, h: np.ndarray) -> float:
    """Phase margin in degrees: ``180 + phase`` at the unity-gain frequency.

    The phase is unwrapped before interpolation, but unwrapping assumes
    less than a half-turn between adjacent sweep points; when the *raw*
    phase gap between the two samples bracketing the unity-gain crossing
    exceeds 180°, the unwrap correction applied right where the margin
    is read is guesswork (the true trajectory could have gone around
    either way), so the interpolated value is an artifact of sweep
    resolution, not a measurement — that case raises instead of
    returning a plausible wrong number.
    """
    freqs = np.asarray(freqs)
    fu = unity_gain_frequency(freqs, h)
    phase = phase_deg(h)
    logf = np.log10(freqs)
    k = int(np.searchsorted(logf, np.log10(fu)))
    k = min(max(k, 1), len(phase) - 1)
    raw = np.rad2deg(np.angle(h))
    if abs(float(raw[k] - raw[k - 1])) > 180.0:
        raise MeasureError(
            "phase wraps between the sweep points bracketing the "
            "unity-gain crossing; increase points_per_decade"
        )
    ph_u = float(np.interp(np.log10(fu), logf, phase))
    return _finite(180.0 + ph_u, "phase margin")


def input_admittance(v_port: np.ndarray, i_port: np.ndarray) -> np.ndarray:
    """Complex admittance seen at a port, ``I/V``."""
    return i_port / v_port


def capacitance_from_admittance(freqs: np.ndarray, y: np.ndarray, at_index: int = 0) -> float:
    """Extract capacitance from ``Im(Y)/omega`` at one sweep point."""
    omega = 2.0 * math.pi * float(np.asarray(freqs)[at_index])
    return _finite(float(np.imag(y[at_index]) / omega), "capacitance")


def resistance_from_admittance(y: np.ndarray, at_index: int = 0) -> float:
    """Extract parallel resistance from ``1/Re(Y)`` at one sweep point."""
    real = float(np.real(y[at_index]))
    if real == 0.0:
        raise MeasureError("port has zero real admittance")
    return _finite(1.0 / real, "resistance")


# --- transient measures ------------------------------------------------------


def crossing_times(
    t: np.ndarray,
    wave: np.ndarray,
    level: float,
    direction: str = "rise",
) -> np.ndarray:
    """All times where ``wave`` crosses ``level`` in the given direction.

    ``direction`` is ``"rise"``, ``"fall"`` or ``"both"``.  Crossing times
    are linearly interpolated between samples.
    """
    t = np.asarray(t)
    wave = np.asarray(wave)
    above = wave >= level
    changes = np.nonzero(above[1:] != above[:-1])[0]
    times = []
    for k in changes:
        rising = not above[k]
        if direction == "rise" and not rising:
            continue
        if direction == "fall" and rising:
            continue
        v0, v1 = wave[k], wave[k + 1]
        frac = (level - v0) / (v1 - v0)
        times.append(t[k] + frac * (t[k + 1] - t[k]))
    return np.asarray(times)


def delay_between(
    t: np.ndarray,
    wave_from: np.ndarray,
    wave_to: np.ndarray,
    level_from: float,
    level_to: float,
    direction_from: str = "rise",
    direction_to: str = "rise",
    occurrence: int = 0,
) -> float:
    """Delay from a crossing of one waveform to the next crossing of another."""
    from_times = crossing_times(t, wave_from, level_from, direction_from)
    if len(from_times) <= occurrence:
        raise MeasureError("reference waveform has no such crossing")
    t_ref = from_times[occurrence]
    to_times = crossing_times(t, wave_to, level_to, direction_to)
    later = to_times[to_times > t_ref]
    if len(later) == 0:
        raise MeasureError("target waveform never crosses after the reference")
    return _finite(float(later[0] - t_ref), "delay")


def oscillation_frequency(
    t: np.ndarray,
    wave: np.ndarray,
    settle_fraction: float = 0.5,
    min_cycles: int = 3,
) -> float:
    """Oscillation frequency from rising zero crossings of ``wave - mean``.

    Only the trailing ``1 - settle_fraction`` of the record is used, so
    start-up transients are excluded.  Raises
    :class:`~repro.errors.MeasureError` if fewer than ``min_cycles``
    periods are observed (i.e. the circuit is not oscillating).
    """
    t = np.asarray(t)
    wave = np.asarray(wave)
    start = int(len(t) * settle_fraction)
    tt, ww = t[start:], wave[start:]
    if len(tt) < 4:
        raise MeasureError("record too short for frequency measurement")
    swing = float(np.max(ww) - np.min(ww))
    if swing < 1e-6:
        raise MeasureError("waveform is flat; no oscillation")
    level = float(np.mean(ww))
    rises = crossing_times(tt, ww, level, "rise")
    if len(rises) < min_cycles + 1:
        raise MeasureError(
            f"only {max(0, len(rises) - 1)} full periods observed "
            f"(need {min_cycles})"
        )
    periods = np.diff(rises)
    return _finite(float(1.0 / np.mean(periods)), "oscillation frequency")


def average_power(
    t: np.ndarray, supply_current: np.ndarray, vdd: float, settle_fraction: float = 0.0
) -> float:
    """Average power drawn from a supply: ``vdd * mean(-i_source)``.

    By SPICE convention the current of a supply *source* flows from its
    positive terminal through the source, so a sourcing supply has a
    negative branch current; the sign flip makes the result positive.
    """
    t = np.asarray(t)
    i = np.asarray(supply_current)
    start = int(len(t) * settle_fraction)
    if len(t[start:]) < 2:
        raise MeasureError("record too short for power measurement")
    avg_current = float(np.trapezoid(i[start:], t[start:]) / (t[-1] - t[start]))
    return _finite(-avg_current * vdd, "average power")


def peak_to_peak(wave: np.ndarray) -> float:
    """Peak-to-peak amplitude of a waveform."""
    wave = np.asarray(wave)
    return _finite(float(np.max(wave) - np.min(wave)), "peak-to-peak amplitude")


def find_dc_zero(
    evaluate,
    lo: float,
    hi: float,
    tolerance: float = 1e-7,
    max_iterations: int = 60,
) -> float:
    """Bisection root finder used by offset measurements.

    ``evaluate`` maps a scalar input (e.g. differential input voltage) to a
    scalar response (e.g. differential output current); the root of the
    response in ``[lo, hi]`` is returned.
    """
    f_lo = evaluate(lo)
    f_hi = evaluate(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0:
        raise MeasureError(
            f"no sign change in [{lo:.4g}, {hi:.4g}] "
            f"(f={f_lo:.4g} .. {f_hi:.4g})"
        )
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        f_mid = evaluate(mid)
        if f_mid == 0.0 or (hi - lo) < tolerance:
            return mid
        if f_lo * f_mid < 0:
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
    return 0.5 * (lo + hi)


def find_dc_zero_many(
    evaluate_many,
    count: int,
    lo: float,
    hi: float,
    tolerance: float = 1e-7,
    max_iterations: int = 60,
) -> list:
    """Lock-step bisection across many members (see :func:`find_dc_zero`).

    ``evaluate_many(indices, xs)`` evaluates member ``indices[j]`` at
    input ``xs[j]`` for all entries at once — the hook where the batched
    solver stack earns its keep — and returns, per entry, the float
    response or a captured exception.  Each member's bracket updates
    replay :func:`find_dc_zero`'s arithmetic exactly (including the
    order of the endpoint evaluations and the zero/tolerance early
    exits), so the returned roots are bitwise identical to ``count``
    independent serial calls.  A member whose evaluation raised — or
    whose bracket holds no sign change — carries the exception in the
    returned list instead of a root.
    """
    results: list = [None] * count
    los = [lo] * count
    his = [hi] * count
    f_los = [0.0] * count

    live = list(range(count))
    for i, fv in zip(live, evaluate_many(live, [lo] * len(live))):
        if isinstance(fv, Exception):
            results[i] = fv
        else:
            f_los[i] = fv
    live = [i for i in live if results[i] is None]
    for i, fv in zip(live, evaluate_many(live, [hi] * len(live))):
        if isinstance(fv, Exception):
            results[i] = fv
        elif f_los[i] == 0.0:
            results[i] = lo
        elif fv == 0.0:
            results[i] = hi
        elif f_los[i] * fv > 0:
            results[i] = MeasureError(
                f"no sign change in [{lo:.4g}, {hi:.4g}] "
                f"(f={f_los[i]:.4g} .. {fv:.4g})"
            )
    live = [i for i in live if results[i] is None]

    for _ in range(max_iterations):
        if not live:
            break
        mids = [0.5 * (los[i] + his[i]) for i in live]
        responses = evaluate_many(live, mids)
        survivors = []
        for i, mid, fv in zip(live, mids, responses):
            if isinstance(fv, Exception):
                results[i] = fv
                continue
            if fv == 0.0 or (his[i] - los[i]) < tolerance:
                results[i] = mid
                continue
            if f_los[i] * fv < 0:
                his[i] = mid
            else:
                los[i], f_los[i] = mid, fv
            survivors.append(i)
        live = survivors
    for i in live:
        results[i] = 0.5 * (los[i] + his[i])
    return results
