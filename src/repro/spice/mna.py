"""Modified nodal analysis (MNA) assembly.

:class:`CompiledCircuit` resolves a :class:`~repro.spice.netlist.Circuit`
into index arrays and vectorized parameter arrays so the analyses can
assemble system matrices quickly.  Unknowns are ordered as

``[node voltages (0..N-1), branch currents (N..N+M-1)]``

where branches exist for voltage sources, VCVS elements and inductors.
Ground is mapped to a ghost index equal to ``size`` — matrices are built
one row/column larger and the ghost row/column is simply ignored — which
keeps every stamp a branch-free vectorized ``np.add.at``.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.devices.mosfet import MosEval, evaluate_mosfets, resolve_params
from repro.errors import NetlistError
from repro.spice import kernel
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.kernel import (  # noqa: F401  (re-exported for back-compat)
    RECOVERY_TIKHONOV,
    TIKHONOV_LAMBDA,
)
from repro.spice.netlist import Circuit, is_ground
from repro.tech.rules import DesignRules


def solve_mna(a: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, str | None]:
    """Solve one dense MNA system with a singularity fallback.

    A clean direct solve returns ``(x, None)``; a singular (or
    non-finite) system falls through to the Tikhonov-regularized rescue
    shared with the sparse backend (:func:`repro.spice.kernel
    .tikhonov_rescue`), returning ``(x, "tikhonov")`` so callers can
    annotate the recovery.

    Raises:
        SingularMatrixError: When even the regularized solve yields a
            non-finite solution.
    """
    return kernel.solve_dense(a, rhs)


class CompiledCircuit:
    """A circuit compiled to MNA index/parameter arrays.

    Args:
        circuit: The netlist to compile.
        rules: Design rules used to resolve MOSFET geometry into model
            parameters (fin width, gate length).
    """

    def __init__(self, circuit: Circuit, rules: DesignRules):
        self.circuit = circuit
        self.rules = rules

        self.nodes: list[str] = circuit.nodes()
        self.node_index: dict[str, int] = {n: i for i, n in enumerate(self.nodes)}
        self.num_nodes = len(self.nodes)

        self.vsources: list[VoltageSource] = []
        self.vcvs_elements: list[Vcvs] = []
        self.inductors: list[Inductor] = []
        self.isources: list[CurrentSource] = []
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.vccs_elements: list[Vccs] = []
        self.mos_elements: list[Mosfet] = []

        for elem in circuit:
            if isinstance(elem, Resistor):
                self.resistors.append(elem)
            elif isinstance(elem, Capacitor):
                self.capacitors.append(elem)
            elif isinstance(elem, VoltageSource):
                self.vsources.append(elem)
            elif isinstance(elem, CurrentSource):
                self.isources.append(elem)
            elif isinstance(elem, Vcvs):
                self.vcvs_elements.append(elem)
            elif isinstance(elem, Vccs):
                self.vccs_elements.append(elem)
            elif isinstance(elem, Inductor):
                self.inductors.append(elem)
            elif isinstance(elem, Mosfet):
                self.mos_elements.append(elem)
            else:
                raise NetlistError(f"unsupported element type {type(elem).__name__}")

        self.num_branches = (
            len(self.vsources) + len(self.vcvs_elements) + len(self.inductors)
        )
        self.size = self.num_nodes + self.num_branches
        self.ghost = self.size  # index used for ground stamps

        self.branch_index: dict[str, int] = {}
        offset = self.num_nodes
        for src in self.vsources:
            self.branch_index[src.name] = offset
            offset += 1
        for e in self.vcvs_elements:
            self.branch_index[e.name] = offset
            offset += 1
        for ind in self.inductors:
            self.branch_index[ind.name] = offset
            offset += 1

        self._build_linear_arrays()
        self._build_mos_arrays()

        #: Lazily built solver-kernel templates, keyed per (analysis,
        #: backend) by the analyses (see :meth:`kernel_template`).
        self._kernel_templates: dict = {}

    # -- indexing --------------------------------------------------------

    def index_of(self, node: str) -> int:
        """Matrix index of a node (ground maps to the ghost index)."""
        if is_ground(node):
            return self.ghost
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def voltage(self, x: np.ndarray, node: str) -> float | np.ndarray:
        """Voltage of ``node`` from a solution vector (0 for ground)."""
        idx = self.index_of(node)
        if idx == self.ghost:
            return x[..., 0] * 0.0
        return x[..., idx]

    # -- precomputation ---------------------------------------------------

    def _build_linear_arrays(self) -> None:
        idx = self.index_of
        self._res_a = np.array([idx(r.a) for r in self.resistors], dtype=int)
        self._res_b = np.array([idx(r.b) for r in self.resistors], dtype=int)
        self._res_g = np.array([1.0 / r.value for r in self.resistors])

        self._cap_a = np.array([idx(c.a) for c in self.capacitors], dtype=int)
        self._cap_b = np.array([idx(c.b) for c in self.capacitors], dtype=int)
        self._cap_c = np.array([c.value for c in self.capacitors])

    def _build_mos_arrays(self) -> None:
        idx = self.index_of
        mos = self.mos_elements
        self._mos_d = np.array([idx(m.d) for m in mos], dtype=int)
        self._mos_g = np.array([idx(m.g) for m in mos], dtype=int)
        self._mos_s = np.array([idx(m.s) for m in mos], dtype=int)
        self._mos_b = np.array([idx(m.b) for m in mos], dtype=int)

        params = [
            resolve_params(
                m.card,
                self.rules,
                m.geometry,
                m.lde,
                m.cdb_override,
                m.csb_override,
            )
            for m in mos
        ]
        self._mos_pol = np.array([p.polarity for p in params], dtype=int)
        self._mos_vth = np.array(
            [p.vth + m.vth_mismatch for p, m in zip(params, mos)]
        )
        self._mos_n = np.array([p.slope_factor for p in params])
        self._mos_ispec = np.array([p.ispec for p in params])
        self._mos_lam = np.array([p.lambda_clm for p in params])
        self._mos_theta = np.array([p.theta for p in params])
        self._mos_coxwl = np.array([p.cox_wl for p in params])
        self._mos_cov = np.array([p.cov for p in params])
        self._mos_cdb = np.array([p.cdb for p in params])
        self._mos_csb = np.array([p.csb for p in params])
        self.mos_params = params

    # -- linear matrices ----------------------------------------------------

    def _empty_matrix(self, dtype=float) -> np.ndarray:
        return np.zeros((self.size + 1, self.size + 1), dtype=dtype)

    def _empty_vector(self, dtype=float) -> np.ndarray:
        return np.zeros(self.size + 1, dtype=dtype)

    def conductance_linear(self) -> np.ndarray:
        """Constant conductance/branch-topology matrix.

        Contains resistor stamps, VCCS stamps, and the topology rows of
        voltage sources and VCVS elements.  Inductor branch rows are
        analysis-dependent and stamped by each analysis.
        """
        a = self._empty_matrix()
        _stamp_two_terminal(a, self._res_a, self._res_b, self._res_g)

        idx = self.index_of
        for e in self.vccs_elements:
            na, nb = idx(e.a), idx(e.b)
            cp, cm = idx(e.ctrl_plus), idx(e.ctrl_minus)
            a[na, cp] += e.gain
            a[na, cm] -= e.gain
            a[nb, cp] -= e.gain
            a[nb, cm] += e.gain

        for src in self.vsources:
            br = self.branch_index[src.name]
            p, n = idx(src.plus), idx(src.minus)
            a[p, br] += 1.0
            a[n, br] -= 1.0
            a[br, p] += 1.0
            a[br, n] -= 1.0

        for e in self.vcvs_elements:
            br = self.branch_index[e.name]
            p, n = idx(e.plus), idx(e.minus)
            cp, cm = idx(e.ctrl_plus), idx(e.ctrl_minus)
            a[p, br] += 1.0
            a[n, br] -= 1.0
            a[br, p] += 1.0
            a[br, n] -= 1.0
            a[br, cp] -= e.gain
            a[br, cm] += e.gain

        return a

    def capacitance_linear(self) -> np.ndarray:
        """Capacitance matrix of the fixed (element) capacitors."""
        c = self._empty_matrix()
        _stamp_two_terminal(c, self._cap_a, self._cap_b, self._cap_c)
        return c

    def stamp_inductors_dc(self, a: np.ndarray) -> None:
        """Stamp inductors as shorts (their branch rows) for DC analysis."""
        idx = self.index_of
        for ind in self.inductors:
            br = self.branch_index[ind.name]
            na, nb = idx(ind.a), idx(ind.b)
            a[na, br] += 1.0
            a[nb, br] -= 1.0
            a[br, na] += 1.0
            a[br, nb] -= 1.0

    def source_rhs(self, t: float | None = None, scale: float = 1.0) -> np.ndarray:
        """Right-hand side from independent sources.

        ``t=None`` uses DC values; otherwise waveforms are evaluated at
        ``t``.  ``scale`` multiplies all source values (source stepping).
        """
        rhs = self._empty_vector()
        idx = self.index_of
        for src in self.isources:
            value = src.waveform.dc_value if t is None else src.waveform.value(t)
            value *= scale
            rhs[idx(src.a)] -= value
            rhs[idx(src.b)] += value
        for src in self.vsources:
            value = src.waveform.dc_value if t is None else src.waveform.value(t)
            rhs[self.branch_index[src.name]] += value * scale
        return rhs

    def structurally_like(self, other: Circuit) -> bool:
        """Whether ``other`` would compile to this exact MNA structure.

        True when every element matches this compiled circuit's —
        independent sources may differ in their (DC) waveform values,
        everything else must be equal — so a solve against ``other`` can
        reuse this compiled system with only the right-hand side rebuilt
        (:meth:`source_rhs_like`).  Matrix stamps of independent sources
        are pure topology (±1 entries), so differing source *values*
        cannot change the system matrix.
        """
        mine = self.circuit.elements
        theirs = other.elements
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if type(a) is not type(b):
                return False
            if isinstance(a, VoltageSource):
                if (
                    a.name != b.name
                    or a.plus != b.plus
                    or a.minus != b.minus
                    or a.ac_magnitude != b.ac_magnitude
                    or a.ac_phase_deg != b.ac_phase_deg
                    or type(a.waveform) is not type(b.waveform)
                ):
                    return False
            elif isinstance(a, CurrentSource):
                if (
                    a.name != b.name
                    or a.a != b.a
                    or a.b != b.b
                    or a.ac_magnitude != b.ac_magnitude
                    or a.ac_phase_deg != b.ac_phase_deg
                    or type(a.waveform) is not type(b.waveform)
                ):
                    return False
            elif a != b:
                return False
        return self.nodes == other.nodes()

    def source_rhs_like(self, other: Circuit) -> np.ndarray:
        """DC source vector of ``other`` stamped with *this* circuit's
        indices.

        The compile-once path of batched bisection sweeps: successive
        sweep inputs rebuild the (cheap) netlist but change only
        independent-source values, so the expensive compile is reused
        and only the right-hand side is restamped.  Callers must have
        established :meth:`structurally_like` first.
        """
        values = {
            e.name: e.waveform.dc_value
            for e in other.elements
            if isinstance(e, (VoltageSource, CurrentSource))
        }
        rhs = self._empty_vector()
        idx = self.index_of
        for src in self.isources:
            value = values[src.name]
            rhs[idx(src.a)] -= value
            rhs[idx(src.b)] += value
        for src in self.vsources:
            rhs[self.branch_index[src.name]] += values[src.name]
        return rhs

    def ac_source_rhs(self) -> np.ndarray:
        """Complex RHS from the AC magnitudes/phases of all sources."""
        rhs = self._empty_vector(dtype=complex)
        idx = self.index_of
        for src in self.isources:
            if src.ac_magnitude:
                phasor = src.ac_magnitude * np.exp(
                    1j * np.deg2rad(src.ac_phase_deg)
                )
                rhs[idx(src.a)] -= phasor
                rhs[idx(src.b)] += phasor
        for src in self.vsources:
            if src.ac_magnitude:
                phasor = src.ac_magnitude * np.exp(
                    1j * np.deg2rad(src.ac_phase_deg)
                )
                rhs[self.branch_index[src.name]] += phasor
        return rhs

    # -- COO triplet providers (solver-kernel assembly) ---------------------

    def kernel_template(self, key, builder: Callable[[], "kernel.SystemTemplate"]):
        """A cached :class:`~repro.spice.kernel.SystemTemplate`.

        Templates hold the symbolic work of an analysis — the static
        matrix part and the sparse pattern — which depends only on the
        circuit topology, so each (analysis, backend) pair is built once
        per compiled circuit and reused across every Newton iteration,
        time step and frequency point.
        """
        template = self._kernel_templates.get(key)
        if template is None:
            template = builder()
            self._kernel_templates[key] = template
        return template

    def static_conductance_triplets(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets of the constant conductance/topology part.

        Resistors, VCCS gains, the topology rows of voltage sources,
        VCVS elements **and inductors** — everything every analysis
        stamps identically (the frequency-/step-dependent inductor
        branch diagonal is a dynamic slot; see
        :meth:`inductor_branch_indices`).  Indices may reference the
        ghost ground index.
        """
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def put(i: int, j: int, g: float) -> None:
            rows.append(i)
            cols.append(j)
            vals.append(g)

        for na, nb, g in zip(self._res_a, self._res_b, self._res_g):
            put(na, na, g)
            put(nb, nb, g)
            put(na, nb, -g)
            put(nb, na, -g)

        idx = self.index_of
        for e in self.vccs_elements:
            na, nb = idx(e.a), idx(e.b)
            cp, cm = idx(e.ctrl_plus), idx(e.ctrl_minus)
            put(na, cp, e.gain)
            put(na, cm, -e.gain)
            put(nb, cp, -e.gain)
            put(nb, cm, e.gain)

        for src in self.vsources:
            br = self.branch_index[src.name]
            p, n = idx(src.plus), idx(src.minus)
            put(p, br, 1.0)
            put(n, br, -1.0)
            put(br, p, 1.0)
            put(br, n, -1.0)

        for e in self.vcvs_elements:
            br = self.branch_index[e.name]
            p, n = idx(e.plus), idx(e.minus)
            cp, cm = idx(e.ctrl_plus), idx(e.ctrl_minus)
            put(p, br, 1.0)
            put(n, br, -1.0)
            put(br, p, 1.0)
            put(br, n, -1.0)
            put(br, cp, -e.gain)
            put(br, cm, e.gain)

        for ind in self.inductors:
            br = self.branch_index[ind.name]
            na, nb = idx(ind.a), idx(ind.b)
            put(na, br, 1.0)
            put(nb, br, -1.0)
            put(br, na, 1.0)
            put(br, nb, -1.0)

        return (
            np.array(rows, dtype=np.intp),
            np.array(cols, dtype=np.intp),
            np.array(vals, dtype=float),
        )

    def node_diag_indices(self) -> np.ndarray:
        """Node-voltage diagonal indices (gmin/force dynamic slots)."""
        return np.arange(self.num_nodes, dtype=np.intp)

    def mos_conductance_pattern(self) -> tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of the MOSFET Newton-companion conductances."""
        d, g, s = self._mos_d, self._mos_g, self._mos_s
        return (
            np.concatenate([d, d, d, s, s, s]),
            np.concatenate([d, g, s, d, g, s]),
        )

    def mos_conductance_values(self, ev: MosEval | None) -> np.ndarray:
        """Values matching :meth:`mos_conductance_pattern` at an eval."""
        if ev is None:
            return np.empty(0)
        return np.concatenate(
            [ev.gds, ev.gm, ev.gms, -ev.gds, -ev.gm, -ev.gms]
        )

    def capacitor_pattern(self) -> tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of the fixed (element) capacitor stamps."""
        return _two_terminal_pattern(self._cap_a, self._cap_b)

    def capacitor_values(self) -> np.ndarray:
        """Values matching :meth:`capacitor_pattern` (farads)."""
        return _two_terminal_values(self._cap_c)

    def mos_capacitance_pattern(self) -> tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of the MOSFET Meyer-capacitance stamps."""
        d, g, s, b = self._mos_d, self._mos_g, self._mos_s, self._mos_b
        rows = []
        cols = []
        for ia, ib in ((g, s), (g, d), (g, b), (d, b), (s, b)):
            pr, pc = _two_terminal_pattern(ia, ib)
            rows.append(pr)
            cols.append(pc)
        return np.concatenate(rows), np.concatenate(cols)

    def mos_capacitance_values(self, ev: MosEval | None) -> np.ndarray:
        """Values matching :meth:`mos_capacitance_pattern` at a bias."""
        if ev is None:
            return np.empty(0)
        return np.concatenate(
            [
                _two_terminal_values(c)
                for c in (ev.cgs, ev.cgd, ev.cgb, ev.cdb, ev.csb)
            ]
        )

    def inductor_branch_indices(self) -> np.ndarray:
        """Branch-diagonal indices of the inductors (dynamic slots: the
        transient ``-L/dt`` / AC ``-jωL`` entries)."""
        return np.array(
            [self.branch_index[e.name] for e in self.inductors], dtype=np.intp
        )

    def inductor_inductances(self) -> np.ndarray:
        """Inductances matching :meth:`inductor_branch_indices` (henry)."""
        return np.array([e.value for e in self.inductors], dtype=float)

    # -- MOSFET evaluation and stamping ------------------------------------

    def eval_mosfets(self, x: np.ndarray) -> MosEval | None:
        """Evaluate all MOSFETs at the solution vector ``x``."""
        if not self.mos_elements:
            return None
        stats = kernel.active()
        if stats is not None:
            t0 = time.perf_counter()
            ev = self._eval_mosfets(x)
            stats.device_eval_s += time.perf_counter() - t0
            return ev
        return self._eval_mosfets(x)

    def _eval_mosfets(self, x: np.ndarray) -> MosEval:
        xg = np.append(x, 0.0)  # ghost ground entry
        vg = xg[self._mos_g]
        vd = xg[self._mos_d]
        vs = xg[self._mos_s]
        return evaluate_mosfets(
            self._mos_pol,
            self._mos_vth,
            self._mos_n,
            self._mos_ispec,
            self._mos_lam,
            self._mos_theta,
            self._mos_coxwl,
            self._mos_cov,
            self._mos_cdb,
            self._mos_csb,
            vg,
            vd,
            vs,
        )

    def stamp_mosfets(
        self,
        a: np.ndarray,
        rhs: np.ndarray,
        ev: MosEval,
        x: np.ndarray,
    ) -> None:
        """Stamp the Newton companion model of every MOSFET.

        ``a`` receives the conductances (gm, gds, gms) and ``rhs`` the
        linearization-equivalent current sources, evaluated at ``x``.
        """
        if ev is None:
            return
        d, g, s = self._mos_d, self._mos_g, self._mos_s
        gm, gds = ev.gm, ev.gds
        gms = ev.gms

        np.add.at(a, (d, d), gds)
        np.add.at(a, (d, g), gm)
        np.add.at(a, (d, s), gms)
        np.add.at(a, (s, d), -gds)
        np.add.at(a, (s, g), -gm)
        np.add.at(a, (s, s), -gms)

        self.stamp_mos_rhs(rhs, ev, x)

    def stamp_mos_rhs(self, rhs: np.ndarray, ev: MosEval, x: np.ndarray) -> None:
        """Stamp only the linearization-equivalent current sources.

        The conductance half of the companion model goes through the
        solver-kernel template (:meth:`mos_conductance_values`); this is
        the right-hand-side half, shared with :meth:`stamp_mosfets`.
        """
        if ev is None:
            return
        d, g, s = self._mos_d, self._mos_g, self._mos_s
        xg = np.append(x, 0.0)
        ieq = ev.ids - ev.gm * xg[g] - ev.gds * xg[d] - ev.gms * xg[s]
        np.add.at(rhs, d, -ieq)
        np.add.at(rhs, s, ieq)

    def stamp_mosfets_ac(self, a: np.ndarray, ev: MosEval) -> None:
        """Stamp only the small-signal conductances (for AC analysis)."""
        if ev is None:
            return
        d, g, s = self._mos_d, self._mos_g, self._mos_s
        np.add.at(a, (d, d), ev.gds.astype(a.dtype))
        np.add.at(a, (d, g), ev.gm.astype(a.dtype))
        np.add.at(a, (d, s), ev.gms.astype(a.dtype))
        np.add.at(a, (s, d), -ev.gds.astype(a.dtype))
        np.add.at(a, (s, g), -ev.gm.astype(a.dtype))
        np.add.at(a, (s, s), -ev.gms.astype(a.dtype))

    def mos_capacitance(self, ev: MosEval, dtype=float) -> np.ndarray:
        """Capacitance matrix contribution of all MOSFETs at a bias point."""
        c = self._empty_matrix(dtype=dtype)
        if ev is None:
            return c
        d, g, s, b = self._mos_d, self._mos_g, self._mos_s, self._mos_b
        _stamp_two_terminal(c, g, s, ev.cgs.astype(dtype))
        _stamp_two_terminal(c, g, d, ev.cgd.astype(dtype))
        _stamp_two_terminal(c, g, b, ev.cgb.astype(dtype))
        _stamp_two_terminal(c, d, b, ev.cdb.astype(dtype))
        _stamp_two_terminal(c, s, b, ev.csb.astype(dtype))
        return c

    def mos_eval_by_name(self, ev: MosEval, name: str) -> dict[str, float]:
        """Per-device operating-point data for the MOSFET called ``name``."""
        for i, m in enumerate(self.mos_elements):
            if m.name == name:
                return {
                    "id": float(ev.ids[i]),
                    "gm": float(ev.gm[i]),
                    "gds": float(ev.gds[i]),
                    "cgs": float(ev.cgs[i]),
                    "cgd": float(ev.cgd[i]),
                    "cgb": float(ev.cgb[i]),
                    "cdb": float(ev.cdb[i]),
                    "csb": float(ev.csb[i]),
                }
        raise NetlistError(f"no MOSFET named {name!r}")


def _stamp_two_terminal(
    a: np.ndarray, ia: np.ndarray, ib: np.ndarray, values: np.ndarray
) -> None:
    """Stamp two-terminal admittance-like values into matrix ``a``."""
    if len(np.atleast_1d(values)) == 0:
        return
    np.add.at(a, (ia, ia), values)
    np.add.at(a, (ib, ib), values)
    np.add.at(a, (ia, ib), -values)
    np.add.at(a, (ib, ia), -values)


def _two_terminal_pattern(
    ia: np.ndarray, ib: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """COO (rows, cols) of two-terminal stamps — same entry order as
    :func:`_stamp_two_terminal` so values pair up via
    :func:`_two_terminal_values`."""
    return (
        np.concatenate([ia, ib, ia, ib]),
        np.concatenate([ia, ib, ib, ia]),
    )


def _two_terminal_values(values: np.ndarray) -> np.ndarray:
    """COO values matching :func:`_two_terminal_pattern`."""
    return np.concatenate([values, values, -values, -values])
