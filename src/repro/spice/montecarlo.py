"""Monte-Carlo mismatch analysis.

The paper's designers "consider random variations during circuit sizing"
and the offset spec is defined against the random offset.  This module
samples per-device threshold mismatch (sigma from the model card's
per-fin Pelgrom coefficient) and re-evaluates a caller-supplied
measurement, giving the statistical counterpart to the deterministic
systematic-offset testbenches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.devices.mosfet import resolve_params
from repro.errors import SimulationError
from repro.spice.netlist import Circuit
from repro.tech.rules import DesignRules


@dataclass
class MonteCarloResult:
    """Samples and summary statistics of a Monte-Carlo run."""

    samples: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1)) if len(self.samples) > 1 else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def __len__(self) -> int:
        return len(self.samples)


def run_monte_carlo(
    circuit: Circuit,
    rules: DesignRules,
    evaluate: Callable[[Circuit], float],
    n_samples: int = 50,
    seed: int = 1,
    match_groups: list[tuple[str, ...]] | None = None,
) -> MonteCarloResult:
    """Sample threshold mismatch and re-evaluate a measurement.

    Args:
        circuit: The netlist whose MOSFETs receive mismatch.
        rules: Design rules (resolve per-device sigma from fin counts).
        evaluate: Callable mapping a perturbed circuit to one number.
        n_samples: Number of Monte-Carlo samples.
        seed: RNG seed (deterministic runs).
        match_groups: Optional groups of device names whose mismatch is
            *differential*: within a group, samples are drawn
            independently but shifted to zero mean, modelling matched
            devices on a common centroid (systematic part removed).

    Returns:
        The sampled measurement distribution.
    """
    from dataclasses import replace

    if n_samples < 1:
        raise SimulationError("n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    mosfets = circuit.mosfets()
    if not mosfets:
        raise SimulationError("circuit has no MOSFETs to perturb")

    sigmas = {
        m.name: resolve_params(m.card, rules, m.geometry, m.lde).sigma_vth
        for m in mosfets
    }
    groups = match_groups or []
    grouped = {name for group in groups for name in group}

    result = MonteCarloResult()
    for _ in range(n_samples):
        shifts: dict[str, float] = {}
        for m in mosfets:
            if m.name not in grouped:
                shifts[m.name] = rng.normal(0.0, sigmas[m.name])
        for group in groups:
            draws = {name: rng.normal(0.0, sigmas[name]) for name in group}
            mean = sum(draws.values()) / len(draws)
            for name, value in draws.items():
                shifts[name] = value - mean

        perturbed = Circuit(f"{circuit.name}_mc")
        perturbed.ports = list(circuit.ports)
        for elem in circuit.elements:
            if elem.name in shifts:
                perturbed.add(
                    replace(
                        elem,
                        vth_mismatch=elem.vth_mismatch + shifts[elem.name],
                    )
                )
            else:
                perturbed.add(elem)
        result.samples.append(float(evaluate(perturbed)))
    return result
