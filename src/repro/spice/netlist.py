"""The :class:`Circuit` netlist container.

A circuit is a flat collection of elements plus an optional list of
*ports* (externally visible nodes).  Hierarchy is handled by
:meth:`Circuit.instantiate`, which merges a child circuit into the parent
with its ports connected to parent nets and its internal nodes prefixed —
the same flatten-at-elaboration approach real analog flows use before
simulation.

Ground is spelled ``"0"`` or ``"gnd"`` (case-insensitive).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.devices.lde import LdeContext
from repro.devices.mosfet import MosGeometry
from repro.errors import NetlistError
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.waveforms import Dc, Waveform
from repro.tech.finfet import MosModelCard

GROUND_NAMES = ("0", "gnd", "GND", "vss!", "VSS!")


def is_ground(node: str) -> bool:
    """True if ``node`` names the global ground net."""
    return node in GROUND_NAMES or node.lower() == "gnd"


@dataclass
class Circuit:
    """A flat netlist of elements.

    Elements are added through the typed ``add_*`` helpers, which also
    enforce unique instance names.  Node names are free-form strings.
    """

    name: str = "circuit"

    def __post_init__(self) -> None:
        self._elements: list[Element] = []
        self._names: set[str] = set()
        self.ports: list[str] = []

    # -- element management --------------------------------------------

    def add(self, element: Element) -> Element:
        """Add a pre-built element, enforcing unique names."""
        if element.name in self._names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        self._names.add(element.name)
        self._elements.append(element)
        return element

    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements, in insertion order."""
        return tuple(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def element(self, name: str) -> Element:
        """Look up an element by instance name."""
        for elem in self._elements:
            if elem.name == name:
                return elem
        raise NetlistError(f"no element named {name!r} in circuit {self.name!r}")

    def replace_element(self, name: str, new_element: Element) -> None:
        """Swap the element called ``name`` for ``new_element`` in place."""
        for i, elem in enumerate(self._elements):
            if elem.name == name:
                if new_element.name != name and new_element.name in self._names:
                    raise NetlistError(
                        f"duplicate element name {new_element.name!r}"
                    )
                self._names.discard(name)
                self._names.add(new_element.name)
                self._elements[i] = new_element
                return
        raise NetlistError(f"no element named {name!r} in circuit {self.name!r}")

    def remove_element(self, name: str) -> None:
        """Remove the element called ``name``."""
        for i, elem in enumerate(self._elements):
            if elem.name == name:
                del self._elements[i]
                self._names.discard(name)
                return
        raise NetlistError(f"no element named {name!r} in circuit {self.name!r}")

    # -- typed convenience adders ---------------------------------------

    def add_resistor(self, name: str, a: str, b: str, value: float) -> Resistor:
        return self.add(Resistor(name, a, b, value))  # type: ignore[return-value]

    def add_capacitor(self, name: str, a: str, b: str, value: float) -> Capacitor:
        return self.add(Capacitor(name, a, b, value))  # type: ignore[return-value]

    def add_inductor(self, name: str, a: str, b: str, value: float) -> Inductor:
        return self.add(Inductor(name, a, b, value))  # type: ignore[return-value]

    def add_vsource(
        self,
        name: str,
        plus: str,
        minus: str,
        waveform: Waveform | float = 0.0,
        ac_magnitude: float = 0.0,
        ac_phase_deg: float = 0.0,
    ) -> VoltageSource:
        if isinstance(waveform, (int, float)):
            waveform = Dc(float(waveform))
        return self.add(  # type: ignore[return-value]
            VoltageSource(name, plus, minus, waveform, ac_magnitude, ac_phase_deg)
        )

    def add_isource(
        self,
        name: str,
        a: str,
        b: str,
        waveform: Waveform | float = 0.0,
        ac_magnitude: float = 0.0,
        ac_phase_deg: float = 0.0,
    ) -> CurrentSource:
        if isinstance(waveform, (int, float)):
            waveform = Dc(float(waveform))
        return self.add(  # type: ignore[return-value]
            CurrentSource(name, a, b, waveform, ac_magnitude, ac_phase_deg)
        )

    def add_vcvs(
        self, name: str, plus: str, minus: str, cp: str, cm: str, gain: float
    ) -> Vcvs:
        return self.add(Vcvs(name, plus, minus, cp, cm, gain))  # type: ignore[return-value]

    def add_vccs(
        self, name: str, a: str, b: str, cp: str, cm: str, gain: float
    ) -> Vccs:
        return self.add(Vccs(name, a, b, cp, cm, gain))  # type: ignore[return-value]

    def add_mosfet(
        self,
        name: str,
        d: str,
        g: str,
        s: str,
        b: str,
        card: MosModelCard,
        geometry: MosGeometry,
        lde: LdeContext | None = None,
        cdb_override: float | None = None,
        csb_override: float | None = None,
        vth_mismatch: float = 0.0,
    ) -> Mosfet:
        return self.add(  # type: ignore[return-value]
            Mosfet(
                name,
                d,
                g,
                s,
                b,
                card,
                geometry,
                lde or LdeContext.ideal(),
                cdb_override,
                csb_override,
                vth_mismatch,
            )
        )

    # -- node queries -----------------------------------------------------

    def nodes(self) -> list[str]:
        """All non-ground node names referenced by elements, sorted."""
        seen: set[str] = set()
        for elem in self._elements:
            for node in _element_nodes(elem):
                if not is_ground(node):
                    seen.add(node)
        return sorted(seen)

    def mosfets(self) -> list[Mosfet]:
        """All MOSFET elements."""
        return [e for e in self._elements if isinstance(e, Mosfet)]

    def elements_on_node(self, node: str) -> list[Element]:
        """Elements with at least one terminal on ``node``."""
        return [e for e in self._elements if node in _element_nodes(e)]

    # -- hierarchy ---------------------------------------------------------

    def instantiate(
        self,
        child: "Circuit",
        instance_name: str,
        port_map: dict[str, str],
    ) -> None:
        """Merge ``child`` into this circuit as instance ``instance_name``.

        ``port_map`` maps child port names to parent net names; every child
        port must be mapped.  Internal child nodes are renamed to
        ``instance_name + "." + node``; element names are prefixed the same
        way.  Ground is global and passes through unchanged.
        """
        missing = [p for p in child.ports if p not in port_map]
        if missing:
            raise NetlistError(
                f"instantiating {child.name!r}: unmapped ports {missing}"
            )
        unknown = [p for p in port_map if p not in child.ports]
        if unknown:
            raise NetlistError(
                f"instantiating {child.name!r}: {unknown} are not ports"
            )

        def rename(node: str) -> str:
            if is_ground(node):
                return node
            if node in port_map:
                return port_map[node]
            return f"{instance_name}.{node}"

        for elem in child.elements:
            self.add(_rename_element(elem, f"{instance_name}.{elem.name}", rename))

    def copy(self, name: str | None = None) -> "Circuit":
        """A shallow structural copy (elements are immutable, so shared)."""
        dup = Circuit(name or self.name)
        dup.ports = list(self.ports)
        for elem in self._elements:
            dup.add(elem)
        return dup


def _element_nodes(elem: Element) -> tuple[str, ...]:
    if isinstance(elem, (Resistor, Capacitor, Inductor, CurrentSource)):
        return (elem.a, elem.b)
    if isinstance(elem, VoltageSource):
        return (elem.plus, elem.minus)
    if isinstance(elem, Vcvs):
        return (elem.plus, elem.minus, elem.ctrl_plus, elem.ctrl_minus)
    if isinstance(elem, Vccs):
        return (elem.a, elem.b, elem.ctrl_plus, elem.ctrl_minus)
    if isinstance(elem, Mosfet):
        return (elem.d, elem.g, elem.s, elem.b)
    raise NetlistError(f"unknown element type {type(elem).__name__}")


def element_nodes(elem: Element) -> tuple[str, ...]:
    """Public accessor for an element's node names."""
    return _element_nodes(elem)


def _rename_element(elem: Element, new_name: str, rename) -> Element:
    if isinstance(elem, (Resistor, Capacitor, Inductor, CurrentSource)):
        return replace(elem, name=new_name, a=rename(elem.a), b=rename(elem.b))
    if isinstance(elem, VoltageSource):
        return replace(
            elem, name=new_name, plus=rename(elem.plus), minus=rename(elem.minus)
        )
    if isinstance(elem, Vcvs):
        return replace(
            elem,
            name=new_name,
            plus=rename(elem.plus),
            minus=rename(elem.minus),
            ctrl_plus=rename(elem.ctrl_plus),
            ctrl_minus=rename(elem.ctrl_minus),
        )
    if isinstance(elem, Vccs):
        return replace(
            elem,
            name=new_name,
            a=rename(elem.a),
            b=rename(elem.b),
            ctrl_plus=rename(elem.ctrl_plus),
            ctrl_minus=rename(elem.ctrl_minus),
        )
    if isinstance(elem, Mosfet):
        return replace(
            elem,
            name=new_name,
            d=rename(elem.d),
            g=rename(elem.g),
            s=rename(elem.s),
            b=rename(elem.b),
        )
    raise NetlistError(f"unknown element type {type(elem).__name__}")
