"""The testbench abstraction used by primitive metric evaluation.

A :class:`Testbench` owns a fully-stimulated circuit (device under test
plus excitations, bias sources and loads) and a set of named *measures*,
each a callable that extracts one number from the analysis results.  This
mirrors the paper's "primitive testbench ... a SPICE file that contains
excitation and measure statements required to compute the metric".

Testbenches are deliberately small: the circuit is compiled once and the
requested analyses (op / ac / tran) run lazily and are cached, so several
measures can share one simulation — the reason the paper's per-primitive
evaluation costs seconds, and ours milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.spice.ac import AcResult, ac_analysis
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.mna import CompiledCircuit
from repro.spice.netlist import Circuit
from repro.spice.tran import TranResult, transient
from repro.tech.rules import DesignRules


@dataclass
class AcSpec:
    """Parameters of the testbench's AC sweep."""

    f_start: float = 1.0e4
    f_stop: float = 1.0e11
    points_per_decade: int = 10


@dataclass
class TranSpec:
    """Parameters of the testbench's transient run."""

    t_stop: float
    dt: float
    ics: dict[str, float] = field(default_factory=dict)


class Testbench:
    """A circuit plus named measurements.

    Args:
        circuit: The stimulated circuit.
        rules: Design rules for MOSFET parameter resolution.
        ac_spec: AC sweep parameters, if any measure needs AC data.
        tran_spec: Transient parameters, if any measure needs a transient.

    Measures are registered with :meth:`add_measure`; each receives this
    testbench and must return a float.  Analyses run lazily through
    :attr:`op`, :attr:`ac` and :attr:`tran` and are cached.
    """

    def __init__(
        self,
        circuit: Circuit,
        rules: DesignRules,
        ac_spec: AcSpec | None = None,
        tran_spec: TranSpec | None = None,
    ):
        self.circuit = circuit
        self.rules = rules
        self.ac_spec = ac_spec or AcSpec()
        self.tran_spec = tran_spec
        self._compiled: CompiledCircuit | None = None
        self._op: OperatingPoint | None = None
        self._ac: AcResult | None = None
        self._tran: TranResult | None = None
        self._measures: dict[str, Callable[["Testbench"], float]] = {}
        self.simulation_count = 0

    @property
    def compiled(self) -> CompiledCircuit:
        """The compiled circuit (built on first use)."""
        if self._compiled is None:
            self._compiled = CompiledCircuit(self.circuit, self.rules)
        return self._compiled

    @property
    def op(self) -> OperatingPoint:
        """DC operating point (computed on first use)."""
        if self._op is None:
            self._op = dc_operating_point(self.compiled)
            self.simulation_count += 1
        return self._op

    @property
    def ac(self) -> AcResult:
        """AC sweep result (computed on first use)."""
        if self._ac is None:
            spec = self.ac_spec
            self._ac = ac_analysis(
                self.compiled,
                self.op,
                f_start=spec.f_start,
                f_stop=spec.f_stop,
                points_per_decade=spec.points_per_decade,
            )
            self.simulation_count += 1
        return self._ac

    @property
    def tran(self) -> TranResult:
        """Transient result (computed on first use)."""
        if self._tran is None:
            if self.tran_spec is None:
                raise SimulationError(
                    "testbench has no transient spec but a measure needs one"
                )
            spec = self.tran_spec
            op = dc_operating_point(self.compiled, force=spec.ics or None)
            self._tran = transient(
                self.compiled, t_stop=spec.t_stop, dt=spec.dt, op=op
            )
            self.simulation_count += 1
        return self._tran

    def add_measure(self, name: str, fn: Callable[["Testbench"], float]) -> None:
        """Register a named measurement extractor."""
        if name in self._measures:
            raise SimulationError(f"duplicate measure {name!r}")
        self._measures[name] = fn

    def run(self) -> dict[str, float]:
        """Evaluate every registered measure, sharing cached analyses."""
        return {name: fn(self) for name, fn in self._measures.items()}

    def invalidate(self) -> None:
        """Drop cached analyses (after the circuit has been modified)."""
        self._compiled = None
        self._op = None
        self._ac = None
        self._tran = None
