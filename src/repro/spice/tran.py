"""Transient analysis.

Time integration is trapezoidal for capacitors (needed for low numerical
damping in oscillators) with a backward-Euler first step, and backward
Euler for inductor branches.  Each step runs damped Newton on the DC
nonlinearities with capacitor companion models; device capacitances are
re-evaluated at the previously converged point (quasi-static), which keeps
the Newton Jacobian simple while tracking bias-dependent capacitance.

If a step fails to converge it is retried at half the step size, up to a
bounded recursion depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, NetlistError, SingularMatrixError
from repro.runtime import faults
from repro.spice.dc import (
    RELTOL,
    VNTOL,
    VOLTAGE_LIMIT,
    OperatingPoint,
    dc_operating_point,
)
from repro.spice.mna import CompiledCircuit, solve_mna

#: Maximum Newton iterations per time step.
MAX_STEP_ITERATIONS = 60

#: Maximum number of times a failing step may be halved.
MAX_STEP_HALVINGS = 10


@dataclass
class TranResult:
    """Result of a transient run.

    Attributes:
        compiled: The compiled circuit.
        t: Time points (s), shape (nsteps,).
        solutions: Solution matrix, shape (nsteps, size).
    """

    compiled: CompiledCircuit
    t: np.ndarray
    solutions: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Node voltage waveform (zeros for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return np.zeros(len(self.t))
        return self.solutions[:, idx]

    def i(self, branch_name: str) -> np.ndarray:
        """Branch current waveform (voltage source / VCVS / inductor)."""
        try:
            idx = self.compiled.branch_index[branch_name]
        except KeyError:
            raise NetlistError(f"{branch_name!r} is not a branch element") from None
        return self.solutions[:, idx]

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        """Differential voltage waveform."""
        return self.v(plus) - self.v(minus)


class _Integrator:
    """Internal fixed-topology transient stepper."""

    def __init__(self, compiled: CompiledCircuit):
        self.compiled = compiled
        self.size = compiled.size
        self.g_linear = compiled.conductance_linear()
        self.c_linear = compiled.capacitance_linear()
        self.ind = [
            (
                compiled.branch_index[e.name],
                compiled.index_of(e.a),
                compiled.index_of(e.b),
                e.value,
            )
            for e in compiled.inductors
        ]
        # Inductor topology entries are constant; stamp them once.
        for br, na, nb, _value in self.ind:
            self.g_linear[na, br] += 1.0
            self.g_linear[nb, br] -= 1.0
            self.g_linear[br, na] += 1.0
            self.g_linear[br, nb] -= 1.0

    def step(
        self,
        x_prev: np.ndarray,
        xdot_prev: np.ndarray,
        t_new: float,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Advance one trapezoidal step; returns (x, xdot) or None."""
        compiled = self.compiled
        size = self.size

        ev_prev = compiled.eval_mosfets(x_prev)
        c_step = self.c_linear + compiled.mos_capacitance(ev_prev)
        c_core = c_step[:size, :size]
        # Trapezoidal companion: (G + 2C/dt) x = rhs + C (2/dt x_prev + xdot_prev)
        g_c = (2.0 / dt) * c_core
        hist = c_core @ ((2.0 / dt) * x_prev + xdot_prev)

        rhs_src = compiled.source_rhs(t=t_new)

        x = x_prev.copy()
        for _ in range(MAX_STEP_ITERATIONS):
            a = self.g_linear.copy()
            rhs = rhs_src.copy()
            for br, _na, _nb, value in self.ind:
                a[br, br] -= value / dt
                rhs[br] -= (value / dt) * x_prev[br]

            ev = compiled.eval_mosfets(x)
            if ev is not None:
                compiled.stamp_mosfets(a, rhs, ev, x)

            a_core = a[:size, :size] + g_c
            b_core = rhs[:size] + hist
            try:
                x_new, _recovered = solve_mna(a_core, b_core)
            except SingularMatrixError:
                # Let the step-halving cascade shrink dt instead.
                return None

            delta = x_new - x
            dv = delta[: compiled.num_nodes]
            max_dv = float(np.max(np.abs(dv))) if len(dv) else 0.0
            if max_dv > VOLTAGE_LIMIT:
                x = x + delta * (VOLTAGE_LIMIT / max_dv)
                continue
            x = x_new
            if max_dv < VNTOL + RELTOL * np.max(
                np.abs(x[: compiled.num_nodes]), initial=0.0
            ):
                xdot = (2.0 / dt) * (x - x_prev) - xdot_prev
                return x, xdot
        return None

    def advance(
        self,
        x_prev: np.ndarray,
        xdot_prev: np.ndarray,
        t_prev: float,
        dt: float,
        depth: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance by ``dt``, recursively halving on Newton failure."""
        result = self.step(x_prev, xdot_prev, t_prev + dt, dt)
        if result is not None:
            return result
        if depth >= MAX_STEP_HALVINGS:
            raise ConvergenceError(
                f"transient step failed at t={t_prev:.4g}s even after "
                f"{MAX_STEP_HALVINGS} halvings",
                code="CONV-TRAN",
            )
        half = dt / 2.0
        x_mid, xdot_mid = self.advance(x_prev, xdot_prev, t_prev, half, depth + 1)
        return self.advance(x_mid, xdot_mid, t_prev + half, half, depth + 1)


def transient(
    compiled: CompiledCircuit,
    t_stop: float,
    dt: float,
    op: OperatingPoint | None = None,
    ics: dict[str, float] | None = None,
) -> TranResult:
    """Run a transient analysis from 0 to ``t_stop`` with step ``dt``.

    Args:
        compiled: The compiled circuit.
        t_stop: End time (s).
        dt: Output/integration step (s); internally halved on demand.
        op: Optional pre-computed operating point to start from.
        ics: Optional node voltages pinned during the initial DC solve
            (nodeset); used to break oscillator symmetry.

    Returns:
        A :class:`TranResult` sampled at multiples of ``dt``.
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise NetlistError("need 0 < dt <= t_stop")

    injector = faults.active()
    if injector is not None:
        injector.check_tran(compiled.circuit.name)

    if op is None:
        op = dc_operating_point(compiled, force=ics)
    x = op.x.copy()
    xdot = np.zeros_like(x)

    steps = int(round(t_stop / dt))
    times = np.arange(steps + 1) * dt
    solutions = np.zeros((steps + 1, compiled.size))
    solutions[0] = x

    integrator = _Integrator(compiled)

    # Backward-Euler first step to avoid trapezoidal ringing from the
    # (possibly inconsistent) initial condition: achieved by taking the
    # first trapezoidal step with xdot = 0, which reduces to BE flavour.
    for k in range(1, steps + 1):
        x, xdot = integrator.advance(x, xdot, times[k - 1], dt)
        solutions[k] = x

    return TranResult(compiled=compiled, t=times, solutions=solutions)
