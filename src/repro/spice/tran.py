"""Transient analysis.

Time integration is trapezoidal for capacitors (needed for low numerical
damping in oscillators) with a backward-Euler first step, and backward
Euler for inductor branches.  Each step runs damped Newton on the DC
nonlinearities with capacitor companion models; device capacitances are
re-evaluated at the previously converged point (quasi-static), which keeps
the Newton Jacobian simple while tracking bias-dependent capacitance.

Two steppers share the integrator:

* **adaptive** (the default) — an LTE-controlled variable step.  The
  local truncation error of each trapezoidal step is estimated from the
  derivative change (the trapezoidal/backward-Euler difference,
  ``0.5·h·|ẋ_new − ẋ_prev|``); steps whose error exceeds the tolerance
  are rejected and halved, and after a streak of comfortably accepted
  steps the step doubles, up to ``dt_max``.  A step that fails Newton is
  halved like a rejected one.  The solution is then resampled onto the
  requested output grid (multiples of ``dt``) so downstream waveform
  measurements are unchanged.
* **fixed** — one trapezoidal step per output point, recursively halving
  a failing step, as production fixed-step mode (selected with
  ``stepper="fixed"`` or ``REPRO_STEPPER=fixed``).

All stepping is deterministic: step-size decisions depend only on the
circuit and tolerances, never on wall-clock or randomness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, NetlistError, SingularMatrixError
from repro.runtime import faults
from repro.spice import kernel
from repro.spice.dc import (
    RELTOL,
    VNTOL,
    VOLTAGE_LIMIT,
    OperatingPoint,
    dc_operating_point,
)
from repro.spice.mna import CompiledCircuit

#: Maximum Newton iterations per time step.
MAX_STEP_ITERATIONS = 60

#: Maximum number of times a failing step may be halved.
MAX_STEP_HALVINGS = 10

#: Stepper choices.
ADAPTIVE = "adaptive"
FIXED = "fixed"

_STEPPER_CHOICES = (ADAPTIVE, FIXED)

#: Environment variable overriding the transient stepper for a whole run.
STEPPER_ENV = "REPRO_STEPPER"

#: Default relative local-truncation-error tolerance per node voltage.
#: Deliberately looser than the Newton tolerances: the default grids are
#: sized for waveform-level measures (crossings, periods, envelopes), so
#: the controller's job by default is to refine only where the grid is
#: qualitatively failing and to coarsen where it is overkill.  Tighten
#: per call via ``lte_rtol``/``lte_atol`` for pointwise accuracy.
DEFAULT_LTE_RTOL = 5.0e-2

#: Default absolute local-truncation-error tolerance (V).
DEFAULT_LTE_ATOL = 5.0e-2

#: Error ratio below which an accepted step counts toward growing.
GROW_THRESHOLD = 0.25

#: Consecutive comfortable accepts required before the step doubles.
GROW_STREAK = 2

#: Damped-trapezoid blend factor for the adaptive path's stored
#: derivative.  The trapezoidal derivative recursion has a parasitic
#: eigenvalue at exactly -1, so on rows pinned by a source (where the
#: solution moves but the constraint holds the node) the derivative
#: *rings* sign-alternating at constant amplitude after a breakpoint.
#: The LTE estimate then scales as h^1 instead of h^2 and the
#: controller equilibrates between the grow and reject thresholds —
#: stuck at a tiny step forever.  Blending this fraction of the
#: backward-Euler derivative moves the parasitic eigenvalue to
#: -(1 - XDOT_DAMPING) so ringing decays geometrically while the
#: smooth-solution accuracy stays effectively trapezoidal.  The fixed
#: stepper is untouched (bit-compatible with the original fixed-grid
#: results).
XDOT_DAMPING = 0.1


@dataclass
class TranResult:
    """Result of a transient run.

    Attributes:
        compiled: The compiled circuit.
        t: Time points (s), shape (nsteps,).
        solutions: Solution matrix, shape (nsteps, size).
    """

    compiled: CompiledCircuit
    t: np.ndarray
    solutions: np.ndarray

    def v(self, node: str) -> np.ndarray:
        """Node voltage waveform (zeros for ground)."""
        idx = self.compiled.index_of(node)
        if idx == self.compiled.ghost:
            return np.zeros(len(self.t))
        return self.solutions[:, idx]

    def i(self, branch_name: str) -> np.ndarray:
        """Branch current waveform (voltage source / VCVS / inductor)."""
        try:
            idx = self.compiled.branch_index[branch_name]
        except KeyError:
            raise NetlistError(f"{branch_name!r} is not a branch element") from None
        return self.solutions[:, idx]

    def vdiff(self, plus: str, minus: str) -> np.ndarray:
        """Differential voltage waveform."""
        return self.v(plus) - self.v(minus)


def resolve_stepper(override: str | None = None) -> str:
    """The effective stepper choice: argument > env > adaptive."""
    for candidate, what in (
        (override, "stepper argument"),
        (os.environ.get(STEPPER_ENV) or None, STEPPER_ENV),
    ):
        if candidate is not None:
            if candidate not in _STEPPER_CHOICES:
                raise NetlistError(
                    f"invalid {what} {candidate!r}; choose from "
                    f"{', '.join(_STEPPER_CHOICES)}"
                )
            return candidate
    return ADAPTIVE


def _tran_template(
    compiled: CompiledCircuit, backend: str
) -> "kernel.SystemTemplate":
    """The transient Newton system template (cached on the circuit).

    Static part: linear conductances and all branch topology rows.
    Dynamic slots, in order: MOSFET companion conductances (change per
    Newton iteration), element-capacitor companions, MOSFET-capacitance
    companions, and the inductor branch diagonal (all three change only
    with the step size / bias point of the step).
    """

    def build() -> "kernel.SystemTemplate":
        mos_rows, mos_cols = compiled.mos_conductance_pattern()
        cap_rows, cap_cols = compiled.capacitor_pattern()
        mc_rows, mc_cols = compiled.mos_capacitance_pattern()
        ind = compiled.inductor_branch_indices()
        return kernel.SystemTemplate(
            compiled.size,
            compiled.static_conductance_triplets(),
            np.concatenate([mos_rows, cap_rows, mc_rows, ind]),
            np.concatenate([mos_cols, cap_cols, mc_cols, ind]),
            dtype=float,
            backend=backend,
        )

    return compiled.kernel_template(("tran", backend), build)


class _Integrator:
    """Internal fixed-topology transient stepper."""

    def __init__(self, compiled: CompiledCircuit, backend: str):
        self.compiled = compiled
        self.size = compiled.size
        self.template = _tran_template(compiled, backend)
        self.has_mos = bool(compiled.mos_elements)
        self.cap_vals = compiled.capacitor_values()
        cap_rows, cap_cols = compiled.capacitor_pattern()
        mc_rows, mc_cols = compiled.mos_capacitance_pattern()
        # Combined capacitance pattern for the history mat-vec.
        self.c_rows = np.concatenate([cap_rows, mc_rows])
        self.c_cols = np.concatenate([cap_cols, mc_cols])
        self.ind_branches = compiled.inductor_branch_indices()
        self.ind_l = compiled.inductor_inductances()
        # For linear (MOSFET-free) circuits the matrix depends only on
        # the step size, so each distinct ``dt`` is factorized once and
        # the LU reused across every step and Newton iteration.
        self._lu_cache: dict[float, "kernel.Factorization"] = {}

    def step(
        self,
        x_prev: np.ndarray,
        xdot_prev: np.ndarray,
        t_new: float,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Advance one trapezoidal step; returns (x, xdot) or None."""
        compiled = self.compiled
        size = self.size
        stats = kernel.active()

        ev_prev = compiled.eval_mosfets(x_prev)
        mos_cap_vals = compiled.mos_capacitance_values(ev_prev)
        c_vals = np.concatenate([self.cap_vals, mos_cap_vals])
        # Trapezoidal companion: (G + 2C/dt) x = rhs + C (2/dt x_prev + xdot_prev)
        hist = kernel.coo_matvec(
            self.c_rows,
            self.c_cols,
            c_vals,
            (2.0 / dt) * x_prev + xdot_prev,
            size,
        )
        # Per-step dynamic values: capacitor companions and the
        # backward-Euler inductor branch diagonal.
        step_vals = np.concatenate([(2.0 / dt) * c_vals, -self.ind_l / dt])

        rhs_src = compiled.source_rhs(t=t_new)
        if len(self.ind_branches):
            rhs_src[self.ind_branches] -= (self.ind_l / dt) * x_prev[
                self.ind_branches
            ]

        factorization: "kernel.Factorization" | None = None
        if not self.has_mos:
            factorization = self._lu_cache.get(dt)
            if factorization is None:
                try:
                    # No MOSFETs means no per-iteration dynamic values:
                    # the step values are the whole dynamic part.
                    factorization = self.template.factor(step_vals)
                except SingularMatrixError:
                    factorization = None  # fall through to the rescue path
                else:
                    self._lu_cache[dt] = factorization

        x = x_prev.copy()
        for _ in range(MAX_STEP_ITERATIONS):
            if stats is not None:
                stats.newton_iterations += 1
            rhs = rhs_src.copy()
            ev = compiled.eval_mosfets(x)
            if ev is not None:
                compiled.stamp_mos_rhs(rhs, ev, x)
            b_core = rhs[:size] + hist

            try:
                if factorization is not None:
                    x_new = factorization.solve(b_core)
                else:
                    x_new, _recovered = self.template.solve(
                        np.concatenate(
                            [compiled.mos_conductance_values(ev), step_vals]
                        ),
                        b_core,
                    )
            except SingularMatrixError:
                # Let the step-halving cascade shrink dt instead.
                return None

            delta = x_new - x
            dv = delta[: compiled.num_nodes]
            max_dv = float(np.max(np.abs(dv))) if len(dv) else 0.0
            if max_dv > VOLTAGE_LIMIT:
                x = x + delta * (VOLTAGE_LIMIT / max_dv)
                continue
            x = x_new
            if max_dv < VNTOL + RELTOL * np.max(
                np.abs(x[: compiled.num_nodes]), initial=0.0
            ):
                xdot = (2.0 / dt) * (x - x_prev) - xdot_prev
                return x, xdot
        return None

    def advance(
        self,
        x_prev: np.ndarray,
        xdot_prev: np.ndarray,
        t_prev: float,
        dt: float,
        depth: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance by ``dt``, recursively halving on Newton failure."""
        result = self.step(x_prev, xdot_prev, t_prev + dt, dt)
        if result is not None:
            return result
        if depth >= MAX_STEP_HALVINGS:
            raise ConvergenceError(
                f"transient step failed at t={t_prev:.4g}s even after "
                f"{MAX_STEP_HALVINGS} halvings",
                code="CONV-TRAN",
            )
        half = dt / 2.0
        x_mid, xdot_mid = self.advance(x_prev, xdot_prev, t_prev, half, depth + 1)
        return self.advance(x_mid, xdot_mid, t_prev + half, half, depth + 1)


def _lte_ratio(
    integrator: _Integrator,
    x_prev: np.ndarray,
    x_new: np.ndarray,
    xdot_prev: np.ndarray,
    xdot_new: np.ndarray,
    dt: float,
    rtol: float,
    atol: float,
) -> float:
    """Worst node-voltage LTE relative to its tolerance.

    The trapezoidal LTE is estimated from the derivative change across
    the step — half the distance between the trapezoidal and the
    backward-Euler solutions — per node against
    ``atol + rtol * max(|v_prev|, |v_new|)``.  Branch currents are
    excluded: their scale is unrelated to the voltage tolerances.
    """
    n = integrator.compiled.num_nodes
    if n == 0:
        return 0.0
    err = 0.5 * dt * np.abs(xdot_new[:n] - xdot_prev[:n])
    tol = atol + rtol * np.maximum(np.abs(x_prev[:n]), np.abs(x_new[:n]))
    return float(np.max(err / tol))


def _resample(
    times: np.ndarray, knot_t: np.ndarray, knot_x: np.ndarray
) -> np.ndarray:
    """Linear interpolation of the solution knots onto the output grid."""
    idx = np.searchsorted(knot_t, times, side="right") - 1
    idx = np.clip(idx, 0, len(knot_t) - 2)
    t0 = knot_t[idx]
    t1 = knot_t[idx + 1]
    with np.errstate(invalid="ignore", divide="ignore"):
        w = (times - t0) / (t1 - t0)
    w = np.clip(np.nan_to_num(w), 0.0, 1.0)[:, None]
    return (1.0 - w) * knot_x[idx] + w * knot_x[idx + 1]


def _adaptive_march(
    integrator: _Integrator,
    x0: np.ndarray,
    t_end: float,
    dt: float,
    dt_max: float,
    rtol: float,
    atol: float,
) -> tuple[np.ndarray, np.ndarray]:
    """March from 0 to ``t_end`` under LTE control; returns knots.

    Returns ``(knot_times, knot_solutions)`` with the first knot at
    ``t=0`` and the last at ``t_end``.
    """
    stats = kernel.active()
    dt_min = dt / (2.0**MAX_STEP_HALVINGS)
    knot_t = [0.0]
    knot_x = [x0]
    x = x0
    xdot = np.zeros_like(x0)
    t = 0.0
    h = dt
    streak = 0
    while t < t_end * (1.0 - 1e-12):
        h = min(h, dt_max, t_end - t)
        result = integrator.step(x, xdot, t + h, h)
        if result is None:
            # Newton failure: halve like the fixed stepper's cascade.
            if stats is not None:
                stats.tran_rejected += 1
            h /= 2.0
            streak = 0
            if h < dt_min:
                raise ConvergenceError(
                    f"adaptive transient step underflowed at t={t:.4g}s "
                    f"(step {h:.3g}s < floor {dt_min:.3g}s)",
                    code="CONV-TRAN",
                )
            continue
        x_new, xdot_new = result
        ratio = _lte_ratio(integrator, x, x_new, xdot, xdot_new, h, rtol, atol)
        if ratio > 1.0 and h >= 2.0 * dt_min:
            if stats is not None:
                stats.tran_rejected += 1
            h /= 2.0
            streak = 0
            continue
        if ratio > 1.0:
            # At the floor the estimate cannot shrink further — a true
            # source discontinuity keeps the derivative jump O(ΔV) at
            # any step size.  Accept backward-Euler style and reset the
            # derivative memory so the trapezoidal recursion does not
            # ring across the edge.
            xdot_new = (x_new - x) / h
        else:
            # Damp the parasitic -1 mode (see XDOT_DAMPING) after the
            # ratio is computed, so the controller still sees the true
            # trapezoidal error estimate.
            xdot_new = (1.0 - XDOT_DAMPING) * xdot_new + XDOT_DAMPING * (
                (x_new - x) / h
            )
        x, xdot = x_new, xdot_new
        t += h
        knot_t.append(t)
        knot_x.append(x)
        if stats is not None:
            stats.tran_steps += 1
        if ratio < GROW_THRESHOLD:
            streak += 1
            if streak >= GROW_STREAK:
                h = min(2.0 * h, dt_max)
                streak = 0
        else:
            streak = 0
    return np.array(knot_t), np.array(knot_x)


def transient(
    compiled: CompiledCircuit,
    t_stop: float,
    dt: float,
    op: OperatingPoint | None = None,
    ics: dict[str, float] | None = None,
    *,
    dt_max: float | None = None,
    stepper: str | None = None,
    lte_rtol: float | None = None,
    lte_atol: float | None = None,
    solver: str | None = None,
) -> TranResult:
    """Run a transient analysis from 0 to ``t_stop``.

    The default *adaptive* stepper treats ``dt`` as the output-grid
    spacing and the initial step: the step is halved whenever the local
    truncation error exceeds the tolerance (or Newton fails) and doubled
    after sustained comfortable accepts, up to ``dt_max``.  The solution
    is resampled onto the output grid ``0, dt, 2·dt, …``, so results
    have the same shape either way.  The *fixed* stepper takes exactly
    one trapezoidal step per grid point, halving only on Newton failure.

    Args:
        compiled: The compiled circuit.
        t_stop: End time (s).
        dt: Output-grid spacing and initial/default step (s); internally
            halved on demand by both steppers.
        op: Optional pre-computed operating point to start from.
        ics: Optional node voltages pinned during the initial DC solve
            (nodeset); used to break oscillator symmetry.
        dt_max: Adaptive-stepper step ceiling (s); defaults to ``dt``
            (refinement only).  Must be >= ``dt``.
        stepper: ``"adaptive"`` or ``"fixed"``; defaults to the
            ``REPRO_STEPPER`` environment variable, else adaptive.
        lte_rtol: Relative LTE tolerance per node voltage (adaptive
            only; default 1e-3).
        lte_atol: Absolute LTE tolerance in volts (adaptive only;
            default 1e-4).
        solver: Optional solver-backend override (``"dense"``/
            ``"sparse"``/``"auto"``).

    Returns:
        A :class:`TranResult` sampled at multiples of ``dt``.
    """
    if t_stop <= 0 or dt <= 0 or dt > t_stop:
        raise NetlistError("need 0 < dt <= t_stop")
    stepper = resolve_stepper(stepper)
    if dt_max is None:
        dt_max = dt
    elif not (dt_max >= dt):
        raise NetlistError(
            f"dt_max ({dt_max!r}) must be >= dt ({dt!r}); it is the adaptive "
            "step ceiling, dt the output-grid spacing"
        )
    if lte_rtol is None:
        lte_rtol = DEFAULT_LTE_RTOL
    elif not (lte_rtol > 0.0):
        raise NetlistError(f"lte_rtol must be > 0, got {lte_rtol!r}")
    if lte_atol is None:
        lte_atol = DEFAULT_LTE_ATOL
    elif not (lte_atol > 0.0):
        raise NetlistError(f"lte_atol must be > 0, got {lte_atol!r}")

    injector = faults.active()
    if injector is not None:
        injector.check_tran(compiled.circuit.name)

    stats = kernel.active()
    if stats is not None:
        stats.count_analysis("tran")

    if op is None:
        op = dc_operating_point(compiled, force=ics, solver=solver)
    x = op.x.copy()

    steps = int(round(t_stop / dt))
    times = np.arange(steps + 1) * dt
    backend = kernel.backend_for(compiled.size, solver)
    integrator = _Integrator(compiled, backend)
    if stats is not None:
        stats.tran_fixed_steps += steps

    # Backward-Euler first step to avoid trapezoidal ringing from the
    # (possibly inconsistent) initial condition: achieved by taking the
    # first trapezoidal step with xdot = 0, which reduces to BE flavour.
    if stepper == ADAPTIVE:
        knot_t, knot_x = _adaptive_march(
            integrator, x, float(times[-1]), dt, dt_max, lte_rtol, lte_atol
        )
        solutions = _resample(times, knot_t, knot_x)
        solutions[0] = x
    else:
        xdot = np.zeros_like(x)
        solutions = np.zeros((steps + 1, compiled.size))
        solutions[0] = x
        for k in range(1, steps + 1):
            x, xdot = integrator.advance(x, xdot, times[k - 1], dt)
            solutions[k] = x
            if stats is not None:
                stats.tran_steps += 1

    return TranResult(compiled=compiled, t=times, solutions=solutions)
