"""Source waveforms: DC, PULSE, SIN and PWL.

Each waveform exposes ``dc_value`` (the value used during operating-point
analysis, i.e. the value at t=0) and ``value(t)`` for transient analysis.
Semantics follow SPICE conventions.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import NetlistError


@dataclass(frozen=True)
class Dc:
    """A constant source value."""

    level: float = 0.0

    @property
    def dc_value(self) -> float:
        return self.level

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class Pulse:
    """SPICE PULSE source.

    Attributes:
        v1: Initial value.
        v2: Pulsed value.
        delay: Time before the first edge (s).
        rise: Rise time (s).
        fall: Fall time (s).
        width: Pulse width at ``v2`` (s).
        period: Repetition period (s); 0 means a single pulse.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.rise <= 0 or self.fall <= 0:
            raise NetlistError("pulse rise/fall must be > 0")
        if self.width < 0:
            raise NetlistError("pulse width must be >= 0")

    @property
    def dc_value(self) -> float:
        return self.v1

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        local = t - self.delay
        if self.period > 0:
            local = math.fmod(local, self.period)
        if local < self.rise:
            return self.v1 + (self.v2 - self.v1) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v2
        local -= self.width
        if local < self.fall:
            return self.v2 + (self.v1 - self.v2) * local / self.fall
        return self.v1


@dataclass(frozen=True)
class Sin:
    """SPICE SIN source: ``offset + amplitude*sin(2*pi*freq*(t-delay))``."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0
    damping: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise NetlistError("sin frequency must be > 0")

    @property
    def dc_value(self) -> float:
        return self.offset

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        dt = t - self.delay
        envelope = math.exp(-self.damping * dt) if self.damping else 1.0
        return self.offset + self.amplitude * envelope * math.sin(
            2.0 * math.pi * self.frequency * dt
        )


@dataclass(frozen=True)
class Pwl:
    """Piecewise-linear source defined by (time, value) breakpoints."""

    points: tuple[tuple[float, float], ...]
    _times: tuple[float, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise NetlistError("PWL needs at least one point")
        times = [p[0] for p in self.points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise NetlistError("PWL times must be strictly increasing")
        object.__setattr__(self, "_times", tuple(times))

    @property
    def dc_value(self) -> float:
        return self.value(0.0)

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        idx = bisect_right(self._times, t)
        t0, v0 = pts[idx - 1]
        t1, v1 = pts[idx]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


Waveform = Dc | Pulse | Sin | Pwl
