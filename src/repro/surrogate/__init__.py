"""Surrogate-guided search: learn the sweep, simulate only the frontier.

A deterministic, numpy-only regressor (seeded gradient-boosted stumps)
trained on a persistent corpus of really-simulated candidates ranks
selection sweeps and truncates tuning sweeps, so the optimizer simulates
only the predicted top-k plus an exploration budget.  Predictions decide
*order and pruning only*: every reported metric comes from real
simulation, pruned candidates are journaled as ``pruned`` (never as
failures), and all decisions are deterministic for a fixed corpus across
``--jobs``/``--batch`` and resume.  See :mod:`repro.surrogate.guide`.
"""

from repro.surrogate.corpus import CorpusRow, CorpusStore
from repro.surrogate.features import (
    FEATURE_NAMES,
    FEATURES_VERSION,
    family_key,
    option_features,
)
from repro.surrogate.guide import (
    SelectionCandidate,
    SurrogateGuide,
    SurrogateStats,
    resolve_surrogate,
)
from repro.surrogate.model import StumpEnsemble, stable_seed

__all__ = [
    "CorpusRow",
    "CorpusStore",
    "FEATURE_NAMES",
    "FEATURES_VERSION",
    "SelectionCandidate",
    "StumpEnsemble",
    "SurrogateGuide",
    "SurrogateStats",
    "family_key",
    "option_features",
    "resolve_surrogate",
    "stable_seed",
]
