"""Persistent training corpus for the surrogate: one JSONL row per
really-simulated candidate.

The corpus lives next to the evalcache disk tier by default
(``<cache-dir>/corpus.jsonl``) so it accumulates across runs the same
way cached evaluations do.  Each row is self-contained::

    {"family": "DifferentialPair:96:ab12cd34", "stage": "sel",
     "key": "sel:8x4x3:ABAB:-", "features": [...], "cost": 12.3,
     "version": 1}

Rows record **measured** costs only — surrogate predictions never enter
the corpus (they would self-reinforce).  The loader is forgiving the
same way the sweep journal is: unparseable lines (torn tails from a
killed run, foreign garbage) are skipped, rows from a different feature
version are ignored, and duplicate ``(family, stage, key)`` rows keep
the first occurrence so replays cannot shift the training set.

Writes are batched: rows recorded during a run stay in a pending list
until :meth:`CorpusStore.flush` — called at optimizer run boundaries,
never from signal handlers — so a killed run leaves the on-disk corpus
exactly as it started and a resumed run makes identical decisions.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

from repro.surrogate.features import FEATURES_VERSION

#: Loader cap: families are small, so this bounds pathological files,
#: not normal growth.
MAX_ROWS = 100_000


@dataclass(frozen=True)
class CorpusRow:
    """One (candidate features -> measured cost) training example."""

    family: str
    stage: str
    key: str
    features: tuple[float, ...]
    cost: float

    def to_dict(self) -> dict:
        """JSON-serializable form (adds the feature version)."""
        return {
            "family": self.family,
            "stage": self.stage,
            "key": self.key,
            "features": list(self.features),
            "cost": self.cost,
            "version": FEATURES_VERSION,
        }


def _parse_row(line: str) -> CorpusRow | None:
    """One corpus line -> row, or None for anything unusable."""
    try:
        raw = json.loads(line)
        if raw.get("version") != FEATURES_VERSION:
            return None
        row = CorpusRow(
            family=str(raw["family"]),
            stage=str(raw["stage"]),
            key=str(raw["key"]),
            features=tuple(float(x) for x in raw["features"]),
            cost=float(raw["cost"]),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
    if not math.isfinite(row.cost):
        return None
    if not all(math.isfinite(x) for x in row.features):
        return None
    return row


class CorpusStore:
    """Loads, accumulates and appends surrogate training rows.

    Args:
        path: Corpus JSONL file (created on first flush).  None keeps
            the corpus in-memory only — recording still works, but
            nothing persists and nothing is pre-loaded.
        max_rows: Hard cap on loaded rows (oldest-first, file order).
    """

    def __init__(self, path: str | os.PathLike | None,
                 max_rows: int = MAX_ROWS):
        self.path = Path(path) if path is not None else None
        self.max_rows = max_rows
        self._rows: dict[tuple[str, str], list[CorpusRow]] = {}
        self._seen: set[tuple[str, str, str]] = set()
        self._pending: list[CorpusRow] = []
        self.skipped_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        loaded = 0
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                if not line.strip():
                    continue
                if loaded >= self.max_rows:
                    break
                row = _parse_row(line)
                if row is None:
                    self.skipped_lines += 1
                    continue
                if self._remember(row):
                    loaded += 1

    def _remember(self, row: CorpusRow) -> bool:
        ident = (row.family, row.stage, row.key)
        if ident in self._seen:
            return False
        self._seen.add(ident)
        self._rows.setdefault((row.family, row.stage), []).append(row)
        return True

    # -- queries ---------------------------------------------------------

    def rows(self, family: str, stage: str) -> list[CorpusRow]:
        """All known rows for one (family, stage), file/record order."""
        return list(self._rows.get((family, stage), ()))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def stats(self) -> dict:
        """Order-independent corpus accounting for ``repro cache stats``."""
        families = sorted({family for family, _ in self._rows})
        per_family = {
            family: sum(
                len(rows)
                for (f, _), rows in self._rows.items()
                if f == family
            )
            for family in families
        }
        return {
            "rows": len(self),
            "families": per_family,
            "pending": len(self._pending),
            "skipped_lines": self.skipped_lines,
            "path": str(self.path) if self.path is not None else None,
        }

    def export_rows(self) -> list[dict]:
        """Every loaded row as a JSON-ready dict, deterministic order."""
        rows = [
            row
            for key in sorted(self._rows)
            for row in self._rows[key]
        ]
        return [row.to_dict() for row in rows]

    # -- writes ----------------------------------------------------------

    def record(self, row: CorpusRow) -> bool:
        """Remember a new measured row; returns False for duplicates."""
        if not self._remember(row):
            return False
        self._pending.append(row)
        return True

    def flush(self) -> int:
        """Append pending rows to the corpus file; returns rows written.

        Called at run boundaries only (never from signal handlers), so
        an interrupted run leaves the file untouched and a resumed run
        trains on the same corpus the original did.
        """
        pending, self._pending = self._pending, []
        if self.path is None or not pending:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            for row in pending:
                fh.write(json.dumps(row.to_dict(), sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return len(pending)
