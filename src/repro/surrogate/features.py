"""Simulation-free feature engineering for the surrogate ranker.

Every feature is derivable from the candidate *description* — sizing,
placement pattern, wire configuration — plus the generated (but never
simulated) layout geometry.  Computing a feature vector costs one
`primitive.generate(..., verify=False)` call at most, which is orders of
magnitude cheaper than the extraction + SPICE evaluation it may spare.

Features must be deterministic across processes: no salted ``hash()``,
no set iteration, no wall clock.  Pattern strings are summarized with
order statistics (length, adjacency, alternations, symmetry) instead of
hashes so the same pattern always maps to the same numbers.
"""

from __future__ import annotations

import hashlib
import json

from repro.cellgen.generator import WireConfig
from repro.devices.mosfet import MosGeometry
from repro.runtime.evalcache import analysis_signature

#: Bumped whenever the feature vector changes meaning; corpus rows with
#: a different version are ignored by the loader.
FEATURES_VERSION = 1

#: Names of the feature-vector entries, index-aligned with the output
#: of :func:`option_features`.
FEATURE_NAMES = (
    "nfin",
    "nf",
    "m",
    "unit_fins",
    "total_fingers",
    "total_fins",
    "pattern_len",
    "pattern_symbols",
    "pattern_adjacent_pairs",
    "pattern_alternations",
    "pattern_palindrome",
    "wire_total_straps",
    "wire_max_straps",
    "wire_tuned_nets",
    "wire_dummies",
    "layout_width_um",
    "layout_height_um",
    "layout_aspect",
    "layout_area_um2",
)


def pattern_features(pattern: str) -> list[float]:
    """Order statistics of a placement pattern string.

    Returns ``[length, distinct symbols, adjacent-equal pairs,
    alternations, palindrome flag]`` — enough to separate ABAB from ABBA
    without hashing the string.
    """
    n = len(pattern)
    distinct = len(dict.fromkeys(pattern))
    adjacent = sum(1 for a, b in zip(pattern, pattern[1:]) if a == b)
    alternations = sum(1 for a, b in zip(pattern, pattern[1:]) if a != b)
    palindrome = 1.0 if pattern == pattern[::-1] else 0.0
    return [float(n), float(distinct), float(adjacent),
            float(alternations), palindrome]


def wire_features(wires: WireConfig) -> list[float]:
    """Summary of a wire configuration: total/max straps, tuned nets,
    dummy flag."""
    counts = [wires.parallel[net] for net in sorted(wires.parallel)]
    total = float(sum(counts)) if counts else 0.0
    peak = float(max(counts)) if counts else 0.0
    return [total, peak, float(len(counts)), 1.0 if wires.dummies else 0.0]


def option_features(
    primitive,
    base: MosGeometry,
    pattern: str,
    wires: WireConfig,
    layout=None,
) -> list[float]:
    """Feature vector for one (sizing, pattern, wires) candidate.

    ``layout`` may be passed when the caller already generated it (the
    recorder reuses the evaluated option's layout); otherwise the layout
    is generated here without verification.  Raises
    :class:`~repro.errors.LayoutError` when the candidate is infeasible
    — callers treat such candidates as unprunable.
    """
    if layout is None:
        layout = primitive.generate(base, pattern, wires, verify=False)
    sizing = [
        float(base.nfin),
        float(base.nf),
        float(base.m),
        float(base.nfin * base.nf),
        float(base.nf * base.m),
        float(base.nfin * base.nf * base.m),
    ]
    geometry = [
        layout.width / 1000.0,
        layout.height / 1000.0,
        layout.aspect_ratio,
        (layout.width / 1000.0) * (layout.height / 1000.0),
    ]
    return sizing + pattern_features(pattern) + wire_features(wires) + geometry


def family_key(primitive, weight_override: dict[str, float] | None) -> str:
    """Stable corpus-family identifier for one primitive configuration.

    Costs are only comparable within a family: the same primitive class,
    fin budget, analysis configuration and metric weights.  The key is
    the class qualname and fin budget plus a short content hash of the
    analysis signature and weights, so a tech or weight change silently
    starts a fresh family instead of poisoning an old one.
    """
    signature = {
        "analyses": analysis_signature(primitive),
        "weights": weight_override or {},
    }
    blob = json.dumps(signature, sort_keys=True, default=str)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]
    return f"{type(primitive).__qualname__}:{primitive.base_fins}:{digest}"
