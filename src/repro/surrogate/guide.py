"""The surrogate guide: rank candidates, prune sweeps, never invent data.

:class:`SurrogateGuide` sits between the optimizer's sweep construction
and the evaluation runtime.  It is consulted **before** tasks are
dispatched and influences *which* candidates are simulated — never what
any simulation reports:

* selection sweeps keep the predicted top-k candidates plus the
  predicted-best of every aspect-ratio bin plus a seeded exploration
  draw; the rest are journaled as ``pruned`` and skipped;
* tuning wire sweeps are truncated to a predicted prefix (the predicted
  cost minimum plus an exploration margin); the tail is journaled as
  ``pruned``.

Decisions are deterministic for a fixed corpus: models are trained
lazily, once per (family, stage), from the corpus **as loaded at run
start**; rows recorded during the run take effect on the *next* run
(flushed at run boundaries only).  Exploration draws are seeded from the
candidate key set, so any ``--jobs``/``--batch`` value — and a resumed
run — makes identical choices.  Selection plans are computed over the
full candidate set (journaled candidates included) before journal
overrides apply, so a run killed mid-plan resumes into the same plan.

The guide refuses to prune (full-sweep fallback, counted per reason in
:class:`SurrogateStats`) when the family corpus is too small, when the
ensemble's normalized disagreement exceeds ``variance_ceiling``, or for
candidates whose feature generation failed.  Journal decisions always
win over model decisions: a candidate already journaled as completed
stays kept (replay is free), one journaled as pruned stays pruned.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.surrogate.corpus import CorpusRow, CorpusStore
from repro.surrogate.features import family_key
from repro.surrogate.model import StumpEnsemble, stable_seed

#: Selection candidates kept by rank (before bin/exploration add-ons).
DEFAULT_TOP_K = 4
#: Extra seeded exploration picks per pruned sweep.
DEFAULT_EXPLORE = 2
#: Minimum per-(family, stage) corpus rows before a model is trusted.
DEFAULT_MIN_CORPUS = 12
#: Maximum normalized ensemble disagreement before falling back.
DEFAULT_VARIANCE_CEILING = 0.5


def resolve_surrogate(flag: bool | None) -> bool:
    """Surrogate enablement: explicit flag wins, else ``REPRO_SURROGATE``.

    The environment value is truthy unless empty/``0``/``false``/
    ``no``/``off`` (case-insensitive).  Default: off.
    """
    if flag is not None:
        return bool(flag)
    raw = os.environ.get("REPRO_SURROGATE", "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


@dataclass
class SurrogateStats:
    """Order-independent counters surfaced via ``repro profile``.

    Attributes:
        models_trained: Per-(family, stage) models fit this run.
        predictions: Candidates scored by a model.
        sel_kept: Selection candidates kept for simulation.
        sel_pruned: Selection candidates pruned (incl. journal-replayed
            pruning decisions, so resumed runs report like fresh ones).
        tune_pruned: Tuning sweep points pruned off sweep tails.
        recorded: New corpus rows recorded this run.
        fallbacks: Full-sweep fallback count per reason.
    """

    models_trained: int = 0
    predictions: int = 0
    sel_kept: int = 0
    sel_pruned: int = 0
    tune_pruned: int = 0
    recorded: int = 0
    fallbacks: dict[str, int] = field(default_factory=dict)

    def fallback(self, reason: str) -> None:
        """Count one full-sweep fallback under ``reason``."""
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def as_dict(self) -> dict:
        """Deterministically-ordered dict for reports and profiles."""
        return {
            "models_trained": self.models_trained,
            "predictions": self.predictions,
            "sel_kept": self.sel_kept,
            "sel_pruned": self.sel_pruned,
            "tune_pruned": self.tune_pruned,
            "recorded": self.recorded,
            "fallbacks": dict(sorted(self.fallbacks.items())),
        }


@dataclass
class SelectionCandidate:
    """One selection-sweep candidate as seen by the guide.

    Attributes:
        index: Position in the sweep's task list.
        key: Journal key (also the exploration-seed ingredient).
        features: Simulation-free feature vector, or None when feature
            generation failed (such candidates are never pruned).
        bin_index: Aspect-ratio bin over the *full* candidate set, or
            None without geometry.
        journaled: ``"done"`` when the journal already holds a completed
            entry, ``"pruned"`` when it holds a pruning decision, else
            None.
    """

    index: int
    key: str
    features: list[float] | None
    bin_index: int | None = None
    journaled: str | None = None


class SurrogateGuide:
    """Learned sweep pruning with deterministic, journal-safe decisions.

    Args:
        corpus_path: Persistent corpus JSONL (None: in-memory only).
        top_k: Predicted-best candidates kept per selection sweep.
        explore: Seeded exploration picks (selection) / extra sweep
            points past the predicted stop (tuning).
        min_corpus: Rows required per (family, stage) before pruning.
        variance_ceiling: Normalized ensemble-disagreement bound above
            which the guide falls back to the full sweep.
    """

    def __init__(
        self,
        corpus_path: str | os.PathLike | None = None,
        top_k: int = DEFAULT_TOP_K,
        explore: int = DEFAULT_EXPLORE,
        min_corpus: int = DEFAULT_MIN_CORPUS,
        variance_ceiling: float = DEFAULT_VARIANCE_CEILING,
    ):
        self.store = CorpusStore(corpus_path)
        self.top_k = max(1, int(top_k))
        self.explore = max(0, int(explore))
        self.min_corpus = max(2, int(min_corpus))
        self.variance_ceiling = float(variance_ceiling)
        self.stats = SurrogateStats()
        self._models: dict[tuple[str, str], StumpEnsemble | None] = {}

    # -- family / model plumbing -----------------------------------------

    def family(self, primitive, weight_override) -> str:
        """Corpus family for one primitive configuration."""
        return family_key(primitive, weight_override)

    def ready(self, family: str, stage: str) -> bool:
        """True when the (family, stage) corpus can support pruning.

        Callers use this as a cheap pre-gate so feature generation is
        skipped entirely while the corpus is still warming up.
        """
        return len(self.store.rows(family, stage)) >= self.min_corpus

    def _model_for(self, family: str, stage: str) -> StumpEnsemble | None:
        ident = (family, stage)
        if ident not in self._models:
            rows = self.store.rows(family, stage)
            if len(rows) < self.min_corpus:
                self._models[ident] = None
            else:
                X = [row.features for row in rows]
                y = [row.cost for row in rows]
                seed = stable_seed("surrogate", family, stage)
                self._models[ident] = StumpEnsemble(seed=seed).fit(X, y)
                self.stats.models_trained += 1
        return self._models[ident]

    def _predict(
        self, model: StumpEnsemble, rows: list[list[float]]
    ) -> tuple[np.ndarray, float]:
        mean, spread = model.predict(rows)
        self.stats.predictions += len(rows)
        return mean, float(spread.max()) if len(rows) else 0.0

    # -- selection -------------------------------------------------------

    def prune_selection(
        self, family: str, candidates: list[SelectionCandidate]
    ) -> tuple[set[int], set[int]]:
        """Partition a selection sweep into (keep, prune) index sets.

        The model plan — top-k by predicted cost, plus the predicted
        best of every aspect bin, plus a seeded exploration draw — is
        computed over the **full** candidate set, journaled candidates
        included, so a resumed run reconstructs the exact plan of the
        uninterrupted run no matter where the kill landed.  Journal
        decisions then override the plan per candidate: completed
        entries stay kept (replay is free), pruned entries stay pruned.
        Featureless candidates are never pruned; the whole sweep is kept
        when the model is unavailable or too uncertain.
        """
        keep: set[int] = set()
        prune: set[int] = set()
        scored = [c for c in candidates if c.features is not None]
        for cand in candidates:
            if cand.features is None:
                keep.add(cand.index)
        model = self._model_for(family, "sel")
        chosen = {c.index for c in scored}
        if model is None:
            self.stats.fallback("corpus-too-small")
        elif len(scored) <= self.top_k:
            pass  # sweep already no larger than the keep budget
        else:
            mean, max_spread = self._predict(
                model, [c.features for c in scored]
            )
            if max_spread > self.variance_ceiling:
                self.stats.fallback("high-variance")
            else:
                ranked = sorted(
                    range(len(scored)), key=lambda i: (mean[i], scored[i].key)
                )
                chosen = {scored[i].index for i in ranked[: self.top_k]}
                # Predicted-best per aspect bin: keeps every bin
                # winnable so downstream binning matches the full sweep.
                best_by_bin: dict[int, tuple[float, str, int]] = {}
                for i, cand in enumerate(scored):
                    if cand.bin_index is None:
                        continue
                    entry = (float(mean[i]), cand.key, cand.index)
                    cur = best_by_bin.get(cand.bin_index)
                    if cur is None or entry < cur:
                        best_by_bin[cand.bin_index] = entry
                for _, (_, _, index) in sorted(best_by_bin.items()):
                    chosen.add(index)
                rest = [c for c in scored if c.index not in chosen]
                if self.explore and rest:
                    rest = sorted(rest, key=lambda c: c.key)
                    seed = stable_seed(
                        "explore", family, *[c.key for c in rest]
                    )
                    rng = np.random.default_rng(seed)
                    picks = rng.choice(
                        len(rest),
                        size=min(self.explore, len(rest)),
                        replace=False,
                    )
                    for i in sorted(int(p) for p in picks):
                        chosen.add(rest[i].index)
        for cand in scored:
            if cand.journaled == "done":
                keep.add(cand.index)
            elif cand.journaled == "pruned":
                prune.add(cand.index)
            elif cand.index in chosen:
                keep.add(cand.index)
            else:
                prune.add(cand.index)
        self.stats.sel_kept += len(keep)
        self.stats.sel_pruned += len(prune)
        return keep, prune

    # -- tuning ----------------------------------------------------------

    def plan_prefix(
        self, family: str, features_per_count: list[list[float] | None],
        limit: int,
    ) -> int:
        """Predicted prefix length for a tuning sweep of ``limit`` points.

        Returns how many leading wire counts to keep: the predicted cost
        minimum plus one plus the exploration margin, clamped to
        ``[1, limit]``.  Falls back to the full ``limit`` when the model
        is unavailable, uncertain, or any point lacks features.
        """
        if limit <= 1:
            return limit
        model = self._model_for(family, "tune")
        if model is None:
            self.stats.fallback("corpus-too-small")
            return limit
        if any(f is None for f in features_per_count):
            self.stats.fallback("missing-features")
            return limit
        mean, max_spread = self._predict(model, features_per_count)
        if max_spread > self.variance_ceiling:
            self.stats.fallback("high-variance")
            return limit
        k_pred = int(np.argmin(mean))
        keep = min(limit, k_pred + 2 + self.explore)
        self.stats.tune_pruned += limit - keep
        return keep

    # -- recording -------------------------------------------------------

    def record(
        self,
        family: str,
        stage: str,
        key: str,
        features: list[float] | None,
        cost: float,
    ) -> None:
        """Record one **measured** (features -> cost) example.

        Journal-replayed evaluations are recorded too (their costs are
        real), so a resumed run reconstructs the same training set; the
        store dedupes by key.
        """
        if features is None or not np.isfinite(cost):
            return
        row = CorpusRow(
            family=family,
            stage=stage,
            key=key,
            features=tuple(float(x) for x in features),
            cost=float(cost),
        )
        if self.store.record(row):
            self.stats.recorded += 1

    def flush(self) -> int:
        """Persist rows recorded since the last flush (run boundary)."""
        return self.store.flush()
