"""Deterministic gradient-boosted stump ensemble (numpy only).

A tiny regressor good enough to *rank* layout candidates: gradient
boosting over depth-1 regression trees ("stumps"), bagged into a small
ensemble whose spread doubles as an uncertainty estimate.  Everything is
deterministic for a fixed training set:

* splits scan features in index order and thresholds in ascending order,
  accepting a new best only on a strict improvement, so ties resolve to
  the lowest (feature, threshold) pair;
* bootstrap resampling uses :class:`numpy.random.default_rng` seeded
  from a caller-supplied integer (derived from the corpus family name,
  never from process state);
* no wall clock, no global RNG, no set iteration.

The ensemble disagreement (per-row standard deviation across boosters,
normalized by the training-target spread) is the fallback signal: when
the boosters cannot agree, the guide refuses to prune.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: str) -> int:
    """A 64-bit seed derived from strings via SHA-256 (never from
    process state), so model training is reproducible everywhere."""
    blob = ":".join(parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class _Stump:
    """One depth-1 regression tree: feature, threshold, two leaves."""

    __slots__ = ("feature", "threshold", "left", "right")

    def __init__(self, feature: int, threshold: float,
                 left: float, right: float):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf value per row of ``X``."""
        go_left = X[:, self.feature] <= self.threshold
        return np.where(go_left, self.left, self.right)


def _fit_stump(X: np.ndarray, residual: np.ndarray) -> _Stump | None:
    """The SSE-minimizing stump over all (feature, threshold) splits.

    Returns None when every feature is constant (nothing to split on).
    Ties break toward the lowest feature index, then lowest threshold,
    via strict-improvement comparison in scan order.
    """
    n, d = X.shape
    best: tuple[float, _Stump] | None = None
    total = float(residual.sum())
    for j in range(d):
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        rs = residual[order]
        prefix = np.cumsum(rs)
        # Candidate split after position i (0-based): left = rows 0..i.
        boundaries = np.nonzero(xs[:-1] < xs[1:])[0]
        if boundaries.size == 0:
            continue
        n_left = boundaries + 1
        n_right = n - n_left
        sum_left = prefix[boundaries]
        sum_right = total - sum_left
        # Maximizing sum^2/n per side == minimizing SSE.
        gain = sum_left**2 / n_left + sum_right**2 / n_right
        for pos in range(len(boundaries)):
            score = float(gain[pos])
            if best is None or score > best[0] + 1e-12:
                i = boundaries[pos]
                stump = _Stump(
                    feature=j,
                    threshold=float((xs[i] + xs[i + 1]) / 2.0),
                    left=float(sum_left[pos] / n_left[pos]),
                    right=float(sum_right[pos] / n_right[pos]),
                )
                best = (score, stump)
    return best[1] if best is not None else None


class StumpBooster:
    """One gradient-boosted stump chain fit on (a resample of) the data."""

    def __init__(self, n_rounds: int = 40, learning_rate: float = 0.3):
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.base = 0.0
        self.stumps: list[_Stump] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StumpBooster":
        """Fit boosted stumps to ``(X, y)``; returns self."""
        self.base = float(y.mean())
        pred = np.full(len(y), self.base)
        self.stumps = []
        for _ in range(self.n_rounds):
            stump = _fit_stump(X, y - pred)
            if stump is None:
                break
            pred = pred + self.learning_rate * stump.predict(X)
            self.stumps.append(stump)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target per row of ``X``."""
        pred = np.full(len(X), self.base)
        for stump in self.stumps:
            pred = pred + self.learning_rate * stump.predict(X)
        return pred


class StumpEnsemble:
    """Bagged boosted stumps with a disagreement-based uncertainty.

    Args:
        n_boosters: Ensemble size (each on its own seeded bootstrap).
        n_rounds: Boosting rounds per booster.
        learning_rate: Shrinkage per round.
        seed: Base seed; booster ``b`` uses ``seed + b``.
    """

    def __init__(
        self,
        n_boosters: int = 4,
        n_rounds: int = 40,
        learning_rate: float = 0.3,
        seed: int = 0,
    ):
        self.n_boosters = n_boosters
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.seed = seed
        self.boosters: list[StumpBooster] = []
        self.y_scale = 1.0

    def fit(self, X, y) -> "StumpEnsemble":
        """Fit the ensemble; the first booster sees the full data, the
        rest seeded bootstrap resamples.  Returns self."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self.y_scale = float(y.std()) or 1.0
        self.boosters = []
        n = len(y)
        for b in range(self.n_boosters):
            booster = StumpBooster(self.n_rounds, self.learning_rate)
            if b == 0:
                booster.fit(X, y)
            else:
                rng = np.random.default_rng(self.seed + b)
                idx = np.sort(rng.integers(0, n, size=n))
                booster.fit(X[idx], y[idx])
            self.boosters.append(booster)
        return self

    def predict(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(mean, normalized disagreement)`` over the ensemble.

        The disagreement is the standard deviation across boosters
        divided by the training-target spread, so "1.0" means the
        boosters disagree by a full target standard deviation.
        """
        X = np.asarray(X, dtype=float)
        preds = np.stack([b.predict(X) for b in self.boosters])
        return preds.mean(axis=0), preds.std(axis=0) / self.y_scale
