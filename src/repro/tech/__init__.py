"""Synthetic FinFET process design kit (PDK).

This package replaces the commercial 14nm-class FinFET PDK used in the
paper.  It provides everything the rest of the library consumes from a
technology:

* :class:`~repro.tech.stack.MetalStack` — the back-end-of-line metal and
  via stack with per-layer sheet resistance and capacitance coefficients,
* :class:`~repro.tech.rules.DesignRules` — gridded front-end rules (fin
  pitch, poly pitch, diffusion extensions, well enclosures),
* :class:`~repro.tech.finfet.MosModelCard` — compact-model cards for the
  n/p FinFETs, including layout-dependent-effect (LDE) coefficients,
* :class:`~repro.tech.pdk.Technology` — the bundle tying these together,
  with :meth:`~repro.tech.pdk.Technology.default` returning the synthetic
  ``FF14`` node used throughout the experiments.
"""

from repro.tech.stack import MetalLayer, ViaLayer, MetalStack
from repro.tech.rules import DesignRules
from repro.tech.finfet import MosModelCard, LdeCoefficients
from repro.tech.pdk import Technology

__all__ = [
    "MetalLayer",
    "ViaLayer",
    "MetalStack",
    "DesignRules",
    "MosModelCard",
    "LdeCoefficients",
    "Technology",
]
