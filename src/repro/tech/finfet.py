"""FinFET compact-model cards and layout-dependent-effect coefficients.

The cards here parameterize the EKV-style model in
:mod:`repro.devices.mosfet`.  They are *synthetic* — chosen to give
14nm-class magnitudes (tens of microamps per fin, sub-volt thresholds,
attofarad-scale per-fin capacitances) — because the real foundry model is
unavailable.  The methodology only depends on the model being smooth and
physically monotone; see DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError


@dataclass(frozen=True)
class LdeCoefficients:
    """Coefficients of the layout-dependent-effect (LDE) models.

    Two effects are modelled, matching the paper:

    * **LOD** (length of diffusion, stress): fingers close to a diffusion
      edge see a threshold shift and mobility change proportional to
      ``1/SA + 1/SB`` where SA/SB are gate-to-diffusion-edge distances.
    * **WPE** (well proximity): devices close to a well edge see a
      threshold shift proportional to ``1/SC`` where SC is the distance to
      the nearest well edge.

    Attributes:
        kvth_lod: LOD threshold coefficient (V * nm); ``dVth = kvth_lod *
            (1/SA + 1/SB - 2/sa_ref)``.
        kmu_lod: LOD relative-mobility coefficient (nm); ``dmu/mu =
            -kmu_lod * (1/SA + 1/SB - 2/sa_ref)``.
        sa_ref: Reference diffusion-edge distance (nm) at which the model
            card was characterized (zero shift).
        kvth_wpe: WPE threshold coefficient (V * nm); ``dVth = kvth_wpe *
            (1/SC - 1/sc_ref)``.
        sc_ref: Reference well-edge distance (nm).
    """

    kvth_lod: float = 0.8
    kmu_lod: float = 3.0
    sa_ref: float = 500.0
    kvth_wpe: float = 1.5
    sc_ref: float = 1000.0

    def __post_init__(self) -> None:
        if self.sa_ref <= 0 or self.sc_ref <= 0:
            raise TechnologyError("LDE reference distances must be > 0")

    def lod_vth_shift(self, sa_nm: float, sb_nm: float) -> float:
        """Threshold shift (V) for gate-to-diffusion-edge distances SA, SB."""
        if sa_nm <= 0 or sb_nm <= 0:
            raise TechnologyError("SA/SB distances must be > 0")
        return self.kvth_lod * (1.0 / sa_nm + 1.0 / sb_nm - 2.0 / self.sa_ref)

    def lod_mobility_factor(self, sa_nm: float, sb_nm: float) -> float:
        """Multiplicative mobility factor for distances SA, SB (about 1.0)."""
        if sa_nm <= 0 or sb_nm <= 0:
            raise TechnologyError("SA/SB distances must be > 0")
        shift = self.kmu_lod * (1.0 / sa_nm + 1.0 / sb_nm - 2.0 / self.sa_ref)
        return max(0.5, 1.0 - shift)

    def wpe_vth_shift(self, sc_nm: float) -> float:
        """Threshold shift (V) for a well-edge distance SC."""
        if sc_nm <= 0:
            raise TechnologyError("SC distance must be > 0")
        return self.kvth_wpe * (1.0 / sc_nm - 1.0 / self.sc_ref)


@dataclass(frozen=True)
class MosModelCard:
    """Compact-model card for one FinFET polarity.

    The DC model is the symmetric EKV formulation (see
    :mod:`repro.devices.mosfet`): it is smooth across all operating
    regions, which the Newton solver relies on.

    Attributes:
        name: Card name, e.g. ``"nfet"``.
        polarity: ``+1`` for n-type, ``-1`` for p-type.
        vth0: Long-channel threshold voltage (V, positive for both types).
        slope_factor: Subthreshold slope factor ``n`` (dimensionless).
        kp: Transconductance parameter ``mu * Cox`` (A/V^2).
        lambda_clm: Channel-length-modulation coefficient (1/V).
        vsat_field: Velocity-saturation critical field parameter expressed
            as a voltage (V); larger means weaker velocity saturation.
        cox_area: Gate oxide capacitance per area (F/m^2).
        cov_per_fin: Gate-source/drain overlap+fringe capacitance per fin
            per side (F).
        cj_per_fin: Source/drain junction capacitance per fin for an
            unshared diffusion (F).
        cj_shared_factor: Junction-capacitance multiplier when a diffusion
            is shared between two fingers (0..1).
        sigma_vth_fin: Random threshold mismatch per fin (V); total device
            mismatch scales as ``sigma_vth_fin / sqrt(nfins)``.
        lde: Layout-dependent-effect coefficients.
    """

    name: str
    polarity: int
    vth0: float
    slope_factor: float
    kp: float
    lambda_clm: float
    vsat_field: float
    cox_area: float
    cov_per_fin: float
    cj_per_fin: float
    cj_shared_factor: float
    sigma_vth_fin: float
    lde: LdeCoefficients

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise TechnologyError("polarity must be +1 (n) or -1 (p)")
        if self.vth0 <= 0:
            raise TechnologyError("vth0 must be > 0 (magnitude convention)")
        if self.slope_factor < 1.0:
            raise TechnologyError("slope_factor must be >= 1")
        if self.kp <= 0:
            raise TechnologyError("kp must be > 0")
        if not 0.0 <= self.cj_shared_factor <= 1.0:
            raise TechnologyError("cj_shared_factor must be in [0, 1]")

    @property
    def is_nmos(self) -> bool:
        """True for the n-type card."""
        return self.polarity == +1


def default_nmos(lde: LdeCoefficients | None = None) -> MosModelCard:
    """Synthetic 14nm-class n-FinFET card."""
    return MosModelCard(
        name="nfet",
        polarity=+1,
        vth0=0.35,
        slope_factor=1.15,
        kp=2.4e-4,
        lambda_clm=0.12,
        vsat_field=0.6,
        cox_area=0.0384,
        cov_per_fin=3.2e-17,
        cj_per_fin=3.5e-17,
        cj_shared_factor=0.45,
        sigma_vth_fin=0.030,
        lde=lde or LdeCoefficients(),
    )


def default_pmos(lde: LdeCoefficients | None = None) -> MosModelCard:
    """Synthetic 14nm-class p-FinFET card.

    FinFET hole mobility is close to electron mobility thanks to strained
    SiGe fins, so ``kp`` is only modestly lower than the n-card.
    """
    return MosModelCard(
        name="pfet",
        polarity=-1,
        vth0=0.35,
        slope_factor=1.18,
        kp=2.0e-4,
        lambda_clm=0.14,
        vsat_field=0.55,
        cox_area=0.0384,
        cov_per_fin=3.4e-17,
        cj_per_fin=3.8e-17,
        cj_shared_factor=0.45,
        sigma_vth_fin=0.032,
        lde=lde or LdeCoefficients(),
    )
