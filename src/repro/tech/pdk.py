"""The :class:`Technology` bundle and the default synthetic ``FF14`` node.

A :class:`Technology` ties together design rules, the metal/via stack and
the device model cards, and is threaded through every layer of the library
(cell generation, extraction, simulation).  ``Technology.default()``
returns the synthetic 14nm-class FinFET node used by all experiments.

The BEOL numbers encode the FinFET reality the paper leans on: lower
metals (M1/M2) are thin and very resistive, upper metals progressively
wider and lower-resistance, and every wire carries area + fringe
capacitance, so widening a route trades R for C.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TechnologyError
from repro.tech.finfet import (
    LdeCoefficients,
    MosModelCard,
    default_nmos,
    default_pmos,
)
from repro.tech.rules import DesignRules
from repro.tech.stack import MetalLayer, MetalStack, ViaLayer


def _ff14_stack() -> MetalStack:
    """Six-layer metal stack with 14nm-class RC coefficients."""
    metals = [
        MetalLayer("M1", 1, "h", 32, 64, 12.0, 2.2e-5, 2.4e-11),
        MetalLayer("M2", 2, "v", 32, 64, 10.0, 2.0e-5, 2.4e-11),
        MetalLayer("M3", 3, "h", 40, 80, 8.0, 1.8e-5, 2.2e-11),
        MetalLayer("M4", 4, "v", 48, 96, 5.0, 1.6e-5, 2.0e-11),
        MetalLayer("M5", 5, "h", 80, 160, 2.0, 1.4e-5, 1.9e-11),
        MetalLayer("M6", 6, "v", 120, 240, 1.0, 1.2e-5, 1.8e-11),
    ]
    vias = [
        ViaLayer("V1", "M1", "M2", 16.0, 2.0e-17, 32),
        ViaLayer("V2", "M2", "M3", 12.0, 2.2e-17, 32),
        ViaLayer("V3", "M3", "M4", 9.0, 2.5e-17, 40),
        ViaLayer("V4", "M4", "M5", 5.0, 3.0e-17, 48),
        ViaLayer("V5", "M5", "M6", 3.0, 4.0e-17, 80),
    ]
    return MetalStack(metals=metals, vias=vias)


@dataclass
class Technology:
    """A complete synthetic technology node.

    Attributes:
        name: Node name, e.g. ``"FF14"``.
        rules: Front-end design rules.
        stack: Metal/via stack.
        nmos: N-FinFET model card.
        pmos: P-FinFET model card.
        vdd: Nominal supply voltage (V).
        contact_resistance: Source/drain contact resistance per fin (ohm);
            divided by the number of contacted fins during extraction.
        device_metal: Name of the metal used for within-primitive device
            strapping (source/drain mesh wires).
        routing_metals: Names of the metals available to the global router.
        vth_gradient_x: Systematic threshold gradient along x (V/nm).
            Models across-die process variation; symmetric placement
            patterns cancel it, clustered (AABB) patterns do not.
        vth_gradient_y: Systematic threshold gradient along y (V/nm).
    """

    name: str
    rules: DesignRules
    stack: MetalStack
    nmos: MosModelCard
    pmos: MosModelCard
    vdd: float = 0.8
    contact_resistance: float = 90.0
    device_metal: str = "M1"
    routing_metals: tuple[str, ...] = ("M2", "M3", "M4", "M5")
    vth_gradient_x: float = 2.0e-8
    vth_gradient_y: float = 5.0e-8

    def __post_init__(self) -> None:
        self.stack.metal(self.device_metal)
        for name in self.routing_metals:
            self.stack.metal(name)
        if self.vdd <= 0:
            raise TechnologyError("vdd must be > 0")
        if self.contact_resistance <= 0:
            raise TechnologyError("contact_resistance must be > 0")

    @classmethod
    def default(cls) -> "Technology":
        """The synthetic ``FF14`` node used by all experiments."""
        return cls(
            name="FF14",
            rules=DesignRules(),
            stack=_ff14_stack(),
            nmos=default_nmos(),
            pmos=default_pmos(),
        )

    @classmethod
    def without_lde(cls) -> "Technology":
        """An ``FF14`` variant with LDEs disabled (for ablation studies)."""
        zero = LdeCoefficients(kvth_lod=0.0, kmu_lod=0.0, kvth_wpe=0.0)
        tech = cls.default()
        tech.name = "FF14-noLDE"
        tech.nmos = replace(tech.nmos, lde=zero)
        tech.pmos = replace(tech.pmos, lde=zero)
        return tech

    def card(self, polarity: str) -> MosModelCard:
        """Return the model card for ``"nmos"``/``"n"`` or ``"pmos"``/``"p"``."""
        key = polarity.lower()
        if key in ("n", "nmos", "nfet"):
            return self.nmos
        if key in ("p", "pmos", "pfet"):
            return self.pmos
        raise TechnologyError(f"unknown device polarity {polarity!r}")
