"""Gridded FinFET front-end design rules.

FinFET layout is gridded: fins sit on a fixed vertical pitch and gates on a
fixed horizontal (poly) pitch, so a transistor's footprint is fully
determined by its fin count and finger count.  The rules here are the
subset the primitive cell generator needs: pitches, fin dimensions,
diffusion extensions, dummy requirements and well enclosures.

All lengths are integer nanometres.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError


@dataclass(frozen=True)
class DesignRules:
    """Front-end rule set for a gridded FinFET node.

    Attributes:
        fin_pitch: Vertical pitch between fins (nm).
        fin_height: Physical fin height (nm); enters the effective width.
        fin_thickness: Fin body thickness (nm); enters the effective width.
        poly_pitch: Contacted poly (gate) pitch, CPP (nm).
        gate_length: Drawn channel length (nm).
        diffusion_extension: Diffusion past the outermost gate (nm).
        row_height: Height of one device row excluding fins (guard spacing,
            gate endcaps) (nm); total row height is
            ``nfin * fin_pitch + row_height``.
        row_spacing: Vertical spacing between stacked device rows (nm).
        well_enclosure: N/P-well enclosure of the diffusion (nm); sets the
            well-proximity distance for edge devices.
        dummy_fingers: Number of dummy gates placed on each side of a
            device stack when dummies are requested.
        m1_track_offset: Offset of the first M1 routing track from the cell
            boundary (nm).
    """

    fin_pitch: int = 48
    fin_height: int = 42
    fin_thickness: int = 8
    poly_pitch: int = 90
    gate_length: int = 14
    diffusion_extension: int = 60
    row_height: int = 180
    row_spacing: int = 120
    well_enclosure: int = 150
    dummy_fingers: int = 2
    m1_track_offset: int = 32

    def __post_init__(self) -> None:
        for name in (
            "fin_pitch",
            "fin_height",
            "fin_thickness",
            "poly_pitch",
            "gate_length",
        ):
            if getattr(self, name) <= 0:
                raise TechnologyError(f"design rule {name} must be > 0")
        if self.gate_length >= self.poly_pitch:
            raise TechnologyError("gate_length must be smaller than poly_pitch")
        if self.dummy_fingers < 0:
            raise TechnologyError("dummy_fingers must be >= 0")

    @property
    def fin_width_effective(self) -> int:
        """Electrical width contributed by one fin (nm): ``2*Hfin + Tfin``."""
        return 2 * self.fin_height + self.fin_thickness

    def device_width(self, nfin: int, nf: int, m: int) -> int:
        """Total quoted device width in nm for a (nfin, nf, m) device.

        Following designer convention for FinFET nodes, the quoted width is
        the number of fins times the fin pitch (not the wrapped electrical
        width), so the paper's ``W/L = 46um/14nm`` device corresponds to
        960 fins at a 48nm fin pitch.
        """
        if nfin <= 0 or nf <= 0 or m <= 0:
            raise TechnologyError("nfin, nf and m must all be >= 1")
        return nfin * nf * m * self.fin_pitch

    def finger_footprint(self, nf: int, with_dummies: bool = False) -> int:
        """Horizontal extent of an ``nf``-finger device stack (nm)."""
        if nf <= 0:
            raise TechnologyError("nf must be >= 1")
        fingers = nf + (2 * self.dummy_fingers if with_dummies else 0)
        return fingers * self.poly_pitch + 2 * self.diffusion_extension

    def row_footprint(self, nfin: int) -> int:
        """Vertical extent of one device row with ``nfin`` fins (nm)."""
        if nfin <= 0:
            raise TechnologyError("nfin must be >= 1")
        return nfin * self.fin_pitch + self.row_height
