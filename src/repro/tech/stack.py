"""Back-end-of-line metal/via stack description.

FinFET nodes have strongly resistive lower metals; the paper's whole
premise (trading wire R against wire C by choosing the number of parallel
min-width wires) rests on that.  Each :class:`MetalLayer` therefore carries
a sheet resistance and simple two-term capacitance model

``C(wire) = c_area * width * length + c_fringe * 2 * length``

which is what the extractor evaluates.  Geometry is in integer nanometres;
resistances in ohms, capacitances in farads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TechnologyError
from repro.units import meters


@dataclass(frozen=True)
class MetalLayer:
    """One routing metal layer.

    Attributes:
        name: Layer name, e.g. ``"M1"``.
        index: 1-based position in the stack (M1 is 1).
        direction: Preferred routing direction, ``"h"`` or ``"v"``.
        min_width: Minimum (and default) wire width in nm.
        pitch: Track pitch in nm (wire width plus spacing).
        sheet_res: Sheet resistance in ohms per square.
        c_area: Parallel-plate capacitance to neighbouring planes, F/m^2.
        c_fringe: Fringe/coupling capacitance per edge length, F/m.
    """

    name: str
    index: int
    direction: str
    min_width: int
    pitch: int
    sheet_res: float
    c_area: float
    c_fringe: float

    def __post_init__(self) -> None:
        if self.direction not in ("h", "v"):
            raise TechnologyError(
                f"layer {self.name}: direction must be 'h' or 'v', "
                f"got {self.direction!r}"
            )
        if self.min_width <= 0 or self.pitch < self.min_width:
            raise TechnologyError(
                f"layer {self.name}: need 0 < min_width <= pitch "
                f"(got width={self.min_width}, pitch={self.pitch})"
            )
        if self.sheet_res <= 0:
            raise TechnologyError(f"layer {self.name}: sheet_res must be > 0")

    def wire_resistance(self, length_nm: float, width_nm: float | None = None) -> float:
        """Resistance of a wire of the given length and width, in ohms."""
        width = self.min_width if width_nm is None else width_nm
        if width <= 0:
            raise TechnologyError(f"layer {self.name}: wire width must be > 0")
        if length_nm < 0:
            raise TechnologyError(f"layer {self.name}: wire length must be >= 0")
        return self.sheet_res * length_nm / width

    def wire_capacitance(self, length_nm: float, width_nm: float | None = None) -> float:
        """Capacitance of a wire of the given length and width, in farads."""
        width = self.min_width if width_nm is None else width_nm
        if width <= 0:
            raise TechnologyError(f"layer {self.name}: wire width must be > 0")
        if length_nm < 0:
            raise TechnologyError(f"layer {self.name}: wire length must be >= 0")
        length_m = meters(length_nm)
        width_m = meters(width)
        return self.c_area * width_m * length_m + self.c_fringe * 2.0 * length_m


@dataclass(frozen=True)
class ViaLayer:
    """A via layer connecting ``lower`` metal to ``upper`` metal.

    Attributes:
        name: Via layer name, e.g. ``"V1"``.
        lower: Name of the metal layer below.
        upper: Name of the metal layer above.
        resistance: Resistance per via cut in ohms.
        capacitance: Parasitic capacitance per cut in farads.
        size: Cut edge length in nm (square cuts).
    """

    name: str
    lower: str
    upper: str
    resistance: float
    capacitance: float
    size: int

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise TechnologyError(f"via {self.name}: resistance must be > 0")
        if self.size <= 0:
            raise TechnologyError(f"via {self.name}: size must be > 0")

    def array_resistance(self, cuts: int) -> float:
        """Resistance of ``cuts`` parallel via cuts, in ohms."""
        if cuts < 1:
            raise TechnologyError(f"via {self.name}: need at least one cut")
        return self.resistance / cuts


@dataclass
class MetalStack:
    """Ordered collection of metal and via layers.

    Layers are addressed by name (``stack.metal("M3")``) or by index
    (``stack.metal_by_index(3)``).  Vias are addressed by the pair of
    metals they join.
    """

    metals: list[MetalLayer] = field(default_factory=list)
    vias: list[ViaLayer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._metal_by_name = {layer.name: layer for layer in self.metals}
        self._metal_by_index = {layer.index: layer for layer in self.metals}
        if len(self._metal_by_name) != len(self.metals):
            raise TechnologyError("duplicate metal layer names in stack")
        if len(self._metal_by_index) != len(self.metals):
            raise TechnologyError("duplicate metal layer indices in stack")
        self._via_by_pair: dict[tuple[str, str], ViaLayer] = {}
        for via in self.vias:
            if via.lower not in self._metal_by_name:
                raise TechnologyError(f"via {via.name}: unknown lower metal {via.lower}")
            if via.upper not in self._metal_by_name:
                raise TechnologyError(f"via {via.name}: unknown upper metal {via.upper}")
            self._via_by_pair[(via.lower, via.upper)] = via

    @property
    def num_metals(self) -> int:
        """Number of metal layers in the stack."""
        return len(self.metals)

    def metal(self, name: str) -> MetalLayer:
        """Return the metal layer with the given name."""
        try:
            return self._metal_by_name[name]
        except KeyError:
            raise TechnologyError(f"unknown metal layer {name!r}") from None

    def metal_by_index(self, index: int) -> MetalLayer:
        """Return the metal layer with the given 1-based index."""
        try:
            return self._metal_by_index[index]
        except KeyError:
            raise TechnologyError(f"no metal layer with index {index}") from None

    def via_between(self, lower: str, upper: str) -> ViaLayer:
        """Return the via layer joining two adjacent metals (either order)."""
        if (lower, upper) in self._via_by_pair:
            return self._via_by_pair[(lower, upper)]
        if (upper, lower) in self._via_by_pair:
            return self._via_by_pair[(upper, lower)]
        raise TechnologyError(f"no via between {lower} and {upper}")

    def via_stack_resistance(self, from_metal: str, to_metal: str, cuts: int = 1) -> float:
        """Total resistance of a via stack from one metal up/down to another.

        The stack is traversed one layer at a time; ``cuts`` parallel cuts
        are assumed at every level.
        """
        lo = self.metal(from_metal).index
        hi = self.metal(to_metal).index
        if lo == hi:
            return 0.0
        step = 1 if hi > lo else -1
        total = 0.0
        for idx in range(lo, hi, step):
            a = self.metal_by_index(min(idx, idx + step))
            b = self.metal_by_index(max(idx, idx + step))
            total += self.via_between(a.name, b.name).array_resistance(cuts)
        return total
