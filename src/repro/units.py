"""Unit conventions and helpers.

Electrical quantities are plain SI floats (volts, amperes, ohms, farads,
hertz, seconds).  Geometry is integer nanometres, which keeps layout
arithmetic exact on the FinFET placement grid.

The helpers here convert between the two worlds and provide the handful of
physical constants the device models need.
"""

from __future__ import annotations

# --- physical constants ----------------------------------------------------

#: Boltzmann constant times room temperature over electron charge (volts).
THERMAL_VOLTAGE = 0.02585

#: Vacuum permittivity (F/m).
EPS0 = 8.854e-12

#: Relative permittivity of SiO2.
EPS_SIO2 = 3.9

#: Relative permittivity of a low-k inter-metal dielectric.
EPS_LOWK = 2.9

# --- geometry scale --------------------------------------------------------

#: Number of integer geometry units per metre (1 unit = 1 nm).
UNITS_PER_M = 1_000_000_000


def nm(value_m: float) -> int:
    """Convert a length in metres to integer nanometres (rounded)."""
    return int(round(value_m * UNITS_PER_M))


def meters(value_nm: float) -> float:
    """Convert a length in nanometres to metres."""
    return value_nm / UNITS_PER_M


def um(value_nm: float) -> float:
    """Convert a length in nanometres to micrometres."""
    return value_nm / 1000.0


def nm_from_um(value_um: float) -> int:
    """Convert a length in micrometres to integer nanometres."""
    return int(round(value_um * 1000.0))


# --- formatting helpers ----------------------------------------------------

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``1.96 mA/V``.

    Zero and non-finite values are printed without a prefix.
    """
    if value == 0 or not _is_finite(value):
        return f"{value:.{digits}g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def _is_finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))
