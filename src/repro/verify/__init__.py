"""Static verification of generated layouts: DRC + connectivity.

The paper's premise is that procedurally generated primitives are
*correct by construction*; this subsystem checks that claim without a
single simulation.  :func:`verify_layout` runs both engines over a
:class:`~repro.geometry.layout.Layout` and returns one merged
:class:`~repro.verify.diagnostics.Report`:

* :mod:`repro.verify.drc` — gridded-FinFET design rules (pitch grids,
  footprints, wire width/spacing, via stacking, well enclosure, ports),
* :mod:`repro.verify.connectivity` — the LVS-lite net graph (terminal
  wiring vs. the schematic, net contiguity, shorts).

It is wired in at three call sites: the cell generator verifies every
emitted variant, the hierarchical flow verifies assembled blocks after
placement, and the ``repro verify`` CLI checks any library primitive or
benchmark circuit and exits nonzero on errors.  It is also the cheapest
guard rail the optimizer loop has: a broken variant is rejected before
any SPICE budget is spent on it.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.geometry.layout import Instance, Layout, flatten_instances
from repro.tech.pdk import Technology
from repro.verify.connectivity import NetGraph, run_connectivity
from repro.verify.diagnostics import Report, Violation
from repro.verify.drc import check_instance_overlaps, run_drc

__all__ = [
    "Report",
    "Violation",
    "NetGraph",
    "VerificationError",
    "run_drc",
    "run_connectivity",
    "verify_layout",
    "verify_assembly",
]


def verify_layout(
    layout: Layout,
    tech: Technology,
    spec=None,
    strict: bool = False,
    absolute_grid: bool = True,
) -> Report:
    """Run DRC + connectivity on one layout.

    Args:
        layout: The layout to verify.
        tech: Technology whose rules apply.
        spec: Optional :class:`~repro.cellgen.generator.CellSpec`; when
            given, terminal wiring is checked against the schematic.
        strict: Raise :class:`VerificationError` when errors are found
            instead of returning the report.
        absolute_grid: Forwarded to :func:`~repro.verify.drc.run_drc`;
            flattened assemblies pass ``False`` (children are translated
            off the absolute poly-grid phase by placement).

    Returns:
        The merged report (always returned when ``strict`` is false).

    Raises:
        VerificationError: In strict mode, when any error-severity
            violation is present (warnings never raise).
    """
    report = run_drc(layout, tech, absolute_grid=absolute_grid)
    report.merge(run_connectivity(layout, tech, spec=spec))
    if strict:
        report.raise_if_errors()
    return report


def verify_assembly(
    name: str,
    instances: list[Instance],
    tech: Technology,
    net_map: dict[str, dict[str, str]] | None = None,
    strict: bool = False,
) -> Report:
    """Verify an assembled block: placed instances plus their flattening.

    Checks that no two placed instances overlap, then flattens the
    children into parent coordinates (rewriting block-local nets through
    ``net_map`` so same-named child nets cannot alias) and runs the full
    DRC + connectivity pass over the merged geometry.

    Args:
        name: Name for the flattened layout (used in messages).
        instances: Placed child layouts.
        tech: Technology whose rules apply.
        net_map: ``{instance: {child_net: parent_net}}`` rewrite table.
        strict: Raise :class:`VerificationError` on errors.

    Returns:
        The merged report for the placement and the flattened geometry.
    """
    report = Report(target=name)
    check_instance_overlaps(report, instances)
    if instances:
        flat = flatten_instances(name, instances, net_map=net_map)
        report.merge(verify_layout(flat, tech, absolute_grid=False))
    if strict:
        report.raise_if_errors()
    return report
