"""Static verification: DRC + connectivity + ERC + constraint lint.

The paper's premise is that procedurally generated primitives are
*correct by construction*; this subsystem checks that claim without a
single simulation.  Four engines share one rule registry
(:mod:`repro.verify.rules`) and one :class:`~repro.verify.diagnostics
.Report`:

* :mod:`repro.verify.drc` — gridded-FinFET design rules (pitch grids,
  footprints, wire width/spacing, via stacking, well enclosure, ports),
* :mod:`repro.verify.connectivity` — the LVS-lite net graph (terminal
  wiring vs. the schematic, net contiguity, shorts),
* :mod:`repro.verify.erc` — electrical rules over flat netlists
  (floating gates, undriven nets, rail shorts, bulk polarity),
* :mod:`repro.verify.constraints` — analog-intent constraints (matched
  sizing, mirror symmetry, common centroid, LDE equivalence, symmetric
  wire meshes, route parallelism).

:func:`verify_layout` runs the geometric engines (plus the constraint
analyzer whenever a :class:`~repro.cellgen.generator.CellSpec` is
given); :func:`verify_circuit` runs ERC on a netlist.  Known deviations
are suppressed explicitly through a ``.reprolint.toml`` waiver file
(:class:`~repro.verify.rules.WaiverSet`), never by disabling rules.

It is wired in at four call sites: the cell generator verifies every
emitted variant, the optimizer ERC-gates the schematic reference before
spending SPICE budget, the hierarchical flow verifies assembled blocks
and route parallelism after placement, and the ``repro verify`` CLI
checks any library primitive or benchmark circuit and exits nonzero on
unwaived errors.
"""

from __future__ import annotations

from pathlib import Path

from repro.cellgen.generator import CellSpec
from repro.errors import VerificationError
from repro.geometry.layout import Instance, Layout, flatten_instances
from repro.spice.netlist import Circuit
from repro.tech.pdk import Technology
from repro.verify.antenna import run_antenna
from repro.verify.connectivity import NetGraph, run_connectivity
from repro.verify.constraints import check_route_parallelism, run_constraints
from repro.verify.diagnostics import Report, Violation
from repro.verify.drc import check_instance_overlaps, run_drc
from repro.verify.emag import (
    budget_net_currents,
    check_route_currents,
    run_emag,
)
from repro.verify.erc import run_erc
from repro.verify.rules import (
    RuleDef,
    Waiver,
    WaiverSet,
    all_rules,
    register_rule,
    rule,
    rules_in_category,
)
from repro.verify.symmetry_geo import run_symmetry_geo
from repro.verify.tech import AuditTech, LayerAudit

__all__ = [
    "Report",
    "Violation",
    "NetGraph",
    "RuleDef",
    "Waiver",
    "WaiverSet",
    "AuditTech",
    "LayerAudit",
    "VerificationError",
    "all_rules",
    "register_rule",
    "rule",
    "rules_in_category",
    "run_drc",
    "run_connectivity",
    "run_erc",
    "run_constraints",
    "run_emag",
    "run_antenna",
    "run_symmetry_geo",
    "budget_net_currents",
    "check_route_currents",
    "check_route_parallelism",
    "load_waivers",
    "verify_layout",
    "verify_circuit",
    "verify_assembly",
]

#: Conventional waiver-file name looked up by the CLI and Makefile.
DEFAULT_WAIVER_FILE = ".reprolint.toml"


def load_waivers(path: str | Path | None = None) -> WaiverSet | None:
    """Load a waiver baseline, tolerating a missing default file.

    With an explicit ``path`` the file must exist (a typo'd baseline
    silently waiving nothing would be worse than an error).  With
    ``path=None`` the conventional :data:`DEFAULT_WAIVER_FILE` is
    loaded from the current directory when present, else ``None``.
    """
    if path is None:
        default = Path(DEFAULT_WAIVER_FILE)
        if not default.is_file():
            return None
        return WaiverSet.load(default)
    return WaiverSet.load(path)


def verify_layout(
    layout: Layout,
    tech: Technology,
    spec: CellSpec | None = None,
    strict: bool = False,
    absolute_grid: bool = True,
    constraints: bool = True,
    waivers: WaiverSet | None = None,
    emag: bool = True,
    antenna: bool = True,
    symmetry_geo: bool = True,
    audit: AuditTech | None = None,
    currents: dict[str, float] | None = None,
) -> Report:
    """Run DRC + connectivity + the electrical/symmetry audit on a layout.

    Args:
        layout: The layout to verify.
        tech: Technology whose rules apply.
        spec: Optional :class:`~repro.cellgen.generator.CellSpec`; when
            given, terminal wiring is checked against the schematic and
            the constraint/symmetry analyzers run.
        strict: Raise :class:`VerificationError` when unwaived errors
            are found instead of returning the report.
        absolute_grid: Forwarded to :func:`~repro.verify.drc.run_drc`;
            flattened assemblies pass ``False`` (children are translated
            off the absolute poly-grid phase by placement).
        constraints: Run the constraint analyzer (requires ``spec``).
        waivers: Optional baseline; matching violations are marked
            waived before the strict check.
        emag: Run the static EM/IR audit
            (:func:`~repro.verify.emag.run_emag`).
        antenna: Run the antenna-ratio / density-window audit
            (:func:`~repro.verify.antenna.run_antenna`).
        symmetry_geo: Run the geometric symmetry-realization audit
            (:func:`~repro.verify.symmetry_geo.run_symmetry_geo`;
            requires ``spec``).
        audit: Electrical-audit table; defaults to
            :meth:`~repro.verify.tech.AuditTech.for_technology`.
        currents: Explicit worst-case net currents (A) for the EM/IR
            audit; defaults to the declared budget (or pass the result
            of :meth:`~repro.spice.dc.OperatingPoint.net_currents`).

    Returns:
        The merged report (always returned when ``strict`` is false).

    Raises:
        VerificationError: In strict mode, when any unwaived
            error-severity violation is present (warnings never raise).
    """
    report = run_drc(layout, tech, absolute_grid=absolute_grid)
    report.merge(run_connectivity(layout, tech, spec=spec))
    if constraints and spec is not None:
        report.merge(run_constraints(layout, spec, tech))
    if emag or antenna:
        if audit is None:
            audit = AuditTech.for_technology(tech)
        if emag:
            report.merge(
                run_emag(layout, tech, audit=audit, currents=currents)
            )
        if antenna:
            report.merge(run_antenna(layout, tech, audit=audit))
    if symmetry_geo and spec is not None:
        report.merge(run_symmetry_geo(layout, spec, tech))
    report.apply_waivers(waivers)
    if strict:
        report.raise_if_errors()
    return report


def verify_circuit(
    circuit: Circuit,
    strict: bool = False,
    waivers: WaiverSet | None = None,
) -> Report:
    """Run the ERC engine on a flat netlist.

    Args:
        circuit: The circuit to check (schematic reference, extracted
            netlist or testbench).
        strict: Raise :class:`VerificationError` on unwaived errors.
        waivers: Optional baseline applied before the strict check.

    Returns:
        The ERC report.
    """
    report = run_erc(circuit)
    report.apply_waivers(waivers)
    if strict:
        report.raise_if_errors()
    return report


def verify_assembly(
    name: str,
    instances: list[Instance],
    tech: Technology,
    net_map: dict[str, dict[str, str]] | None = None,
    strict: bool = False,
    waivers: WaiverSet | None = None,
) -> Report:
    """Verify an assembled block: placed instances plus their flattening.

    Checks that no two placed instances overlap, then flattens the
    children into parent coordinates (rewriting block-local nets through
    ``net_map`` so same-named child nets cannot alias) and runs the full
    DRC + connectivity pass over the merged geometry.

    Args:
        name: Name for the flattened layout (used in messages).
        instances: Placed child layouts.
        tech: Technology whose rules apply.
        net_map: ``{instance: {child_net: parent_net}}`` rewrite table.
        strict: Raise :class:`VerificationError` on unwaived errors.
        waivers: Optional baseline applied before the strict check.

    Returns:
        The merged report for the placement and the flattened geometry.
    """
    report = Report(target=name)
    check_instance_overlaps(report, instances)
    if instances:
        flat = flatten_instances(name, instances, net_map=net_map)
        report.merge(verify_layout(flat, tech, absolute_grid=False))
    report.apply_waivers(waivers)
    if strict:
        report.raise_if_errors()
    return report
