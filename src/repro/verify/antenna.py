"""Antenna-ratio and metal-density-window checks.

Two manufacturability audits that neither DRC nor connectivity covers:

* ``ANT-RATIO`` — *antenna* (plasma-induced gate damage) check.  During
  fabrication each metal layer is patterned while the layers above it
  do not exist yet, so all metal of a net on one layer collects plasma
  charge that discharges through whatever gates the net already
  contacts.  The classic static bound is the **antenna ratio**: the
  net's metal area on the layer divided by its connected gate area,
  which must stay below ``AuditTech.antenna_max_ratio``.  Nets
  contacting no gate (supply rails, source/drain-only nets) cannot
  damage anything and are skipped.

* ``DEN-WINDOW-MAX`` / ``DEN-WINDOW-MIN`` — metal density.  CMP
  planarity needs each ``density_window_nm`` x ``density_window_nm``
  window of a used routing layer to stay below the layer's
  ``max_density`` ceiling (dishing risk the mesh must fix — an error),
  and the layer's density over the whole cell to stay above
  ``min_density`` (erosion risk).  The floor is checked cell-wide
  rather than per window — primitive cells legitimately concentrate
  each layer near the rows or the rail region, so empty windows are
  the norm, not a defect — and it fires as a warning: dummy fill is a
  tapeout step outside this generator's scope, so the audit points at
  the gap without failing the cell.

Gate area is estimated from the placed units: ``nfin x nf`` fins per
unit, each contributing ``fin_pitch x gate_length_nm`` of effective
gate oxide — the same first-order footprint the LDE extractor uses.
Overlapping same-net shapes (stub/strap crossings) are double-counted;
that overestimates both metal area and window density slightly, which
keeps the audit conservative and the implementation total.
"""

from __future__ import annotations

from repro.geometry.layout import Layout
from repro.geometry.shapes import Rect
from repro.tech.pdk import Technology
from repro.verify.diagnostics import Report
from repro.verify.tech import AuditTech

__all__ = ["run_antenna", "gate_areas"]


def _overlap_area(a: Rect, b: Rect) -> int:
    """Intersection area of two rectangles (0 when disjoint)."""
    w = min(a.x1, b.x1) - max(a.x0, b.x0)
    h = min(a.y1, b.y1) - max(a.y0, b.y0)
    if w <= 0 or h <= 0:
        return 0
    return w * h


def gate_areas(layout: Layout, tech: Technology, audit: AuditTech) -> dict[str, float]:
    """Connected gate area (nm^2) per net, from placements + stub owners.

    The gate net of each device is recovered from its ``"<dev>.g"``
    finger-stub owner tags, so the estimate works on any layout the
    generator (or a flattening of it) produced, without a netlist.
    """
    gate_net: dict[str, str] = {}
    for wire in layout.wires:
        if wire.role == "finger_stub" and wire.owner.endswith(".g"):
            gate_net[wire.owner[: -len(".g")]] = wire.net
    per_fin = float(tech.rules.fin_pitch * audit.gate_length_nm)
    areas: dict[str, float] = {}
    for placement in layout.devices:
        net = gate_net.get(placement.device)
        if net is None:
            continue
        areas[net] = areas.get(net, 0.0) + placement.nfin * placement.nf * per_fin
    return areas


def _check_antenna(
    layout: Layout,
    tech: Technology,
    audit: AuditTech,
    report: Report,
) -> None:
    """ANT-RATIO per (net with gates, metal layer)."""
    gates = gate_areas(layout, tech, audit)
    metal: dict[tuple[str, str], float] = {}
    for wire in layout.wires:
        key = (wire.net, wire.layer)
        metal[key] = metal.get(key, 0.0) + wire.rect.area
    for (net, layer), area in sorted(metal.items()):
        gate = gates.get(net, 0.0)
        if gate <= 0.0:
            continue
        ratio = area / gate
        if ratio > audit.antenna_max_ratio:
            report.flag(
                "ANT-RATIO",
                f"{layer} metal of the net collects "
                f"{area / 1e6:.3f} um^2 against {gate / 1e6:.4f} um^2 "
                f"of gate (ratio {ratio:.0f}); the limit is "
                f"{audit.antenna_max_ratio:.0f}",
                layout=layout.name,
                subject=net,
            )


def _check_density(
    layout: Layout,
    audit: AuditTech,
    report: Report,
) -> None:
    """DEN-WINDOW-MAX per window / DEN-WINDOW-MIN per layer."""
    if not layout.wires:
        return
    box = layout.bbox()
    if box.width <= 0 or box.height <= 0:
        return
    window = audit.density_window_nm
    by_layer: dict[str, list[Rect]] = {}
    for wire in layout.wires:
        by_layer.setdefault(wire.layer, []).append(wire.rect)
    nx = max(1, -(-box.width // window))
    ny = max(1, -(-box.height // window))
    for layer in sorted(by_layer):
        limits = audit.layer(layer)
        if limits is None:
            continue
        rects = by_layer[layer]
        total_covered = 0
        for iy in range(ny):
            for ix in range(nx):
                win = Rect(
                    box.x0 + ix * window,
                    box.y0 + iy * window,
                    min(box.x0 + (ix + 1) * window, box.x1),
                    min(box.y0 + (iy + 1) * window, box.y1),
                )
                if win.area <= 0:
                    continue
                covered = sum(_overlap_area(r, win) for r in rects)
                total_covered += covered
                density = covered / win.area
                if density > limits.max_density:
                    report.flag(
                        "DEN-WINDOW-MAX",
                        f"{layer} window ({ix}, {iy}) is {density:.1%} "
                        f"dense; the ceiling is {limits.max_density:.0%}",
                        layout=layout.name,
                        subject=layer,
                        rect=win,
                    )
        cell_density = total_covered / box.area
        if cell_density < limits.min_density:
            report.flag(
                "DEN-WINDOW-MIN",
                f"{layer} covers {cell_density:.2%} of the cell; the "
                f"fill floor is {limits.min_density:.1%} — dummy fill "
                f"is needed at tapeout",
                layout=layout.name,
                subject=layer,
            )


def run_antenna(
    layout: Layout,
    tech: Technology,
    audit: AuditTech | None = None,
) -> Report:
    """Run the antenna-ratio and density-window audit on one layout.

    Args:
        layout: The layout to audit (primitive or flattened assembly).
        tech: Technology the layout was generated for.
        audit: Audit table; defaults to
            :meth:`AuditTech.for_technology`.

    Returns:
        A report of ``ANT-*`` / ``DEN-*`` findings.
    """
    if audit is None:
        audit = AuditTech.for_technology(tech)
    report = Report(target=layout.name)
    report.checked_shapes = len(layout.wires) + len(layout.devices)
    _check_antenna(layout, tech, audit, report)
    _check_density(layout, audit, report)
    return report
